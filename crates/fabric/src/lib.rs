//! # systolic-fabric
//!
//! A cycle-accurate simulator for the synchronous ("systolic") processor
//! arrays of Kung & Lehman, *Systolic (VLSI) Arrays for Relational Database
//! Operations*, SIGMOD 1980.
//!
//! The fabric provides the substrate every array in the paper is built on:
//!
//! * [`word::Word`] — the data alphabet on a wire during one pulse
//!   (integer-encoded relation elements, booleans, null, and a drain
//!   control word);
//! * [`cell::Cell`] — the 3-in/3-out processor prototype of Figure 2-2;
//! * [`grid::Grid`] — orthogonally connected arrays (Figure 2-1) with
//!   double-buffered wires, boundary [`feed::Feeder`]s and edge
//!   [`feed::Collector`]s, utilisation statistics, and optional per-pulse
//!   tracing;
//! * [`schedule`] — the closed-form staggered input schedules of §3 and the
//!   fixed-operand variant of §8;
//! * [`trace`] — ASCII rendering of in-flight data, used to reproduce the
//!   paper's data-flow figures.
//!
//! The simulation is deliberately *synchronous and deterministic*: a
//! systolic array is a clocked machine, and the paper's claims are about
//! pulse counts, cell counts and utilisation — exactly what this fabric
//! measures.
//!
//! ## Example: a word marching through a linear array
//!
//! ```
//! use systolic_fabric::{Cell, CellIo, Grid, ScheduleFeeder, Word};
//!
//! struct Forward;
//! impl Cell for Forward {
//!     fn pulse(&mut self, io: &mut CellIo) {
//!         io.pass_through();
//!         io.t_out = io.t_in;
//!     }
//! }
//!
//! let mut grid: Grid<Forward> = Grid::new(1, 4, |_, _| Forward);
//! grid.set_west_feeder(ScheduleFeeder::from_entries([(0, 0, Word::Elem(42))]));
//! grid.run_until_quiescent(100).unwrap();
//! // The word crosses 4 cells and exits east at pulse 3.
//! assert_eq!(grid.east_emissions().at(3, 0), Some(Word::Elem(42)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
mod counters;
pub mod feed;
pub mod grid;
pub mod schedule;
pub mod trace;
pub mod word;

pub use cell::{Cell, CellIo};
pub use feed::{Collector, Emission, Feeder, NullFeeder, ScheduleFeeder};
pub use grid::{Grid, GridStats, NotQuiescent};
pub use schedule::{CompareSchedule, FixedSchedule};
pub use trace::{render_animation, render_frame, TraceFrame};
pub use word::{CompareOp, Elem, Word};
