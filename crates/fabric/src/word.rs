//! The unit of data carried by a wire during one systolic pulse.
//!
//! Section 2.3 of the paper assumes that every relation element is encoded as
//! an integer before it enters an array, so the data alphabet of the fabric
//! is: integers (relation elements), booleans (intermediate comparison
//! results `t`), a *null* meaning "no data on this wire this pulse", and a
//! *drain* control word used by the division array (§7) to trigger the
//! "AND across the row after the dividend passes through".

/// An encoded relation element (see §2.3: all domains are dictionary-encoded
/// into integers before entering an array).
pub type Elem = i64;

/// A value present on a wire during a single pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Word {
    /// No data on the wire this pulse (an idle wire).
    #[default]
    Null,
    /// An encoded relation element.
    Elem(Elem),
    /// An intermediate boolean result (a `t` value in the paper's notation).
    Bool(bool),
    /// A control word swept through the array after the data stream; the
    /// division array (§7) uses it to start the AND-accumulation across each
    /// divisor row.
    Drain,
    /// A comparator opcode travelling with the data (§6.3.2: "the particular
    /// operation to be performed might be encoded in a few bits, and passed
    /// along with the a_ij"). Programmable cells latch it as their
    /// comparator and forward it to their neighbour.
    Op(CompareOp),
}

impl Word {
    /// `true` if the wire carries any data this pulse.
    #[inline]
    pub fn is_present(self) -> bool {
        !matches!(self, Word::Null)
    }

    /// The element carried, if this is an [`Word::Elem`].
    #[inline]
    pub fn as_elem(self) -> Option<Elem> {
        match self {
            Word::Elem(e) => Some(e),
            _ => None,
        }
    }

    /// The boolean carried, if this is a [`Word::Bool`].
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Word::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl From<Elem> for Word {
    fn from(e: Elem) -> Self {
        Word::Elem(e)
    }
}

impl From<bool> for Word {
    fn from(b: bool) -> Self {
        Word::Bool(b)
    }
}

/// A binary comparison predicate on elements.
///
/// §6.3.2 generalises the equi-join "to allow any sort of binary comparison
/// (e.g. <, >, etc.)"; the comparator a processor applies "might be encoded
/// in a few bits ... or it might be preloaded into the array of processors".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompareOp {
    /// Equality (the equi-join / intersection comparator).
    #[default]
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    /// Apply the predicate to a pair of encoded elements.
    #[inline]
    pub fn eval(self, a: Elem, b: Elem) -> bool {
        match self {
            CompareOp::Eq => a == b,
            CompareOp::Ne => a != b,
            CompareOp::Lt => a < b,
            CompareOp::Le => a <= b,
            CompareOp::Gt => a > b,
            CompareOp::Ge => a >= b,
        }
    }

    /// All six predicates, for exhaustive tests and sweeps.
    pub const ALL: [CompareOp; 6] = [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ];
}

impl std::fmt::Display for CompareOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl std::fmt::Display for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Word::Null => write!(f, "."),
            Word::Elem(e) => write!(f, "{e}"),
            Word::Bool(true) => write!(f, "T"),
            Word::Bool(false) => write!(f, "F"),
            Word::Drain => write!(f, "#"),
            Word::Op(op) => write!(f, "op{op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_absent_everything_else_is_present() {
        assert!(!Word::Null.is_present());
        assert!(Word::Elem(0).is_present());
        assert!(Word::Bool(false).is_present());
        assert!(Word::Drain.is_present());
    }

    #[test]
    fn accessors_select_the_right_variant() {
        assert_eq!(Word::Elem(7).as_elem(), Some(7));
        assert_eq!(Word::Bool(true).as_elem(), None);
        assert_eq!(Word::Bool(true).as_bool(), Some(true));
        assert_eq!(Word::Elem(7).as_bool(), None);
        assert_eq!(Word::Null.as_elem(), None);
        assert_eq!(Word::Drain.as_bool(), None);
    }

    #[test]
    fn conversions_from_primitive_types() {
        assert_eq!(Word::from(42i64), Word::Elem(42));
        assert_eq!(Word::from(true), Word::Bool(true));
    }

    #[test]
    fn display_is_single_glyph_for_control_words() {
        assert_eq!(Word::Null.to_string(), ".");
        assert_eq!(Word::Bool(true).to_string(), "T");
        assert_eq!(Word::Bool(false).to_string(), "F");
        assert_eq!(Word::Drain.to_string(), "#");
        assert_eq!(Word::Elem(-3).to_string(), "-3");
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Word::default(), Word::Null);
    }

    #[test]
    fn op_words_display_their_comparator() {
        assert_eq!(Word::Op(CompareOp::Le).to_string(), "op<=");
        assert!(Word::Op(CompareOp::Eq).is_present());
        assert_eq!(Word::Op(CompareOp::Eq).as_elem(), None);
        assert_eq!(Word::Op(CompareOp::Eq).as_bool(), None);
    }

    #[test]
    fn compare_ops_match_rust_semantics() {
        for (a, b) in [(1, 2), (2, 2), (3, 2), (-1, 1)] {
            assert_eq!(CompareOp::Eq.eval(a, b), a == b);
            assert_eq!(CompareOp::Ne.eval(a, b), a != b);
            assert_eq!(CompareOp::Lt.eval(a, b), a < b);
            assert_eq!(CompareOp::Le.eval(a, b), a <= b);
            assert_eq!(CompareOp::Gt.eval(a, b), a > b);
            assert_eq!(CompareOp::Ge.eval(a, b), a >= b);
        }
    }

    #[test]
    fn compare_op_display_and_all() {
        assert_eq!(CompareOp::ALL.len(), 6);
        let rendered: Vec<String> = CompareOp::ALL.iter().map(|o| o.to_string()).collect();
        assert_eq!(rendered, ["=", "!=", "<", "<=", ">", ">="]);
        assert_eq!(CompareOp::default(), CompareOp::Eq);
    }
}
