//! Global metric counters fed by grid runs.
//!
//! The instruments live in the process-global telemetry registry and are
//! cached in `OnceLock`s, so the steady-state cost per completed grid run is
//! a handful of relaxed atomic adds — no locks, no allocation.

use std::sync::{Arc, OnceLock};
use systolic_telemetry::metrics::{self, Counter, Gauge};

use crate::grid::GridStats;

struct GridCounters {
    runs: Arc<Counter>,
    pulses: Arc<Counter>,
    busy_cell_pulses: Arc<Counter>,
    cell_pulses: Arc<Counter>,
    utilisation: Arc<Gauge>,
}

fn counters() -> &'static GridCounters {
    static CACHE: OnceLock<GridCounters> = OnceLock::new();
    CACHE.get_or_init(|| {
        let r = metrics::global();
        GridCounters {
            runs: r.counter(
                "sdb_grid_runs_total",
                "Grid runs driven to quiescence (one per array operation or tile).",
            ),
            pulses: r.counter(
                "sdb_grid_pulses_total",
                "Pulses executed across all grid runs (the §8 time unit).",
            ),
            busy_cell_pulses: r.counter(
                "sdb_grid_busy_cell_pulses_total",
                "Cell-pulses in which a processor saw data on an input wire.",
            ),
            cell_pulses: r.counter(
                "sdb_grid_cell_pulses_total",
                "Cell-pulses offered (pulses x rows x cols) — utilisation denominator.",
            ),
            utilisation: r.gauge(
                "sdb_grid_utilisation",
                "Cell utilisation of the most recently completed grid run (§8).",
            ),
        }
    })
}

/// Record the portion of a grid run delimited by `before`/`after` stats
/// snapshots. Called by `Grid::run_until_quiescent` on success.
pub(crate) fn record_run(before: GridStats, after: GridStats) {
    if !metrics::metrics_enabled() {
        return;
    }
    let c = counters();
    c.runs.inc();
    c.pulses.add(after.pulses.saturating_sub(before.pulses));
    c.busy_cell_pulses.add(
        after
            .busy_cell_pulses
            .saturating_sub(before.busy_cell_pulses),
    );
    c.cell_pulses.add(
        after
            .total_cell_pulses
            .saturating_sub(before.total_cell_pulses),
    );
    c.utilisation.set(after.utilisation());
}
