//! Boundary feeders and collectors.
//!
//! A systolic array computes correctly only if "all of the data \[is\] in the
//! right place at the right time" (§3.1) — the inputs are *staggered* on the
//! array boundary. Feeders encode those staggered injection schedules; the
//! grid asks each boundary feeder for a word per lane per pulse. Collectors
//! record every word that falls off an edge, together with the pulse and lane
//! at which it did, so operator front-ends can decode results using the same
//! schedule arithmetic that produced the inputs.

use std::collections::HashMap;

use crate::word::Word;

/// A source of boundary input words.
///
/// `lane` is the column index for the north/south edges and the row index for
/// the west edge (nothing is ever fed from the east: `t` values flow east).
///
/// `Send` is a supertrait so a fully loaded [`crate::grid::Grid`] can be
/// handed to a worker thread: the host-parallel executor in `systolic-core`
/// runs independent tiles on independent grids concurrently. Feeders are
/// precomputed schedules, so this costs implementations nothing.
pub trait Feeder: Send {
    /// The word to inject into `lane` at `pulse` (usually `Word::Null`).
    fn feed(&mut self, pulse: u64, lane: usize) -> Word;

    /// A pulse by which this feeder will only ever produce `Word::Null`.
    /// Used by the simulation driver to detect quiescence.
    fn horizon(&self) -> u64;
}

/// A feeder that never injects anything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFeeder;

impl Feeder for NullFeeder {
    fn feed(&mut self, _pulse: u64, _lane: usize) -> Word {
        Word::Null
    }
    fn horizon(&self) -> u64 {
        0
    }
}

/// A feeder driven by a precomputed `(pulse, lane) -> Word` schedule.
///
/// This is the workhorse: the `schedule` module computes the staggered
/// injection times for each array and materialises them here.
#[derive(Debug, Default, Clone)]
pub struct ScheduleFeeder {
    entries: HashMap<(u64, usize), Word>,
    horizon: u64,
}

impl ScheduleFeeder {
    /// An empty schedule (equivalent to [`NullFeeder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(pulse, lane, word)` triples.
    ///
    /// # Panics
    /// Panics if two entries target the same `(pulse, lane)` slot with
    /// different words — that would mean two data items collide on one wire,
    /// which is always a schedule construction bug.
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, usize, Word)>) -> Self {
        let mut f = Self::new();
        for (pulse, lane, word) in entries {
            f.push(pulse, lane, word);
        }
        f
    }

    /// Add one injection. Panics on conflicting double-booking (same slot,
    /// different word); inserting the identical word twice is idempotent.
    pub fn push(&mut self, pulse: u64, lane: usize, word: Word) {
        if word == Word::Null {
            return;
        }
        if let Some(prev) = self.entries.insert((pulse, lane), word) {
            assert_eq!(
                prev, word,
                "feeder slot collision at pulse {pulse}, lane {lane}: {prev:?} vs {word:?}"
            );
        }
        self.horizon = self.horizon.max(pulse + 1);
    }

    /// Number of scheduled (non-null) injections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no injections are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Feeder for ScheduleFeeder {
    fn feed(&mut self, pulse: u64, lane: usize) -> Word {
        self.entries
            .get(&(pulse, lane))
            .copied()
            .unwrap_or(Word::Null)
    }
    fn horizon(&self) -> u64 {
        self.horizon
    }
}

/// One word that fell off an array edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Emission {
    /// The pulse at which the producing boundary cell computed the word.
    pub pulse: u64,
    /// Column (north/south edges) or row (east edge) the word exited from.
    pub lane: usize,
    /// The word itself (never `Word::Null`; idle wires are not recorded).
    pub word: Word,
}

/// Records every non-null word leaving one edge of the grid.
#[derive(Debug, Default, Clone)]
pub struct Collector {
    emissions: Vec<Emission>,
}

impl Collector {
    /// Record a word if it is present.
    pub fn collect(&mut self, pulse: u64, lane: usize, word: Word) {
        if word.is_present() {
            self.emissions.push(Emission { pulse, lane, word });
        }
    }

    /// All recorded emissions in pulse order (the grid emits in pulse order).
    pub fn emissions(&self) -> &[Emission] {
        &self.emissions
    }

    /// Consume the collector, returning the recorded emissions.
    pub fn into_emissions(self) -> Vec<Emission> {
        self.emissions
    }

    /// Look up the word emitted from `lane` at `pulse`, if any.
    pub fn at(&self, pulse: u64, lane: usize) -> Option<Word> {
        self.emissions
            .iter()
            .find(|e| e.pulse == pulse && e.lane == lane)
            .map(|e| e.word)
    }

    /// Number of recorded emissions.
    pub fn len(&self) -> usize {
        self.emissions.len()
    }

    /// `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty()
    }

    /// Drop all recorded emissions (for array reuse).
    pub fn clear(&mut self) {
        self.emissions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_feeder_returns_scheduled_words_and_null_otherwise() {
        let mut f = ScheduleFeeder::from_entries([(0, 0, Word::Elem(5)), (2, 1, Word::Bool(true))]);
        assert_eq!(f.feed(0, 0), Word::Elem(5));
        assert_eq!(f.feed(0, 1), Word::Null);
        assert_eq!(f.feed(1, 0), Word::Null);
        assert_eq!(f.feed(2, 1), Word::Bool(true));
        assert_eq!(f.horizon(), 3);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn schedule_feeder_ignores_null_pushes() {
        let mut f = ScheduleFeeder::new();
        f.push(4, 0, Word::Null);
        assert!(f.is_empty());
        assert_eq!(f.horizon(), 0);
    }

    #[test]
    fn idempotent_double_push_is_allowed() {
        let mut f = ScheduleFeeder::new();
        f.push(1, 1, Word::Elem(9));
        f.push(1, 1, Word::Elem(9));
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[should_panic(expected = "feeder slot collision")]
    fn conflicting_double_push_panics() {
        let mut f = ScheduleFeeder::new();
        f.push(1, 1, Word::Elem(9));
        f.push(1, 1, Word::Elem(8));
    }

    #[test]
    fn collector_skips_null_and_keeps_order() {
        let mut c = Collector::default();
        c.collect(0, 0, Word::Null);
        c.collect(1, 0, Word::Bool(true));
        c.collect(2, 1, Word::Elem(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.at(1, 0), Some(Word::Bool(true)));
        assert_eq!(c.at(1, 1), None);
        assert_eq!(c.emissions()[1].word, Word::Elem(3));
    }

    #[test]
    fn null_feeder_is_always_quiet() {
        let mut f = NullFeeder;
        assert_eq!(f.feed(123, 45), Word::Null);
        assert_eq!(f.horizon(), 0);
    }
}
