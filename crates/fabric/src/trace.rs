//! Per-pulse wire snapshots and an ASCII renderer.
//!
//! Figures 3-4, 4-1, 6-1 and 7-2 of the paper show data frozen mid-flight in
//! an array. With tracing enabled, a [`crate::grid::Grid`] records the words
//! on every wire at every pulse, and [`render_frame`] draws them in the same
//! spirit: one bracketed box per cell showing the southbound (`a`),
//! northbound (`b`) and eastbound (`t`) words entering it. The
//! `examples/figures.rs` binary uses this to re-create the paper's figures as
//! pulse-by-pulse animations.

use crate::word::Word;

/// The words entering every cell at one pulse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFrame {
    /// The pulse at which the snapshot was taken.
    pub pulse: u64,
    /// Grid height.
    pub rows: usize,
    /// Grid width.
    pub cols: usize,
    /// Southbound input per cell, row-major.
    pub a: Vec<Word>,
    /// Northbound input per cell, row-major.
    pub b: Vec<Word>,
    /// Eastbound input per cell, row-major.
    pub t: Vec<Word>,
}

impl TraceFrame {
    /// `true` if no wire carries data at this pulse.
    pub fn is_idle(&self) -> bool {
        self.a
            .iter()
            .chain(&self.b)
            .chain(&self.t)
            .all(|w| !w.is_present())
    }
}

/// Accumulates [`TraceFrame`]s while a grid runs.
#[derive(Debug, Default)]
pub struct Tracer {
    frames: Vec<TraceFrame>,
}

impl Tracer {
    /// Record the wire state for one pulse.
    pub fn snapshot(
        &mut self,
        pulse: u64,
        rows: usize,
        cols: usize,
        a: &[Word],
        b: &[Word],
        t: &[Word],
    ) {
        self.frames.push(TraceFrame {
            pulse,
            rows,
            cols,
            a: a.to_vec(),
            b: b.to_vec(),
            t: t.to_vec(),
        });
    }

    /// All recorded frames in pulse order.
    pub fn frames(&self) -> &[TraceFrame] {
        &self.frames
    }

    /// Discard all frames.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

/// Render one frame as ASCII art: each cell is drawn as
/// `[a:<word> b:<word> t:<word>]`, omitting idle wires.
pub fn render_frame(frame: &TraceFrame) -> String {
    let mut cell_texts: Vec<String> = Vec::with_capacity(frame.rows * frame.cols);
    for r in 0..frame.rows {
        for c in 0..frame.cols {
            let idx = r * frame.cols + c;
            let mut parts = Vec::new();
            if frame.a[idx].is_present() {
                parts.push(format!("a:{}", frame.a[idx]));
            }
            if frame.b[idx].is_present() {
                parts.push(format!("b:{}", frame.b[idx]));
            }
            if frame.t[idx].is_present() {
                parts.push(format!("t:{}", frame.t[idx]));
            }
            cell_texts.push(parts.join(" "));
        }
    }
    let width = cell_texts.iter().map(|s| s.len()).max().unwrap_or(0).max(1);
    let mut out = format!("pulse {}\n", frame.pulse);
    for r in 0..frame.rows {
        for c in 0..frame.cols {
            let text = &cell_texts[r * frame.cols + c];
            out.push('[');
            out.push_str(text);
            for _ in text.len()..width {
                out.push(' ');
            }
            out.push(']');
        }
        out.push('\n');
    }
    out
}

/// Render every non-idle frame, separated by blank lines — a pulse-by-pulse
/// animation of the array in the style of Figure 3-4.
pub fn render_animation(frames: &[TraceFrame]) -> String {
    frames
        .iter()
        .filter(|f| !f.is_idle())
        .map(render_frame)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> TraceFrame {
        TraceFrame {
            pulse: 3,
            rows: 1,
            cols: 2,
            a: vec![Word::Elem(4), Word::Null],
            b: vec![Word::Null, Word::Elem(9)],
            t: vec![Word::Bool(true), Word::Null],
        }
    }

    #[test]
    fn render_shows_only_present_wires() {
        let s = render_frame(&frame());
        assert!(s.contains("pulse 3"));
        assert!(s.contains("a:4"));
        assert!(s.contains("t:T"));
        assert!(s.contains("b:9"));
        assert!(!s.contains("a:."));
    }

    #[test]
    fn idle_frames_are_skipped_in_animation() {
        let idle = TraceFrame {
            pulse: 9,
            rows: 1,
            cols: 1,
            a: vec![Word::Null],
            b: vec![Word::Null],
            t: vec![Word::Null],
        };
        assert!(idle.is_idle());
        let anim = render_animation(&[frame(), idle]);
        assert!(anim.contains("pulse 3"));
        assert!(!anim.contains("pulse 9"));
    }

    #[test]
    fn tracer_accumulates_and_clears() {
        let mut t = Tracer::default();
        t.snapshot(0, 1, 1, &[Word::Null], &[Word::Null], &[Word::Null]);
        t.snapshot(1, 1, 1, &[Word::Elem(1)], &[Word::Null], &[Word::Null]);
        assert_eq!(t.frames().len(), 2);
        assert_eq!(t.frames()[1].pulse, 1);
        t.clear();
        assert!(t.frames().is_empty());
    }
}
