//! The processor prototype of Figure 2-2.
//!
//! Every cell in an orthogonally (or linearly) connected systolic array has
//! three input lines and three output lines. Per the paper's conventions
//! (§2.1), relation `A` moves top-to-bottom, relation `B` moves bottom-to-top
//! and intermediate results move left-to-right:
//!
//! ```text
//!            a_in   b_out
//!              |      ^
//!              v      |
//!          +--------------+
//!  t_in -->|     cell     |--> t_out
//!          +--------------+
//!              |      ^
//!              v      |
//!           a_out   b_in
//! ```
//!
//! On each pulse a cell latches its three inputs, performs a short
//! computation, and presents its three outputs, which its neighbours latch at
//! the next pulse. The fabric enforces this by double-buffering all wires, so
//! the order in which cells are evaluated within a pulse cannot matter.

use crate::word::Word;

/// The input/output latch set of one cell for one pulse.
///
/// Inputs are filled in by the grid before [`Cell::pulse`] runs; outputs are
/// `Word::Null` unless the cell writes them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellIo {
    /// Southbound input arriving from the north neighbour (relation `A`).
    pub a_in: Word,
    /// Northbound input arriving from the south neighbour (relation `B`).
    pub b_in: Word,
    /// Eastbound input arriving from the west neighbour (`t` values).
    pub t_in: Word,
    /// Southbound output, latched by the south neighbour next pulse.
    pub a_out: Word,
    /// Northbound output, latched by the north neighbour next pulse.
    pub b_out: Word,
    /// Eastbound output, latched by the east neighbour next pulse.
    pub t_out: Word,
}

impl CellIo {
    /// A latch set with the given inputs and all outputs null.
    pub fn with_inputs(a_in: Word, b_in: Word, t_in: Word) -> Self {
        CellIo {
            a_in,
            b_in,
            t_in,
            ..CellIo::default()
        }
    }

    /// `true` if any input wire carries data this pulse; the utilisation
    /// statistics (§8 discusses array utilisation) count a cell as busy
    /// exactly when this holds.
    pub fn any_input(&self) -> bool {
        self.a_in.is_present() || self.b_in.is_present() || self.t_in.is_present()
    }

    /// Pass `a` south and `b` north unchanged — the default behaviour of
    /// every cell in the paper (data streams march through the array;
    /// computation happens on the `t` plane).
    pub fn pass_through(&mut self) {
        self.a_out = self.a_in;
        self.b_out = self.b_in;
    }
}

/// A systolic processor: a synchronous transfer function from the three input
/// latches to the three output latches, possibly with a small amount of
/// internal state (e.g. the pre-loaded elements of the division array, §7).
pub trait Cell {
    /// Perform one pulse: read `io.{a,b,t}_in`, write `io.{a,b,t}_out`.
    fn pulse(&mut self, io: &mut CellIo);

    /// Reset any internal state so the array can process another problem
    /// instance. Stateless cells need not override this.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Cell for Echo {
        fn pulse(&mut self, io: &mut CellIo) {
            io.pass_through();
            io.t_out = io.t_in;
        }
    }

    #[test]
    fn pass_through_copies_vertical_streams() {
        let mut io = CellIo::with_inputs(Word::Elem(1), Word::Elem(2), Word::Bool(true));
        Echo.pulse(&mut io);
        assert_eq!(io.a_out, Word::Elem(1));
        assert_eq!(io.b_out, Word::Elem(2));
        assert_eq!(io.t_out, Word::Bool(true));
    }

    #[test]
    fn any_input_detects_each_wire_independently() {
        assert!(!CellIo::default().any_input());
        assert!(CellIo::with_inputs(Word::Elem(0), Word::Null, Word::Null).any_input());
        assert!(CellIo::with_inputs(Word::Null, Word::Elem(0), Word::Null).any_input());
        assert!(CellIo::with_inputs(Word::Null, Word::Null, Word::Bool(false)).any_input());
    }

    #[test]
    fn outputs_default_to_null() {
        let io = CellIo::with_inputs(Word::Elem(9), Word::Elem(9), Word::Bool(true));
        assert_eq!(io.a_out, Word::Null);
        assert_eq!(io.b_out, Word::Null);
        assert_eq!(io.t_out, Word::Null);
    }
}
