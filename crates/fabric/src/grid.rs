//! The orthogonally connected processor grid of Figure 2-1(a).
//!
//! A [`Grid`] is an `rows x cols` fabric of identical-interface cells with
//! three wire planes matching the processor prototype (Fig 2-2):
//!
//! * the `a` plane carries relation `A` southbound (top-to-bottom),
//! * the `b` plane carries relation `B` northbound (bottom-to-top),
//! * the `t` plane carries intermediate results eastbound (left-to-right).
//!
//! All wires are double-buffered: a word written by a cell at pulse `k` is
//! visible to its neighbour at pulse `k+1`, so "all of the data in the array
//! moves synchronously" (§2.1) regardless of evaluation order. Words that
//! fall off the south, north, or east edges are recorded by [`Collector`]s;
//! boundary inputs are supplied per-pulse by [`Feeder`]s on the north, south
//! and west edges. Linearly connected arrays (Fig 2-1(b)) are grids with a
//! single row or column.

use crate::cell::{Cell, CellIo};
use crate::feed::{Collector, Feeder, NullFeeder};
use crate::trace::{TraceFrame, Tracer};
use crate::word::Word;

/// Utilisation statistics accumulated while a grid runs.
///
/// §8 observes that "only half of the processors in a systolic array are busy
/// at any one time" for the marching-two-relations schemes, and proposes the
/// fixed-operand layout to fix that; these counters let both claims be
/// measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Total pulses executed.
    pub pulses: u64,
    /// Sum over pulses of the number of cells with at least one input present.
    pub busy_cell_pulses: u64,
    /// `pulses x rows x cols` — the denominator for utilisation.
    pub total_cell_pulses: u64,
    /// Number of cell activations that performed a comparison or logic
    /// operation (incremented by cells via [`CellIo`] conventions: a cell is
    /// counted as working when any input was present).
    pub active_ops: u64,
}

impl GridStats {
    /// Fraction of cell-pulses during which the cell had work, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.total_cell_pulses == 0 {
            0.0
        } else {
            self.busy_cell_pulses as f64 / self.total_cell_pulses as f64
        }
    }
}

/// Error returned when a grid fails to drain within a pulse budget —
/// invariably a schedule construction bug, surfaced instead of hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotQuiescent {
    /// The budget that was exhausted.
    pub max_pulses: u64,
}

impl std::fmt::Display for NotQuiescent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grid not quiescent after {} pulses", self.max_pulses)
    }
}

impl std::error::Error for NotQuiescent {}

/// An orthogonally connected systolic processor array.
pub struct Grid<C: Cell> {
    rows: usize,
    cols: usize,
    cells: Vec<C>,
    /// Southbound words entering each cell this pulse (`rows x cols`).
    a: Vec<Word>,
    /// Northbound words entering each cell this pulse.
    b: Vec<Word>,
    /// Eastbound words entering each cell this pulse.
    t: Vec<Word>,
    /// Scratch planes for the next pulse (double buffering).
    a_next: Vec<Word>,
    b_next: Vec<Word>,
    t_next: Vec<Word>,
    pulse: u64,
    stats: GridStats,
    north: Box<dyn Feeder>,
    south: Box<dyn Feeder>,
    west: Box<dyn Feeder>,
    east_out: Collector,
    south_out: Collector,
    north_out: Collector,
    tracer: Option<Tracer>,
}

impl<C: Cell> Grid<C> {
    /// Build a `rows x cols` grid, constructing each cell from its position.
    ///
    /// # Panics
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, mut make: impl FnMut(usize, usize) -> C) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        let mut cells = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                cells.push(make(r, c));
            }
        }
        let n = rows * cols;
        Grid {
            rows,
            cols,
            cells,
            a: vec![Word::Null; n],
            b: vec![Word::Null; n],
            t: vec![Word::Null; n],
            a_next: vec![Word::Null; n],
            b_next: vec![Word::Null; n],
            t_next: vec![Word::Null; n],
            pulse: 0,
            stats: GridStats::default(),
            north: Box::new(NullFeeder),
            south: Box::new(NullFeeder),
            west: Box::new(NullFeeder),
            east_out: Collector::default(),
            south_out: Collector::default(),
            north_out: Collector::default(),
            tracer: None,
        }
    }

    /// Rows in the grid.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns in the grid.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of processors (`rows x cols`).
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The current pulse counter (pulses executed so far).
    pub fn pulse(&self) -> u64 {
        self.pulse
    }

    /// Utilisation statistics accumulated so far.
    pub fn stats(&self) -> GridStats {
        self.stats
    }

    /// Immutable access to a cell (row-major).
    pub fn cell(&self, r: usize, c: usize) -> &C {
        &self.cells[r * self.cols + c]
    }

    /// Mutable access to a cell, e.g. for pre-loading stored elements (§7).
    pub fn cell_mut(&mut self, r: usize, c: usize) -> &mut C {
        &mut self.cells[r * self.cols + c]
    }

    /// Install the feeder driving the north edge (relation `A`, southbound).
    pub fn set_north_feeder(&mut self, f: impl Feeder + 'static) {
        self.north = Box::new(f);
    }

    /// Install the feeder driving the south edge (relation `B`, northbound).
    pub fn set_south_feeder(&mut self, f: impl Feeder + 'static) {
        self.south = Box::new(f);
    }

    /// Install the feeder driving the west edge (initial `t` values).
    pub fn set_west_feeder(&mut self, f: impl Feeder + 'static) {
        self.west = Box::new(f);
    }

    /// Words that left the east edge (the results side in most arrays).
    pub fn east_emissions(&self) -> &Collector {
        &self.east_out
    }

    /// Words that left the south edge (relation `A` after traversal, or
    /// accumulated `t_i` values in the intersection array).
    pub fn south_emissions(&self) -> &Collector {
        &self.south_out
    }

    /// Words that left the north edge (relation `B` after traversal).
    pub fn north_emissions(&self) -> &Collector {
        &self.north_out
    }

    /// Record per-pulse wire snapshots for rendering (see [`crate::trace`]).
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(Tracer::default());
    }

    /// The recorded trace frames, if tracing was enabled.
    pub fn trace_frames(&self) -> &[TraceFrame] {
        self.tracer.as_ref().map(|t| t.frames()).unwrap_or(&[])
    }

    /// Execute one pulse: latch boundary inputs, pulse every cell, transfer
    /// outputs to neighbouring latches and edge collectors.
    pub fn step(&mut self) {
        let pulse = self.pulse;
        // Boundary injection: feeders write directly into the input latches
        // of the edge cells for this pulse.
        for c in 0..self.cols {
            let w = self.north.feed(pulse, c);
            if w.is_present() {
                self.a[c] = w;
            }
            let w = self.south.feed(pulse, c);
            if w.is_present() {
                self.b[(self.rows - 1) * self.cols + c] = w;
            }
        }
        for r in 0..self.rows {
            let w = self.west.feed(pulse, r);
            if w.is_present() {
                self.t[r * self.cols] = w;
            }
        }

        if let Some(tracer) = &mut self.tracer {
            tracer.snapshot(pulse, self.rows, self.cols, &self.a, &self.b, &self.t);
        }

        for slot in self.a_next.iter_mut() {
            *slot = Word::Null;
        }
        for slot in self.b_next.iter_mut() {
            *slot = Word::Null;
        }
        for slot in self.t_next.iter_mut() {
            *slot = Word::Null;
        }

        let mut busy = 0u64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let idx = r * self.cols + c;
                let mut io = CellIo::with_inputs(self.a[idx], self.b[idx], self.t[idx]);
                if io.any_input() {
                    busy += 1;
                }
                self.cells[idx].pulse(&mut io);
                if r + 1 < self.rows {
                    self.a_next[(r + 1) * self.cols + c] = io.a_out;
                } else {
                    self.south_out.collect(pulse, c, io.a_out);
                }
                if r > 0 {
                    self.b_next[(r - 1) * self.cols + c] = io.b_out;
                } else {
                    self.north_out.collect(pulse, c, io.b_out);
                }
                if c + 1 < self.cols {
                    self.t_next[r * self.cols + c + 1] = io.t_out;
                } else {
                    self.east_out.collect(pulse, r, io.t_out);
                }
            }
        }

        std::mem::swap(&mut self.a, &mut self.a_next);
        std::mem::swap(&mut self.b, &mut self.b_next);
        std::mem::swap(&mut self.t, &mut self.t_next);

        self.stats.pulses += 1;
        self.stats.busy_cell_pulses += busy;
        self.stats.active_ops += busy;
        self.stats.total_cell_pulses += (self.rows * self.cols) as u64;
        self.pulse += 1;
    }

    /// `true` when no feeder will inject again and every wire is idle.
    pub fn is_quiescent(&self) -> bool {
        let feeders_done = self.north.horizon() <= self.pulse
            && self.south.horizon() <= self.pulse
            && self.west.horizon() <= self.pulse;
        feeders_done
            && self.a.iter().all(|w| !w.is_present())
            && self.b.iter().all(|w| !w.is_present())
            && self.t.iter().all(|w| !w.is_present())
    }

    /// Pulse the grid until it drains, or fail after `max_pulses`.
    pub fn run_until_quiescent(&mut self, max_pulses: u64) -> Result<(), NotQuiescent> {
        let before = self.stats;
        while !self.is_quiescent() {
            if self.pulse >= max_pulses {
                return Err(NotQuiescent { max_pulses });
            }
            self.step();
        }
        crate::counters::record_run(before, self.stats);
        Ok(())
    }

    /// Reset dynamic state (wires, pulse counter, collectors, stats, cell
    /// state) so the same physical array can run another problem — §9's
    /// integrated system reuses its fixed arrays across operations.
    pub fn reset(&mut self) {
        for plane in [
            &mut self.a,
            &mut self.b,
            &mut self.t,
            &mut self.a_next,
            &mut self.b_next,
            &mut self.t_next,
        ] {
            for w in plane.iter_mut() {
                *w = Word::Null;
            }
        }
        self.pulse = 0;
        self.stats = GridStats::default();
        self.east_out.clear();
        self.south_out.clear();
        self.north_out.clear();
        if let Some(t) = &mut self.tracer {
            t.clear();
        }
        for cell in &mut self.cells {
            cell.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::ScheduleFeeder;

    /// A cell that forwards everything one step along its natural direction.
    struct Wire;
    impl Cell for Wire {
        fn pulse(&mut self, io: &mut CellIo) {
            io.pass_through();
            io.t_out = io.t_in;
        }
    }

    #[test]
    fn a_word_travels_south_one_row_per_pulse() {
        let mut g: Grid<Wire> = Grid::new(3, 1, |_, _| Wire);
        g.set_north_feeder(ScheduleFeeder::from_entries([(0, 0, Word::Elem(7))]));
        g.run_until_quiescent(100).unwrap();
        // Injected into row 0 at pulse 0; computed by row 2 at pulse 2.
        assert_eq!(
            g.south_emissions().emissions(),
            &[crate::feed::Emission {
                pulse: 2,
                lane: 0,
                word: Word::Elem(7),
            }]
        );
        assert_eq!(g.pulse(), 3);
    }

    #[test]
    fn b_word_travels_north_and_t_travels_east() {
        let mut g: Grid<Wire> = Grid::new(2, 3, |_, _| Wire);
        g.set_south_feeder(ScheduleFeeder::from_entries([(0, 2, Word::Elem(9))]));
        g.set_west_feeder(ScheduleFeeder::from_entries([(0, 1, Word::Bool(true))]));
        g.run_until_quiescent(100).unwrap();
        assert_eq!(g.north_emissions().at(1, 2), Some(Word::Elem(9)));
        assert_eq!(g.east_emissions().at(2, 1), Some(Word::Bool(true)));
    }

    #[test]
    fn quiescence_requires_empty_wires_and_exhausted_feeders() {
        let mut g: Grid<Wire> = Grid::new(2, 2, |_, _| Wire);
        g.set_north_feeder(ScheduleFeeder::from_entries([(3, 0, Word::Elem(1))]));
        assert!(!g.is_quiescent(), "future injection pending");
        g.run_until_quiescent(100).unwrap();
        assert!(g.is_quiescent());
        // Pulses: injection at 3, exits after traversing 2 rows at pulse 4,
        // so 5 pulses total.
        assert_eq!(g.pulse(), 5);
    }

    #[test]
    fn run_reports_failure_instead_of_hanging() {
        /// A pathological cell that regenerates a word forever.
        struct Oscillator;
        impl Cell for Oscillator {
            fn pulse(&mut self, io: &mut CellIo) {
                io.t_out = Word::Bool(true);
                let _ = io;
            }
        }
        let mut g: Grid<Oscillator> = Grid::new(1, 2, |_, _| Oscillator);
        g.set_west_feeder(ScheduleFeeder::from_entries([(0, 0, Word::Bool(true))]));
        let err = g.run_until_quiescent(10).unwrap_err();
        assert_eq!(err, NotQuiescent { max_pulses: 10 });
        assert!(err.to_string().contains("10 pulses"));
    }

    #[test]
    fn utilisation_counts_busy_cells_only() {
        let mut g: Grid<Wire> = Grid::new(1, 4, |_, _| Wire);
        g.set_west_feeder(ScheduleFeeder::from_entries([(0, 0, Word::Bool(true))]));
        g.run_until_quiescent(100).unwrap();
        let s = g.stats();
        // One word crosses 4 cells: 4 busy cell-pulses over 4 pulses x 4 cells.
        assert_eq!(s.busy_cell_pulses, 4);
        assert_eq!(s.total_cell_pulses, 16);
        assert!((s.utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reset_allows_reuse_with_identical_results() {
        let mut g: Grid<Wire> = Grid::new(2, 1, |_, _| Wire);
        g.set_north_feeder(ScheduleFeeder::from_entries([(0, 0, Word::Elem(1))]));
        g.run_until_quiescent(100).unwrap();
        let first = g.south_emissions().emissions().to_vec();
        g.reset();
        assert_eq!(g.pulse(), 0);
        assert!(g.south_emissions().is_empty());
        g.set_north_feeder(ScheduleFeeder::from_entries([(0, 0, Word::Elem(1))]));
        g.run_until_quiescent(100).unwrap();
        assert_eq!(g.south_emissions().emissions(), first.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_sized_grid_is_rejected() {
        let _: Grid<Wire> = Grid::new(0, 3, |_, _| Wire);
    }
}
