//! Staggered input schedules (§3.1–3.2 and §8).
//!
//! "To make this all work, all of the data must be in the right place at the
//! right time" (§3.1). This module is the closed-form arithmetic for *when*
//! each element enters *which* boundary lane, for the two scheduling styles
//! in the paper:
//!
//! * [`CompareSchedule`] — the two-dimensional comparison array of §3.2:
//!   relation `A` marches south, relation `B` marches north, tuples two
//!   pulses apart within each relation, elements of one tuple one pulse
//!   apart ("staggered"), phased so that every pair `(a_i, b_j)` meets —
//!   element by element, left to right — in row `n_A - 1 + j - i` of an
//!   `n_A + n_B - 1`-row array.
//! * [`FixedSchedule`] — the §8 optimisation: "rather than marching two
//!   relations against each other ... we let only one relation move while
//!   the other remains fixed". `B` is pre-loaded one tuple per row, `A`
//!   streams south with tuples only *one* pulse apart, doubling utilisation
//!   and halving the row count to `n_B`.
//!
//! All indices are 0-based: tuple `i` of `A`, tuple `j` of `B`, element
//! (column) `c`, grid row `rho`. "Injection pulse" is the pulse at which the
//! feeder writes the word into the edge cell's input latch; a word injected
//! at pulse `s` into the north edge is the input of row `rho` at pulse
//! `s + rho` (and symmetrically from the south).

use crate::feed::ScheduleFeeder;
use crate::word::{Elem, Word};

/// Closed-form schedule for the two-dimensional comparison array (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompareSchedule {
    /// `|A|` — tuples streamed from the north.
    pub n_a: usize,
    /// `|B|` — tuples streamed from the south.
    pub n_b: usize,
    /// Tuple width (elements per tuple); the comparison columns of the grid.
    pub m: usize,
    /// Global delay applied to `A` injections so all pulses are non-negative.
    phase_a: u64,
    /// Global delay applied to `B` injections.
    phase_b: u64,
}

impl CompareSchedule {
    /// Build the schedule for comparing every tuple of `A` (cardinality
    /// `n_a`) with every tuple of `B` (cardinality `n_b`), tuple width `m`.
    ///
    /// # Panics
    /// Panics if any dimension is zero; empty relations are handled by the
    /// operator front-ends before an array is ever built.
    pub fn new(n_a: usize, n_b: usize, m: usize) -> Self {
        assert!(
            n_a > 0 && n_b > 0 && m > 0,
            "schedule dimensions must be positive"
        );
        // Choose phases with phase_b - phase_a = n_a - n_b so that pair
        // (i, j) meets in row n_a - 1 + j - i; shift both to be >= 0.
        let phase_a = n_b.saturating_sub(n_a) as u64;
        let phase_b = n_a.saturating_sub(n_b) as u64;
        CompareSchedule {
            n_a,
            n_b,
            m,
            phase_a,
            phase_b,
        }
    }

    /// Rows required: `n_A + n_B - 1` (§3.2 — every pair must cross).
    pub fn rows(&self) -> usize {
        self.n_a + self.n_b - 1
    }

    /// Comparison columns required: the tuple width `m`.
    pub fn cols(&self) -> usize {
        self.m
    }

    /// The row in which tuples `a_i` and `b_j` meet.
    pub fn meeting_row(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n_a && j < self.n_b);
        self.n_a - 1 + j - i
    }

    /// Pulse at which elements `a[i][c]` and `b[j][c]` are compared (both are
    /// inputs of cell `(meeting_row(i, j), c)` at this pulse).
    pub fn meeting_pulse(&self, i: usize, j: usize, c: usize) -> u64 {
        debug_assert!(i < self.n_a && j < self.n_b && c < self.m);
        (i + j + c) as u64 + self.phase_a + (self.n_a - 1) as u64
    }

    /// Injection pulse of element `a[i][c]` into north-edge lane `c`.
    pub fn a_injection(&self, i: usize, c: usize) -> u64 {
        (2 * i + c) as u64 + self.phase_a
    }

    /// Injection pulse of element `b[j][c]` into south-edge lane `c`.
    pub fn b_injection(&self, j: usize, c: usize) -> u64 {
        (2 * j + c) as u64 + self.phase_b
    }

    /// Injection `(lane, pulse)` of the initial `t` value for pair `(i, j)`
    /// on the west edge: it must arrive at the leftmost cell of the meeting
    /// row exactly when the first elements of the two tuples do (§3.1).
    pub fn t_injection(&self, i: usize, j: usize) -> (usize, u64) {
        (self.meeting_row(i, j), self.meeting_pulse(i, j, 0))
    }

    /// Pulse at which `t_{ij}` is computed by the rightmost comparison cell
    /// of its row, i.e. the pulse recorded by the east collector of a grid
    /// that is exactly `m` columns wide.
    pub fn t_exit_pulse(&self, i: usize, j: usize) -> u64 {
        self.meeting_pulse(i, j, self.m - 1)
    }

    /// Inverse of [`Self::t_exit_pulse`]: which pair's `t` exited east from
    /// `row` at `pulse`? Returns `None` for `(row, pulse)` combinations at
    /// which no result is scheduled.
    pub fn pair_at_exit(&self, row: usize, pulse: u64) -> Option<(usize, usize)> {
        if row >= self.rows() {
            return None;
        }
        // row  = n_a - 1 + j - i        => j - i = row - (n_a - 1)
        // pulse = i + j + (m-1) + phase_a + n_a - 1
        let diff = row as i64 - (self.n_a as i64 - 1);
        let sum = pulse as i64 - (self.m as i64 - 1) - self.phase_a as i64 - (self.n_a as i64 - 1);
        let two_i = sum - diff;
        let two_j = sum + diff;
        if two_i < 0 || two_j < 0 || two_i % 2 != 0 || two_j % 2 != 0 {
            return None;
        }
        let (i, j) = ((two_i / 2) as usize, (two_j / 2) as usize);
        (i < self.n_a && j < self.n_b).then_some((i, j))
    }

    /// Index of the accumulation column when a linear accumulation array
    /// (§4.2) is appended to the comparison array: column `m` of an
    /// `(m + 1)`-wide grid.
    pub fn acc_col(&self) -> usize {
        self.m
    }

    /// Injection pulse (north edge, lane [`Self::acc_col`]) of the initial
    /// accumulated value `t_i = FALSE` for tuple `a_i` (§4.2: "provided we
    /// initialize the value moving down through the accumulation array as
    /// FALSE").
    pub fn acc_injection(&self, i: usize) -> u64 {
        debug_assert!(i < self.n_a);
        (2 * i + self.m) as u64 + self.phase_a
    }

    /// Pulse at which the fully accumulated `t_i` leaves the bottom of the
    /// accumulation array (south edge, lane [`Self::acc_col`]).
    pub fn acc_exit_pulse(&self, i: usize) -> u64 {
        self.acc_injection(i) + (self.rows() - 1) as u64
    }

    /// Inverse of [`Self::acc_exit_pulse`].
    pub fn tuple_at_acc_exit(&self, pulse: u64) -> Option<usize> {
        let base = self.m as i64 + self.phase_a as i64 + (self.rows() as i64 - 1);
        let two_i = pulse as i64 - base;
        if two_i < 0 || two_i % 2 != 0 {
            return None;
        }
        let i = (two_i / 2) as usize;
        (i < self.n_a).then_some(i)
    }

    /// An upper bound on the pulse at which the grid is guaranteed to have
    /// drained — used as the `run_until_quiescent` budget.
    pub fn pulse_bound(&self) -> u64 {
        // Last injection + longest possible traversal (rows + cols), padded.
        let last_inject = self
            .a_injection(self.n_a - 1, self.m - 1)
            .max(self.b_injection(self.n_b - 1, self.m - 1))
            .max(self.acc_injection(self.n_a - 1));
        last_inject + (self.rows() + self.m + 2) as u64 + 4
    }

    /// Build the north-edge feeder carrying relation `A` (one tuple per
    /// `tuples[i]`, each of width `m`).
    pub fn a_feeder(&self, tuples: &[Vec<Elem>]) -> ScheduleFeeder {
        debug_assert_eq!(tuples.len(), self.n_a);
        let mut f = ScheduleFeeder::new();
        for (i, tup) in tuples.iter().enumerate() {
            debug_assert_eq!(tup.len(), self.m);
            for (c, &e) in tup.iter().enumerate() {
                f.push(self.a_injection(i, c), c, Word::Elem(e));
            }
        }
        f
    }

    /// Build the south-edge feeder carrying relation `B`.
    pub fn b_feeder(&self, tuples: &[Vec<Elem>]) -> ScheduleFeeder {
        debug_assert_eq!(tuples.len(), self.n_b);
        let mut f = ScheduleFeeder::new();
        for (j, tup) in tuples.iter().enumerate() {
            debug_assert_eq!(tup.len(), self.m);
            for (c, &e) in tup.iter().enumerate() {
                f.push(self.b_injection(j, c), c, Word::Elem(e));
            }
        }
        f
    }

    /// Build the west-edge feeder of initial `t` values. `initial(i, j)`
    /// supplies the boolean injected for pair `(i, j)`: `TRUE` everywhere
    /// for plain comparison (§3.2), `FALSE` on the diagonal and upper
    /// triangle for remove-duplicates (§5).
    pub fn t_feeder(&self, mut initial: impl FnMut(usize, usize) -> bool) -> ScheduleFeeder {
        let mut f = ScheduleFeeder::new();
        for i in 0..self.n_a {
            for j in 0..self.n_b {
                let (lane, pulse) = self.t_injection(i, j);
                f.push(pulse, lane, Word::Bool(initial(i, j)));
            }
        }
        f
    }

    /// Build the north-edge injections of the initial accumulated values
    /// `t_i = FALSE` into the accumulation column (merged into the `A`
    /// feeder by callers that use an `(m + 1)`-wide grid).
    pub fn acc_feeder_entries(&self) -> Vec<(u64, usize, Word)> {
        (0..self.n_a)
            .map(|i| (self.acc_injection(i), self.acc_col(), Word::Bool(false)))
            .collect()
    }
}

/// Closed-form schedule for the fixed-operand arrays of §8: `B` pre-loaded
/// (one tuple per row, one element per cell), `A` streaming south with
/// consecutive tuples one pulse apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedSchedule {
    /// `|A|` — tuples streamed from the north.
    pub n_a: usize,
    /// `|B|` — tuples pre-loaded, one per row.
    pub n_b: usize,
    /// Tuple width.
    pub m: usize,
}

impl FixedSchedule {
    /// Build the schedule. Panics if any dimension is zero.
    pub fn new(n_a: usize, n_b: usize, m: usize) -> Self {
        assert!(
            n_a > 0 && n_b > 0 && m > 0,
            "schedule dimensions must be positive"
        );
        FixedSchedule { n_a, n_b, m }
    }

    /// Rows required: one per stored tuple of `B`.
    pub fn rows(&self) -> usize {
        self.n_b
    }

    /// Comparison columns required.
    pub fn cols(&self) -> usize {
        self.m
    }

    /// Injection pulse of element `a[i][c]` into north-edge lane `c`:
    /// consecutive tuples only one pulse apart (the stored operand does not
    /// move, so no relative-velocity constraint applies).
    pub fn a_injection(&self, i: usize, c: usize) -> u64 {
        (i + c) as u64
    }

    /// Pulse at which `a[i][c]` is compared against the stored `b[j][c]`
    /// (at cell `(j, c)`).
    pub fn meeting_pulse(&self, i: usize, j: usize, c: usize) -> u64 {
        (i + j + c) as u64
    }

    /// Injection `(lane, pulse)` of the initial `t` for pair `(i, j)`.
    pub fn t_injection(&self, i: usize, j: usize) -> (usize, u64) {
        (j, self.meeting_pulse(i, j, 0))
    }

    /// Pulse at which `t_{ij}` exits east from row `j`.
    pub fn t_exit_pulse(&self, i: usize, j: usize) -> u64 {
        self.meeting_pulse(i, j, self.m - 1)
    }

    /// Inverse of [`Self::t_exit_pulse`].
    pub fn pair_at_exit(&self, row: usize, pulse: u64) -> Option<(usize, usize)> {
        if row >= self.n_b {
            return None;
        }
        let i = pulse as i64 - (self.m as i64 - 1) - row as i64;
        (i >= 0 && (i as usize) < self.n_a).then_some((i as usize, row))
    }

    /// Accumulation column index (column `m` of an `(m + 1)`-wide grid).
    pub fn acc_col(&self) -> usize {
        self.m
    }

    /// Injection pulse of the initial `t_i` into the accumulation column.
    pub fn acc_injection(&self, i: usize) -> u64 {
        (i + self.m) as u64
    }

    /// Pulse at which the accumulated `t_i` exits south.
    pub fn acc_exit_pulse(&self, i: usize) -> u64 {
        self.acc_injection(i) + (self.n_b - 1) as u64
    }

    /// Inverse of [`Self::acc_exit_pulse`].
    pub fn tuple_at_acc_exit(&self, pulse: u64) -> Option<usize> {
        let i = pulse as i64 - self.m as i64 - (self.n_b as i64 - 1);
        (i >= 0 && (i as usize) < self.n_a).then_some(i as usize)
    }

    /// Quiescence budget.
    pub fn pulse_bound(&self) -> u64 {
        (self.n_a + self.n_b + 2 * self.m + 6) as u64
    }

    /// Build the north-edge feeder for the streaming relation `A`.
    pub fn a_feeder(&self, tuples: &[Vec<Elem>]) -> ScheduleFeeder {
        debug_assert_eq!(tuples.len(), self.n_a);
        let mut f = ScheduleFeeder::new();
        for (i, tup) in tuples.iter().enumerate() {
            debug_assert_eq!(tup.len(), self.m);
            for (c, &e) in tup.iter().enumerate() {
                f.push(self.a_injection(i, c), c, Word::Elem(e));
            }
        }
        f
    }

    /// West-edge feeder of initial `t` values.
    pub fn t_feeder(&self, mut initial: impl FnMut(usize, usize) -> bool) -> ScheduleFeeder {
        let mut f = ScheduleFeeder::new();
        for i in 0..self.n_a {
            for j in 0..self.n_b {
                let (lane, pulse) = self.t_injection(i, j);
                f.push(pulse, lane, Word::Bool(initial(i, j)));
            }
        }
        f
    }

    /// North-edge injections of initial accumulated values.
    pub fn acc_feeder_entries(&self) -> Vec<(u64, usize, Word)> {
        (0..self.n_a)
            .map(|i| (self.acc_injection(i), self.acc_col(), Word::Bool(false)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pair_meets_in_a_valid_row_exactly_once() {
        for (n_a, n_b) in [(1, 1), (3, 3), (2, 5), (7, 2)] {
            let s = CompareSchedule::new(n_a, n_b, 3);
            let mut seen = std::collections::HashSet::new();
            for i in 0..n_a {
                for j in 0..n_b {
                    let row = s.meeting_row(i, j);
                    assert!(row < s.rows(), "row {row} out of range");
                    let pulse = s.meeting_pulse(i, j, 0);
                    assert!(
                        seen.insert((row, pulse)),
                        "pair collision at ({row},{pulse})"
                    );
                }
            }
        }
    }

    #[test]
    fn meeting_is_consistent_with_injection_travel_times() {
        // a[i][c] injected at north lane c reaches row rho after rho pulses;
        // b[j][c] injected at south reaches row rho after rows-1-rho pulses.
        let s = CompareSchedule::new(4, 6, 2);
        for i in 0..4 {
            for j in 0..6 {
                for c in 0..2 {
                    let rho = s.meeting_row(i, j) as u64;
                    let tau = s.meeting_pulse(i, j, c);
                    assert_eq!(s.a_injection(i, c) + rho, tau);
                    assert_eq!(s.b_injection(j, c) + (s.rows() as u64 - 1 - rho), tau);
                }
            }
        }
    }

    #[test]
    fn elements_within_a_tuple_are_staggered_by_one_pulse() {
        let s = CompareSchedule::new(3, 3, 4);
        for c in 1..4 {
            assert_eq!(s.a_injection(1, c), s.a_injection(1, c - 1) + 1);
            assert_eq!(s.b_injection(2, c), s.b_injection(2, c - 1) + 1);
        }
    }

    #[test]
    fn consecutive_tuples_are_two_pulses_apart() {
        // §3.2: "each tuple is two steps behind the tuple that preceded it".
        let s = CompareSchedule::new(5, 4, 2);
        assert_eq!(s.a_injection(3, 0), s.a_injection(2, 0) + 2);
        assert_eq!(s.b_injection(3, 0), s.b_injection(2, 0) + 2);
    }

    #[test]
    fn pair_at_exit_inverts_t_exit_pulse() {
        for (n_a, n_b, m) in [(3, 3, 1), (4, 2, 3), (1, 6, 2), (8, 8, 5)] {
            let s = CompareSchedule::new(n_a, n_b, m);
            for i in 0..n_a {
                for j in 0..n_b {
                    let row = s.meeting_row(i, j);
                    let pulse = s.t_exit_pulse(i, j);
                    assert_eq!(s.pair_at_exit(row, pulse), Some((i, j)));
                }
            }
            // Off-schedule queries decode to nothing.
            assert_eq!(s.pair_at_exit(s.rows(), 0), None);
            assert_eq!(s.pair_at_exit(0, 1_000_000), None);
        }
    }

    #[test]
    fn accumulated_value_rides_one_row_per_pulse_behind_the_results() {
        // t_i must sit at row meeting_row(i, j) exactly one pulse after
        // t_{ij} leaves the rightmost comparison cell.
        let s = CompareSchedule::new(4, 5, 3);
        for i in 0..4 {
            for j in 0..5 {
                let rho = s.meeting_row(i, j) as u64;
                assert_eq!(s.acc_injection(i) + rho, s.t_exit_pulse(i, j) + 1);
            }
        }
    }

    #[test]
    fn tuple_at_acc_exit_inverts_acc_exit_pulse() {
        let s = CompareSchedule::new(6, 3, 2);
        for i in 0..6 {
            assert_eq!(s.tuple_at_acc_exit(s.acc_exit_pulse(i)), Some(i));
        }
        assert_eq!(s.tuple_at_acc_exit(0), None);
    }

    #[test]
    fn latency_is_linear_in_relation_sizes() {
        // The headline systolic property: total pulses grow additively, not
        // multiplicatively, in n_A, n_B and m.
        let s = CompareSchedule::new(100, 100, 10);
        assert!(
            s.pulse_bound() < 450,
            "bound {} not linear",
            s.pulse_bound()
        );
    }

    #[test]
    fn feeders_contain_one_entry_per_element() {
        let s = CompareSchedule::new(2, 3, 2);
        let a = vec![vec![1, 2], vec![3, 4]];
        let b = vec![vec![5, 6], vec![7, 8], vec![9, 10]];
        assert_eq!(s.a_feeder(&a).len(), 4);
        assert_eq!(s.b_feeder(&b).len(), 6);
        assert_eq!(s.t_feeder(|_, _| true).len(), 6);
        assert_eq!(s.acc_feeder_entries().len(), 2);
    }

    #[test]
    fn fixed_schedule_streams_tuples_one_pulse_apart() {
        let s = FixedSchedule::new(5, 3, 2);
        assert_eq!(s.a_injection(2, 0), s.a_injection(1, 0) + 1);
        assert_eq!(s.rows(), 3, "fixed array needs only |B| rows");
    }

    #[test]
    fn fixed_pair_decoding_round_trips() {
        let s = FixedSchedule::new(4, 3, 2);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(s.pair_at_exit(j, s.t_exit_pulse(i, j)), Some((i, j)));
            }
        }
        for i in 0..4 {
            assert_eq!(s.tuple_at_acc_exit(s.acc_exit_pulse(i)), Some(i));
        }
    }

    #[test]
    fn fixed_accumulator_alignment() {
        let s = FixedSchedule::new(4, 5, 3);
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(s.acc_injection(i) + j as u64, s.t_exit_pulse(i, j) + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        CompareSchedule::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fixed_zero_dimension_rejected() {
        FixedSchedule::new(1, 1, 0);
    }
}
