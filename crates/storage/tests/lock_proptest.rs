//! Property tests for the lock table under real thread interleavings.
//!
//! The serializability claim the server relies on: a reader holding shared
//! locks can never observe a relation mid-write. Writers here deliberately
//! publish their data in several steps with yields in between — the only
//! thing standing between a reader and a half-written relation is the lock
//! table. A brief `Mutex` guards each individual step for memory safety
//! (this crate forbids `unsafe`), so any torn observation the reader could
//! make is the lock table's fault alone.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;

use proptest::prelude::*;
use systolic_storage::{LockMode, LockTable};

/// Elements each completed write publishes. Intermediate states are
/// strictly shorter, so "complete" is recognisable from the data alone.
const LEN: usize = 8;

const NAMES: &[&str] = &["r0", "r1", "r2"];

type Shelf = Arc<Mutex<HashMap<String, Vec<u64>>>>;

/// Write `vec![value; LEN]` under an exclusive lock, one element per step,
/// yielding between steps so concurrent threads get every chance to
/// interleave. Without the exclusive lock a reader would routinely see a
/// prefix.
fn write_relation(table: &LockTable, shelf: &Shelf, name: &str, value: u64) {
    let _guard = table.acquire(name, LockMode::Exclusive);
    {
        let mut data = shelf.lock().unwrap();
        data.insert(name.to_string(), Vec::new());
    }
    for _ in 0..LEN {
        {
            let mut data = shelf.lock().unwrap();
            data.get_mut(name).unwrap().push(value);
        }
        thread::yield_now();
    }
}

/// Read every requested relation under one all-or-nothing shared grant and
/// check each is either absent or complete and uniform.
fn read_relations(table: &LockTable, shelf: &Shelf, names: &[&str]) -> Result<(), String> {
    let wants: Vec<(String, LockMode)> = names
        .iter()
        .map(|n| (n.to_string(), LockMode::Shared))
        .collect();
    let _guard = table.acquire_all(wants);
    for name in names {
        let snapshot = {
            let data = shelf.lock().unwrap();
            data.get(*name).cloned()
        };
        thread::yield_now();
        // Re-read: under a correct shared lock the relation cannot change
        // while we hold it, so both observations must agree.
        let again = {
            let data = shelf.lock().unwrap();
            data.get(*name).cloned()
        };
        if snapshot != again {
            return Err(format!("{name}: relation mutated under a shared lock"));
        }
        let Some(rows) = snapshot else { continue };
        if rows.len() != LEN {
            return Err(format!(
                "{name}: observed partial load of {} / {LEN} rows",
                rows.len()
            ));
        }
        if rows.iter().any(|&v| v != rows[0]) {
            return Err(format!("{name}: observed rows from two writers: {rows:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixes of concurrent writers and multi-name readers: no reader
    /// ever sees a partial or torn relation, and the table drains to idle.
    #[test]
    fn readers_never_observe_partially_loaded_relations(
        writer_ops in prop::collection::vec((0usize..3, 1u64..1000), 4..24),
        reader_ops in prop::collection::vec(0usize..3, 4..24),
    ) {
        let table = Arc::new(LockTable::new());
        let shelf: Shelf = Arc::new(Mutex::new(HashMap::new()));
        let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

        thread::scope(|scope| {
            // Writers: each claims a slice of the op list.
            for chunk in writer_ops.chunks(writer_ops.len().div_ceil(3).max(1)) {
                let table = Arc::clone(&table);
                let shelf = Arc::clone(&shelf);
                scope.spawn(move || {
                    for &(name_idx, value) in chunk {
                        write_relation(&table, &shelf, NAMES[name_idx], value);
                    }
                });
            }
            // Readers: each op reads one name, plus a periodic read of the
            // whole set under a single all-or-nothing grant.
            for chunk in reader_ops.chunks(reader_ops.len().div_ceil(3).max(1)) {
                let table = Arc::clone(&table);
                let shelf = Arc::clone(&shelf);
                let errors = Arc::clone(&errors);
                scope.spawn(move || {
                    for (i, &name_idx) in chunk.iter().enumerate() {
                        let names: Vec<&str> = if i % 3 == 0 {
                            NAMES.to_vec()
                        } else {
                            vec![NAMES[name_idx]]
                        };
                        if let Err(e) = read_relations(&table, &shelf, &names) {
                            errors.lock().unwrap().push(e);
                        }
                    }
                });
            }
        });

        let errors = errors.lock().unwrap();
        prop_assert!(errors.is_empty(), "isolation violations: {errors:?}");
        prop_assert_eq!(table.held_names(), 0, "all grants released");

        // Every surviving relation is some writer's complete output.
        let data = shelf.lock().unwrap();
        for (name, rows) in data.iter() {
            prop_assert_eq!(rows.len(), LEN, "{} left partial", name);
            let value = rows[0];
            prop_assert!(rows.iter().all(|&v| v == value));
            prop_assert!(
                writer_ops
                    .iter()
                    .any(|&(idx, v)| NAMES[idx] == name && v == value),
                "{} holds a value no writer produced",
                name
            );
        }
    }

    /// Writers wanting overlapping name sets in conflicting orders cannot
    /// deadlock: all-or-nothing acquisition has no hold-and-wait. The test
    /// simply completing (threads joined by scope exit) is the assertion.
    #[test]
    fn conflicting_multi_name_writers_always_complete(
        sets in prop::collection::vec(prop::collection::vec(0usize..3, 1..4), 4..16),
    ) {
        let table = Arc::new(LockTable::new());
        thread::scope(|scope| {
            for set in &sets {
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    for _ in 0..4 {
                        let wants: Vec<(String, LockMode)> = set
                            .iter()
                            .enumerate()
                            .map(|(i, &idx)| {
                                let mode = if i % 2 == 0 {
                                    LockMode::Exclusive
                                } else {
                                    LockMode::Shared
                                };
                                (NAMES[idx].to_string(), mode)
                            })
                            .collect();
                        let guard = table.acquire_all(wants);
                        // Duplicates collapsed: names are unique and sorted.
                        let held = guard.held();
                        for pair in held.windows(2) {
                            assert!(pair[0].0 < pair[1].0, "held set sorted/deduped");
                        }
                        thread::yield_now();
                        drop(guard);
                    }
                });
            }
        });
        prop_assert_eq!(table.held_names(), 0);
    }
}
