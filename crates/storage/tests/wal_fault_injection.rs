//! Exhaustive fault injection over the WAL tail.
//!
//! A crash can land mid-append, so recovery must cope with a log whose
//! final frame is cut at *any* byte boundary — and with bit rot anywhere in
//! it. These tests walk every such offset: the intact prefix always
//! replays exactly, the damaged tail is always dropped, and the log keeps
//! accepting appends afterwards.

use std::fs;
use std::path::PathBuf;

use systolic_storage::wal::{encode_frame, Wal, WalRecord};
use systolic_storage::{StorageEngine, StorageMetrics};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sdb_walfault_{}_{name}", std::process::id()));
    let _ = fs::remove_file(&p);
    let _ = fs::remove_dir_all(&p);
    p
}

/// A small mixed history: three loads and a store-query.
fn history() -> Vec<WalRecord> {
    vec![
        WalRecord::Load {
            name: "emp".to_string(),
            kinds: vec!["str".to_string(), "int".to_string()],
            csv: "ada,10\ngrace,20\n".to_string(),
        },
        WalRecord::Load {
            name: "dept".to_string(),
            kinds: vec!["int".to_string(), "str".to_string()],
            csv: "10,storage\n".to_string(),
        },
        WalRecord::Query {
            text: "store(filter(scan(emp), c1 >= 20), rich)".to_string(),
        },
        WalRecord::Load {
            name: "a".to_string(),
            kinds: vec!["int".to_string()],
            csv: "1\n2\n3\n".to_string(),
        },
    ]
}

/// The full log bytes and the offset where the final frame begins.
/// `Wal::append` stamps LSNs 0..n in order, so concatenating
/// `encode_frame(i, r)` reproduces its on-disk bytes exactly.
fn full_log() -> (Vec<u8>, usize) {
    let records = history();
    let mut bytes = Vec::new();
    let mut final_start = 0usize;
    for (i, r) in records.iter().enumerate() {
        final_start = bytes.len();
        bytes.extend_from_slice(&encode_frame(i as u64, r));
    }
    (bytes, final_start)
}

#[test]
fn truncation_at_every_byte_of_the_final_record_recovers_the_prefix() {
    let (full, final_start) = full_log();
    let records = history();
    let path = tmp("trunc");

    for cut in final_start..full.len() {
        fs::write(&path, &full[..cut]).unwrap();
        let (mut wal, recs, tail) = Wal::open(&path, StorageMetrics::shared()).unwrap();
        assert_eq!(
            recs.len(),
            records.len() - 1,
            "cut at {cut}: exactly the intact prefix replays"
        );
        for (i, (lsn, rec)) in recs.iter().enumerate() {
            assert_eq!(*lsn, i as u64, "cut at {cut}");
            assert_eq!(rec, &records[i], "cut at {cut}");
        }
        assert_eq!(tail.valid_bytes, final_start as u64, "cut at {cut}");
        assert_eq!(
            tail.dropped_bytes,
            (cut - final_start) as u64,
            "cut at {cut}"
        );
        // The torn tail was truncated on open, so the next append lands on
        // a clean frame boundary and survives a re-open.
        wal.append(&records[records.len() - 1]).unwrap();
        drop(wal);
        let (_, recs, tail) = Wal::open(&path, StorageMetrics::shared()).unwrap();
        assert_eq!(tail.dropped_bytes, 0, "cut at {cut}: tail healed");
        assert_eq!(recs.len(), records.len(), "cut at {cut}: re-append lands");
        assert_eq!(recs[records.len() - 1].1, records[records.len() - 1]);
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn corruption_at_every_byte_of_the_final_record_drops_only_that_record() {
    let (full, final_start) = full_log();
    let records = history();
    let path = tmp("flip");

    for at in final_start..full.len() {
        let mut bytes = full.clone();
        bytes[at] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (_, recs, tail) = Wal::open(&path, StorageMetrics::shared()).unwrap();
        assert_eq!(
            recs.len(),
            records.len() - 1,
            "flip at {at}: the corrupted final frame must not replay"
        );
        for (i, (_, rec)) in recs.iter().enumerate() {
            assert_eq!(rec, &records[i], "flip at {at}: prefix unharmed");
        }
        assert_eq!(
            tail.dropped_bytes,
            (full.len() - final_start) as u64,
            "flip at {at}: the whole damaged tail is dropped"
        );
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn corruption_mid_log_stops_replay_at_the_damage() {
    let (full, _) = full_log();
    let path = tmp("midflip");
    // Flip one byte inside the very first frame: nothing replays, and the
    // whole file is a torn tail.
    let mut bytes = full.clone();
    bytes[20] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    let (_, recs, tail) = Wal::open(&path, StorageMetrics::shared()).unwrap();
    assert!(recs.is_empty(), "a corrupt first frame fails its checksum");
    assert_eq!(tail.dropped_bytes, full.len() as u64);
    let _ = fs::remove_file(&path);
}

/// The same exhaustive walk one layer up: an engine whose `wal.log` is cut
/// mid-final-record recovers the prefix history and reports the torn tail.
#[test]
fn engine_recovery_reports_torn_tails_at_any_offset() {
    let (full, final_start) = full_log();
    let records = history();
    let dir = tmp("engine");

    // A representative spread, not all offsets — the byte-exhaustive walk
    // above already covers the parser; this checks the engine plumbing.
    for cut in [final_start, final_start + 1, full.len() - 1] {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("wal.log"), &full[..cut]).unwrap();
        let (engine, replay, report) =
            StorageEngine::open_with(&dir, 8, systolic_storage::ReplacerKind::Clock).unwrap();
        assert_eq!(replay.len(), records.len() - 1, "cut at {cut}");
        assert_eq!(replay, records[..records.len() - 1], "cut at {cut}");
        assert_eq!(report.wal_records, records.len() - 1, "cut at {cut}");
        assert_eq!(report.checkpoint_records, 0);
        assert_eq!(report.dropped_tail_bytes, (cut - final_start) as u64);
        assert_eq!(engine.wal_records(), records.len() - 1);
    }
    let _ = fs::remove_dir_all(&dir);
}
