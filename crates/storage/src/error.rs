//! Storage-layer errors.

use std::fmt;
use std::io;

/// Everything that can go wrong beneath the disk model.
#[derive(Debug)]
pub enum StorageError {
    /// An OS-level I/O failure.
    Io(io::Error),
    /// A page or log frame failed its integrity checks. `detail` says which
    /// check (magic, checksum, length, identity) and where.
    Corrupt { detail: String },
    /// A named blob is not in the store's directory.
    UnknownBlob { name: String },
    /// A relation blob failed to decode back into a `MultiRelation`.
    Codec { detail: String },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage io: {e}"),
            StorageError::Corrupt { detail } => write!(f, "corrupt storage: {detail}"),
            StorageError::UnknownBlob { name } => write!(f, "unknown blob: {name}"),
            StorageError::Codec { detail } => write!(f, "relation codec: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Shorthand used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
