//! `sdb_storage_*` instruments.
//!
//! All storage series live on the telemetry crate's process-global registry,
//! so the server's `METRICS` verb (which appends the global registry's
//! exposition) picks them up with no extra plumbing. Tests that need
//! isolation build a [`StorageMetrics`] over a private registry instead.
//!
//! Everything here measures *host* time and host cache behaviour. None of
//! these numbers ever feed the simulated pulse accounting — that is the
//! two-clocks rule the repo holds everywhere.

use std::sync::{Arc, OnceLock};

use systolic_telemetry::metrics::{global, Counter, Histogram, Registry, LATENCY_BOUNDS_NS};

/// Shared handles to every storage instrument.
#[derive(Debug, Clone)]
pub struct StorageMetrics {
    /// Buffer-pool page requests served from a resident frame.
    pub pool_hits: Arc<Counter>,
    /// Buffer-pool page requests that went to the page file.
    pub pool_misses: Arc<Counter>,
    /// Frames evicted by the replacement policy.
    pub pool_evictions: Arc<Counter>,
    /// WAL records appended.
    pub wal_records: Arc<Counter>,
    /// WAL bytes appended (frame bytes, headers included).
    pub wal_bytes: Arc<Counter>,
    /// fsync calls issued by the WAL.
    pub wal_fsyncs: Arc<Counter>,
    /// Host nanoseconds per WAL fsync.
    pub wal_fsync_ns: Arc<Histogram>,
    /// Checkpoints taken.
    pub checkpoints: Arc<Counter>,
    /// Logical records redone during recovery.
    pub recovery_records: Arc<Counter>,
    /// Host nanoseconds spent in recovery.
    pub recovery_ns: Arc<Counter>,
    /// Staging-memory relations evicted by the replacement policy
    /// (`MemoryModule` evictions, driven by the same `Replacer`).
    pub staging_evictions: Arc<Counter>,
}

impl StorageMetrics {
    /// Build the instrument set on `registry`.
    pub fn from_registry(registry: &Registry) -> StorageMetrics {
        StorageMetrics {
            pool_hits: registry.counter(
                "sdb_storage_pool_hits_total",
                "Buffer-pool page requests served from a resident frame.",
            ),
            pool_misses: registry.counter(
                "sdb_storage_pool_misses_total",
                "Buffer-pool page requests that read the page file.",
            ),
            pool_evictions: registry.counter(
                "sdb_storage_pool_evictions_total",
                "Buffer-pool frames evicted by the replacement policy.",
            ),
            wal_records: registry.counter(
                "sdb_storage_wal_records_total",
                "Write-ahead log records appended.",
            ),
            wal_bytes: registry.counter(
                "sdb_storage_wal_bytes_total",
                "Write-ahead log bytes appended.",
            ),
            wal_fsyncs: registry.counter(
                "sdb_storage_wal_fsyncs_total",
                "fsync calls issued by the write-ahead log.",
            ),
            wal_fsync_ns: registry.histogram(
                "sdb_storage_wal_fsync_ns",
                "Host nanoseconds per WAL fsync.",
                LATENCY_BOUNDS_NS,
            ),
            checkpoints: registry.counter(
                "sdb_storage_checkpoints_total",
                "Checkpoints taken (snapshot written, WAL truncated).",
            ),
            recovery_records: registry.counter(
                "sdb_storage_recovery_records_total",
                "Logical records redone during crash recovery.",
            ),
            recovery_ns: registry.counter(
                "sdb_storage_recovery_ns_total",
                "Host nanoseconds spent in crash recovery.",
            ),
            staging_evictions: registry.counter(
                "sdb_storage_staging_evictions_total",
                "Staging-memory relations evicted by the replacement policy.",
            ),
        }
    }

    /// The process-global instrument set (what servers use; rendered into
    /// the `METRICS` exposition automatically).
    pub fn shared() -> Arc<StorageMetrics> {
        static SHARED: OnceLock<Arc<StorageMetrics>> = OnceLock::new();
        SHARED
            .get_or_init(|| Arc::new(StorageMetrics::from_registry(global())))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_render_under_the_sdb_storage_prefix() {
        let r = Registry::new();
        let m = StorageMetrics::from_registry(&r);
        m.pool_hits.add(3);
        m.wal_fsync_ns.observe(10_000);
        let text = r.render();
        assert!(text.contains("sdb_storage_pool_hits_total 3"), "{text}");
        assert!(text.contains("# TYPE sdb_storage_wal_fsync_ns histogram"));
        assert!(text.contains("sdb_storage_staging_evictions_total 0"));
    }

    #[test]
    fn shared_set_is_a_singleton() {
        let a = StorageMetrics::shared();
        let b = StorageMetrics::shared();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
