//! Fixed-size pages with checksummed headers.
//!
//! Every on-disk unit is exactly [`PAGE_SIZE`] bytes: a 33-byte header
//! followed by payload. The header carries a magic number, the page's kind
//! and identity, the LSN current when the page was written, the payload
//! length, and an FNV-1a-64 checksum over the *entire* page (with the
//! checksum field zeroed). A write that is torn mid-page — the classic
//! failure a 512-byte-sector disk inflicts on an 8 KiB page — leaves a
//! checksum mismatch, so [`Page::decode`] refuses it rather than serving
//! half-old half-new bytes.

use crate::error::{Result, StorageError};
use crate::fnv1a64;

/// Page size in bytes. 8 KiB: large enough that a cylinder-sized relation
/// spans few pages, small enough that the buffer pool's units are real.
pub const PAGE_SIZE: usize = 8192;

/// Header layout: magic(4) kind(1) page_id(8) lsn(8) len(4) checksum(8).
pub const HEADER_LEN: usize = 33;

/// Payload capacity of one page.
pub const PAYLOAD_CAP: usize = PAGE_SIZE - HEADER_LEN;

/// "SDBP" — systolic-db page.
pub const MAGIC: u32 = 0x5344_4250;

const CHECKSUM_OFFSET: usize = 25;

/// What a page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Unused (or logically deleted) page.
    Free = 0,
    /// First page of a blob: payload starts with the blob directory entry.
    BlobHead = 1,
    /// Continuation page of a blob.
    BlobCont = 2,
}

impl PageKind {
    fn from_byte(b: u8) -> Result<PageKind> {
        match b {
            0 => Ok(PageKind::Free),
            1 => Ok(PageKind::BlobHead),
            2 => Ok(PageKind::BlobCont),
            other => Err(StorageError::Corrupt {
                detail: format!("unknown page kind {other}"),
            }),
        }
    }
}

/// One decoded page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// What the page holds.
    pub kind: PageKind,
    /// Position in the page file; also stored in the header so a page read
    /// from the wrong offset (misdirected write) is caught.
    pub page_id: u64,
    /// LSN current when the page was written. When two head pages claim the
    /// same blob name, the higher LSN wins.
    pub lsn: u64,
    /// Payload bytes (at most [`PAYLOAD_CAP`]).
    pub payload: Vec<u8>,
}

impl Page {
    /// Build a page, panicking if the payload exceeds capacity (callers
    /// split blobs into chunks before constructing pages).
    pub fn new(kind: PageKind, page_id: u64, lsn: u64, payload: Vec<u8>) -> Page {
        assert!(
            payload.len() <= PAYLOAD_CAP,
            "payload {} exceeds page capacity {PAYLOAD_CAP}",
            payload.len()
        );
        Page {
            kind,
            page_id,
            lsn,
            payload,
        }
    }

    /// Serialize to exactly [`PAGE_SIZE`] bytes with the checksum filled in.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[4] = self.kind as u8;
        buf[5..13].copy_from_slice(&self.page_id.to_le_bytes());
        buf[13..21].copy_from_slice(&self.lsn.to_le_bytes());
        buf[21..25].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        // Checksum field is zero while hashing.
        buf[HEADER_LEN..HEADER_LEN + self.payload.len()].copy_from_slice(&self.payload);
        let sum = fnv1a64(&buf);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode and verify a page read from position `expect_id`.
    ///
    /// Rejects short buffers, bad magic, checksum mismatches (torn writes),
    /// out-of-range lengths and identity mismatches.
    pub fn decode(bytes: &[u8], expect_id: u64) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt {
                detail: format!("page {expect_id}: short read ({} bytes)", bytes.len()),
            });
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(StorageError::Corrupt {
                detail: format!("page {expect_id}: bad magic {magic:#x}"),
            });
        }
        let stored_sum = u64::from_le_bytes(
            bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8]
                .try_into()
                .unwrap(),
        );
        let mut zeroed = bytes.to_vec();
        zeroed[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
        let computed = fnv1a64(&zeroed);
        if stored_sum != computed {
            return Err(StorageError::Corrupt {
                detail: format!("page {expect_id}: checksum mismatch (torn write?)"),
            });
        }
        let kind = PageKind::from_byte(bytes[4])?;
        let page_id = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
        if page_id != expect_id {
            return Err(StorageError::Corrupt {
                detail: format!("page {expect_id}: header claims id {page_id}"),
            });
        }
        let lsn = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[21..25].try_into().unwrap()) as usize;
        if len > PAYLOAD_CAP {
            return Err(StorageError::Corrupt {
                detail: format!("page {expect_id}: payload length {len} exceeds capacity"),
            });
        }
        Ok(Page {
            kind,
            page_id,
            lsn,
            payload: bytes[HEADER_LEN..HEADER_LEN + len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_round_trips() {
        let p = Page::new(PageKind::BlobHead, 7, 42, b"hello pages".to_vec());
        let bytes = p.encode();
        assert_eq!(bytes.len(), PAGE_SIZE);
        let back = Page::decode(&bytes, 7).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let p = Page::new(PageKind::BlobCont, 3, 9, vec![0xAB; 64]);
        let bytes = p.encode();
        // Flip one bit in each of a spread of positions: header, payload,
        // checksum itself, and the zero padding after the payload.
        for pos in [
            0usize,
            4,
            6,
            14,
            22,
            26,
            HEADER_LEN + 1,
            HEADER_LEN + 63,
            PAGE_SIZE - 1,
        ] {
            let mut broken = bytes.clone();
            broken[pos] ^= 0x01;
            assert!(
                Page::decode(&broken, 3).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn misdirected_reads_are_caught() {
        let p = Page::new(PageKind::Free, 5, 0, vec![]);
        let bytes = p.encode();
        let err = Page::decode(&bytes, 6).unwrap_err();
        assert!(err.to_string().contains("claims id 5"), "{err}");
    }

    #[test]
    fn short_buffers_are_rejected() {
        assert!(Page::decode(&[0u8; 100], 0).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_payload_panics() {
        Page::new(PageKind::BlobHead, 0, 0, vec![0; PAYLOAD_CAP + 1]);
    }
}
