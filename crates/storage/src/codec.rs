//! `MultiRelation` ↔ bytes, for storing relations as blobs.
//!
//! The encoding carries the schema (column names and domain ids) plus the
//! row-major element words — exactly what the §2.3 representation holds:
//! "each domain value is an integer" after dictionary encoding. Dictionary
//! *contents* are deliberately not here: dictionaries belong to the catalog
//! and are reconstructed by logical redo, not stored per relation.

use systolic_relation::{Column, DomainId, MultiRelation, Schema};

use crate::error::{Result, StorageError};

const MAGIC: &[u8; 4] = b"SREL";

fn corrupt(detail: impl Into<String>) -> StorageError {
    StorageError::Codec {
        detail: detail.into(),
    }
}

/// Encode a relation: `SREL | arity | columns(name, domain) | nrows | elems`.
pub fn encode_relation(rel: &MultiRelation) -> Vec<u8> {
    let arity = rel.arity();
    let mut out = Vec::with_capacity(32 + rel.len() * arity * 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(arity as u32).to_le_bytes());
    for col in rel.schema().columns() {
        out.extend_from_slice(&(col.name.len() as u32).to_le_bytes());
        out.extend_from_slice(col.name.as_bytes());
        out.extend_from_slice(&(col.domain.0 as u64).to_le_bytes());
    }
    out.extend_from_slice(&(rel.len() as u64).to_le_bytes());
    for row in rel.rows() {
        for &e in row {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    out
}

/// Decode what [`encode_relation`] produced.
pub fn decode_relation(bytes: &[u8]) -> Result<MultiRelation> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
        if bytes.len() < *at + n {
            return Err(corrupt("relation blob truncated"));
        }
        let s = &bytes[*at..*at + n];
        *at += n;
        Ok(s)
    };
    if take(&mut at, 4)? != MAGIC {
        return Err(corrupt("relation blob: bad magic"));
    }
    let arity = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
    if arity == 0 || arity > 1 << 16 {
        return Err(corrupt(format!("relation blob: implausible arity {arity}")));
    }
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut at, name_len)?.to_vec())
            .map_err(|_| corrupt("relation blob: column name not UTF-8"))?;
        let domain = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap()) as usize;
        columns.push(Column::new(name, DomainId(domain)));
    }
    let nrows = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap()) as usize;
    let expect = nrows
        .checked_mul(arity)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| corrupt("relation blob: row count overflow"))?;
    if bytes.len() != at + expect {
        return Err(corrupt(format!(
            "relation blob: {} body bytes, expected {expect}",
            bytes.len() - at
        )));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(i64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap()));
        }
        rows.push(row);
    }
    MultiRelation::new(Schema::new(columns), rows)
        .map_err(|e| corrupt(format!("relation blob: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiRelation {
        let schema = Schema::new(vec![
            Column::new("name", DomainId(0)),
            Column::new("salary", DomainId(1)),
        ]);
        MultiRelation::new(schema, vec![vec![1, 3000], vec![2, 2500], vec![-7, 0]]).unwrap()
    }

    #[test]
    fn relations_round_trip() {
        let rel = sample();
        let bytes = encode_relation(&rel);
        let back = decode_relation(&bytes).unwrap();
        assert_eq!(back.schema(), rel.schema());
        assert_eq!(back.rows(), rel.rows());
    }

    #[test]
    fn empty_relations_round_trip() {
        let schema = Schema::new(vec![Column::new("k", DomainId(4))]);
        let rel = MultiRelation::new(schema, vec![]).unwrap();
        let back = decode_relation(&encode_relation(&rel)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.schema(), rel.schema());
    }

    #[test]
    fn damage_is_rejected_not_misdecoded() {
        let bytes = encode_relation(&sample());
        assert!(decode_relation(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_relation(&[]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_relation(&wrong_magic).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_relation(&extra).is_err());
    }
}
