//! A file of fixed-size pages with positioned read/write.
//!
//! The page file is deliberately dumb: it seeks, reads exactly one page,
//! verifies it through [`Page::decode`], and that is all. Caching,
//! replacement and dirty tracking live in the buffer pool; durability
//! ordering lives in the WAL. A trailing partial page (a crash mid-append)
//! is truncated away at open — the page it was replacing, if any, is
//! recovered by the logical redo pass, never from the torn bytes.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::Result;
use crate::page::{Page, PAGE_SIZE};

/// An open page file.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    pages: u64,
}

impl PageFile {
    /// Open (creating if absent), dropping any torn trailing partial page.
    pub fn open(path: &Path) -> Result<PageFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let pages = len / PAGE_SIZE as u64;
        if len % PAGE_SIZE as u64 != 0 {
            // Crash mid-append left a partial page: cut it off.
            file.set_len(pages * PAGE_SIZE as u64)?;
        }
        Ok(PageFile {
            file,
            path: path.to_path_buf(),
            pages,
        })
    }

    /// Path this file lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of whole pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Read and verify page `id`.
    pub fn read_page(&mut self, id: u64) -> Result<Page> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut buf)?;
        Page::decode(&buf, id)
    }

    /// Write page `page.page_id`, extending the file if needed. The write is
    /// buffered by the OS until [`PageFile::sync`].
    pub fn write_page(&mut self, page: &Page) -> Result<()> {
        let bytes = page.encode();
        self.file
            .seek(SeekFrom::Start(page.page_id * PAGE_SIZE as u64))?;
        self.file.write_all(&bytes)?;
        self.pages = self.pages.max(page.page_id + 1);
        Ok(())
    }

    /// Truncate to zero pages (used when rebuilding a physical cache).
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.pages = 0;
        Ok(())
    }

    /// fsync file contents to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sdb_pagefile_{}_{name}.pg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn pages_round_trip_through_the_file() {
        let path = tmp("roundtrip");
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.pages(), 0);
        for id in 0..3u64 {
            f.write_page(&Page::new(
                PageKind::BlobCont,
                id,
                id * 10,
                vec![id as u8; 17],
            ))
            .unwrap();
        }
        f.sync().unwrap();
        assert_eq!(f.pages(), 3);
        drop(f);
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.pages(), 3);
        let p = f.read_page(1).unwrap();
        assert_eq!(p.lsn, 10);
        assert_eq!(p.payload, vec![1u8; 17]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_page_is_truncated_at_open() {
        let path = tmp("torn");
        let mut f = PageFile::open(&path).unwrap();
        f.write_page(&Page::new(PageKind::BlobHead, 0, 1, b"whole".to_vec()))
            .unwrap();
        f.sync().unwrap();
        drop(f);
        // Simulate a crash mid-append: a partial second page.
        let mut raw = OpenOptions::new().append(true).open(&path).unwrap();
        raw.write_all(&[0xEE; 100]).unwrap();
        drop(raw);
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.pages(), 1, "partial page must be dropped");
        assert!(f.read_page(0).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
