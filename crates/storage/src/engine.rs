//! Recovery orchestration: checkpoint snapshot + WAL = the durable truth.
//!
//! Layout under the data directory:
//!
//! * `wal.log` — logical redo records since the last checkpoint.
//! * `checkpoint.pg` — a paged snapshot of the full logical history,
//!   written atomically (temp file + rename), every page checksummed.
//! * `relations.pg` — the live paged store backing disk reads. This file
//!   is a rebuildable physical cache: recovery recreates it by replaying
//!   the logical history, so [`StorageEngine::open`] starts it fresh.
//!
//! Recovery = read the snapshot (if any), then the intact WAL prefix, and
//! hand the ordered records back for replay through the normal load/query
//! path. Replaying through the front door is what keeps dictionary codes —
//! and therefore every recovered `RESULT` frame — byte-identical (§2.3:
//! codes are assigned in first-appearance order).
//!
//! The history is deliberately *not* compacted at checkpoint: dropping a
//! superseded `LOAD` would change first-appearance order and silently
//! re-code every dictionary. Compaction needs a dictionary snapshot format
//! and is left to a later PR.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::blob::{BlobStore, SharedBlobStore};
use crate::error::{Result, StorageError};
use crate::metrics::StorageMetrics;
use crate::pool::ReplacerKind;
use crate::wal::{decode_records, encode_records, Wal, WalRecord};

/// Name of the blob holding the snapshot record stream.
const SNAPSHOT_BLOB: &str = "snapshot";
/// Pool frames used for snapshot I/O (sequential; a small pool suffices).
const SNAPSHOT_POOL_PAGES: usize = 8;

/// What recovery found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Records redone from the checkpoint snapshot.
    pub checkpoint_records: usize,
    /// Records redone from the WAL suffix.
    pub wal_records: usize,
    /// Torn bytes dropped from the WAL tail.
    pub dropped_tail_bytes: u64,
    /// Host nanoseconds spent reading the snapshot and log.
    pub recovery_ns: u64,
}

/// What a checkpoint wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Records in the snapshot.
    pub records: usize,
    /// Snapshot stream size in bytes (before paging).
    pub bytes: u64,
}

/// The engine: one per data directory (one per shard).
#[derive(Debug)]
pub struct StorageEngine {
    dir: PathBuf,
    wal: Wal,
    /// Full ordered logical history (snapshot + log), the next checkpoint's
    /// contents.
    history: Vec<WalRecord>,
    /// Records currently in the WAL tail (resets at checkpoint).
    wal_tail: usize,
    blobs: SharedBlobStore,
    pool_pages: usize,
    replacer: ReplacerKind,
    metrics: Arc<StorageMetrics>,
}

impl StorageEngine {
    /// Open (or create) the engine at `dir` with default pool settings.
    pub fn open(dir: &Path) -> Result<(StorageEngine, Vec<WalRecord>, RecoveryReport)> {
        StorageEngine::open_with(dir, 256, ReplacerKind::Clock)
    }

    /// Open (or create) the engine at `dir`.
    ///
    /// Returns the engine, the ordered logical records to replay through
    /// the normal load/query path, and a recovery report. Recovery happens
    /// *here*, before any listener opens: the caller replays, then serves.
    pub fn open_with(
        dir: &Path,
        pool_pages: usize,
        replacer: ReplacerKind,
    ) -> Result<(StorageEngine, Vec<WalRecord>, RecoveryReport)> {
        let start = Instant::now();
        fs::create_dir_all(dir)?;
        let metrics = StorageMetrics::shared();

        // 1. Snapshot, if one was ever completed (rename made it atomic).
        let snap_path = dir.join("checkpoint.pg");
        let mut history: Vec<WalRecord> = Vec::new();
        let mut checkpoint_records = 0usize;
        if snap_path.exists() {
            let mut snap =
                BlobStore::open(&snap_path, SNAPSHOT_POOL_PAGES, replacer, metrics.clone())?;
            let bytes = snap.get(SNAPSHOT_BLOB)?;
            history = decode_records(&bytes)?;
            checkpoint_records = history.len();
        }

        // 2. WAL suffix; torn tail truncated by Wal::open.
        let (wal, wal_records, tail) = Wal::open(&dir.join("wal.log"), metrics.clone())?;
        let wal_count = wal_records.len();
        for (_, rec) in wal_records {
            if rec != WalRecord::Checkpoint {
                history.push(rec);
            }
        }

        // 3. Fresh physical cache for the live relation store — its
        //    contents are rebuilt by the caller's replay.
        let blobs = BlobStore::create(
            &dir.join("relations.pg"),
            pool_pages,
            replacer,
            metrics.clone(),
        )?;

        let report = RecoveryReport {
            checkpoint_records,
            wal_records: wal_count,
            dropped_tail_bytes: tail.dropped_bytes,
            recovery_ns: start.elapsed().as_nanos() as u64,
        };
        metrics.recovery_records.add(history.len() as u64);
        metrics.recovery_ns.add(report.recovery_ns);

        let engine = StorageEngine {
            dir: dir.to_path_buf(),
            wal,
            history: history.clone(),
            wal_tail: wal_count,
            blobs: SharedBlobStore::new(blobs),
            pool_pages,
            replacer,
            metrics,
        };
        Ok((engine, history, report))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Handle to the live paged store (what `Disk` reads through).
    pub fn blobs(&self) -> SharedBlobStore {
        self.blobs.clone()
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Records in the logical history.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Records currently in the WAL tail (since the last checkpoint).
    pub fn wal_records(&self) -> usize {
        self.wal_tail
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Log a `LOAD` durably; returns once the record is fsynced.
    pub fn log_load(&mut self, name: &str, kinds: &[String], csv: &str) -> Result<u64> {
        let rec = WalRecord::Load {
            name: name.to_string(),
            kinds: kinds.to_vec(),
            csv: csv.to_string(),
        };
        let lsn = self.wal.append(&rec)?;
        self.history.push(rec);
        self.wal_tail += 1;
        Ok(lsn)
    }

    /// Log a store-query durably; returns once the record is fsynced.
    pub fn log_query(&mut self, text: &str) -> Result<u64> {
        let rec = WalRecord::Query {
            text: text.to_string(),
        };
        let lsn = self.wal.append(&rec)?;
        self.history.push(rec);
        self.wal_tail += 1;
        Ok(lsn)
    }

    /// Take a checkpoint: snapshot the full history to a fresh paged file,
    /// rename it over the old snapshot, then truncate the WAL.
    ///
    /// Crash safety: the rename is the commit point. Before it, the old
    /// snapshot + full WAL recover; after it, the new snapshot alone
    /// recovers; the WAL truncation merely drops now-redundant records
    /// (replaying them after the snapshot would double-apply, which is why
    /// the truncation must follow the rename — and does).
    pub fn checkpoint(&mut self) -> Result<CheckpointReport> {
        let bytes = encode_records(&self.history);
        let tmp = self.dir.join("checkpoint.tmp");
        let _ = fs::remove_file(&tmp);
        {
            let mut snap = BlobStore::create(
                &tmp,
                SNAPSHOT_POOL_PAGES,
                self.replacer,
                self.metrics.clone(),
            )?;
            snap.put(SNAPSHOT_BLOB, &bytes, self.wal.next_lsn())?;
            snap.flush()?;
        }
        fs::rename(&tmp, self.dir.join("checkpoint.pg"))?;
        // Make the rename itself durable before dropping the WAL.
        sync_dir(&self.dir)?;
        self.wal.reset()?;
        self.wal_tail = 0;
        self.metrics.checkpoints.inc();
        Ok(CheckpointReport {
            records: self.history.len(),
            bytes: bytes.len() as u64,
        })
    }

    /// Pool frame budget this engine was opened with.
    pub fn pool_pages(&self) -> usize {
        self.pool_pages
    }

    /// Replacement policy this engine was opened with.
    pub fn replacer(&self) -> ReplacerKind {
        self.replacer
    }
}

/// fsync a directory so a rename within it is durable (POSIX requires
/// syncing the parent directory, not just the files).
fn sync_dir(dir: &Path) -> Result<()> {
    match fs::File::open(dir) {
        Ok(f) => {
            f.sync_all()?;
            Ok(())
        }
        // Some platforms refuse opening directories; the rename is still
        // ordered after the temp file's own fsync, which is the best
        // available there.
        Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => Ok(()),
        Err(e) => Err(StorageError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sdb_engine_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn load(name: &str, csv: &str) -> WalRecord {
        WalRecord::Load {
            name: name.to_string(),
            kinds: vec!["str".to_string(), "int".to_string()],
            csv: csv.to_string(),
        }
    }

    #[test]
    fn history_survives_reopen_in_order() {
        let dir = tmpdir("reopen");
        let (mut e, replay, report) = StorageEngine::open(&dir).unwrap();
        assert!(replay.is_empty());
        assert_eq!(report.wal_records, 0);
        e.log_load("emp", &["str".into(), "int".into()], "ada,1\n")
            .unwrap();
        e.log_query("QUERY ... STORE AS rich").unwrap();
        e.log_load("dept", &["str".into(), "int".into()], "eng,2\n")
            .unwrap();
        drop(e);
        let (_, replay, report) = StorageEngine::open(&dir).unwrap();
        assert_eq!(report.wal_records, 3);
        assert_eq!(report.checkpoint_records, 0);
        assert_eq!(replay.len(), 3);
        assert_eq!(replay[0], load("emp", "ada,1\n"));
        assert!(matches!(&replay[1], WalRecord::Query { text } if text.contains("rich")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_still_recovers_everything() {
        let dir = tmpdir("checkpoint");
        let (mut e, _, _) = StorageEngine::open(&dir).unwrap();
        e.log_load("a", &["int".into()], "1\n").unwrap();
        e.log_load("b", &["int".into()], "2\n").unwrap();
        let cp = e.checkpoint().unwrap();
        assert_eq!(cp.records, 2);
        assert_eq!(e.wal_bytes(), 0);
        // Post-checkpoint traffic lands in the (now short) WAL.
        e.log_load("c", &["int".into()], "3\n").unwrap();
        drop(e);
        let (e, replay, report) = StorageEngine::open(&dir).unwrap();
        assert_eq!(report.checkpoint_records, 2);
        assert_eq!(report.wal_records, 1);
        assert_eq!(replay.len(), 3);
        assert_eq!(replay[2], load_int("c", "3\n"));
        assert_eq!(e.history_len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    fn load_int(name: &str, csv: &str) -> WalRecord {
        WalRecord::Load {
            name: name.to_string(),
            kinds: vec!["int".to_string()],
            csv: csv.to_string(),
        }
    }

    #[test]
    fn blobs_are_a_fresh_cache_each_open() {
        let dir = tmpdir("cache");
        let (e, _, _) = StorageEngine::open(&dir).unwrap();
        e.blobs().put("r", b"payload", 1).unwrap();
        e.blobs().flush().unwrap();
        drop(e);
        let (e, _, _) = StorageEngine::open(&dir).unwrap();
        assert!(!e.blobs().contains("r"), "physical cache starts empty");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_reported_and_dropped() {
        use std::io::Write as _;
        let dir = tmpdir("torn");
        let (mut e, _, _) = StorageEngine::open(&dir).unwrap();
        e.log_load("a", &["int".into()], "1\n").unwrap();
        drop(e);
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[0x55; 7]).unwrap();
        drop(f);
        let (_, replay, report) = StorageEngine::open(&dir).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(report.dropped_tail_bytes, 7);
        let _ = fs::remove_dir_all(&dir);
    }
}
