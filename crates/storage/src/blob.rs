//! Named blobs laid out across pages — the paged store behind the disk.
//!
//! A blob (an encoded relation, or a checkpoint snapshot) is chunked across
//! consecutive pages: one `BlobHead` page whose payload opens with a
//! directory entry (`name`, total length), then `BlobCont` pages. Blobs are
//! append-only — overwriting a name appends a fresh copy and repoints the
//! in-memory directory; the old pages become garbage reclaimed by the next
//! checkpoint-driven rebuild. Head pages carry the writer's LSN, so when a
//! scan of an existing file finds two heads claiming one name, the higher
//! LSN wins.
//!
//! All reads go through the [`BufferPool`], so disk-model reads exercise
//! real hit/miss/eviction behaviour (`sdb_storage_pool_*`).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::error::{Result, StorageError};
use crate::metrics::StorageMetrics;
use crate::page::{Page, PageKind, PAYLOAD_CAP};
use crate::pagefile::PageFile;
use crate::pool::{BufferPool, ReplacerKind};

/// Directory entry: where a blob starts and how long it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlobMeta {
    head: u64,
    len: u64,
    lsn: u64,
}

/// Head-page payload prefix: name length, name bytes, total blob length.
fn encode_head_prefix(name: &str, total: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + name.len());
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&total.to_le_bytes());
    out
}

fn decode_head_prefix(payload: &[u8], page_id: u64) -> Result<(String, u64, usize)> {
    let corrupt = |detail: String| StorageError::Corrupt { detail };
    if payload.len() < 4 {
        return Err(corrupt(format!("blob head {page_id}: truncated prefix")));
    }
    let name_len = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let need = 4 + name_len + 8;
    if payload.len() < need {
        return Err(corrupt(format!("blob head {page_id}: truncated prefix")));
    }
    let name = String::from_utf8(payload[4..4 + name_len].to_vec())
        .map_err(|_| corrupt(format!("blob head {page_id}: name not UTF-8")))?;
    let total = u64::from_le_bytes(payload[4 + name_len..need].try_into().unwrap());
    Ok((name, total, need))
}

/// The paged blob store.
pub struct BlobStore {
    pool: BufferPool,
    dir: BTreeMap<String, BlobMeta>,
    next_page: u64,
    next_lsn: u64,
}

impl std::fmt::Debug for BlobStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobStore")
            .field("blobs", &self.dir.len())
            .field("next_page", &self.next_page)
            .finish()
    }
}

impl BlobStore {
    /// Open `path`, scanning any existing pages to rebuild the directory.
    ///
    /// The scan stops at the first unreadable page — everything beyond a
    /// torn write is treated as garbage, exactly like a torn WAL tail. The
    /// logical redo pass re-stores anything lost this way.
    pub fn open(
        path: &Path,
        pool_pages: usize,
        replacer: ReplacerKind,
        metrics: Arc<StorageMetrics>,
    ) -> Result<BlobStore> {
        let file = PageFile::open(path)?;
        let mut store = BlobStore {
            pool: BufferPool::new(file, pool_pages, replacer, metrics),
            dir: BTreeMap::new(),
            next_page: 0,
            next_lsn: 1,
        };
        store.rescan()?;
        Ok(store)
    }

    /// Open `path` after truncating it — a fresh physical cache, used for
    /// the live relation store that recovery rebuilds from the log.
    pub fn create(
        path: &Path,
        pool_pages: usize,
        replacer: ReplacerKind,
        metrics: Arc<StorageMetrics>,
    ) -> Result<BlobStore> {
        let mut file = PageFile::open(path)?;
        file.truncate()?;
        Ok(BlobStore {
            pool: BufferPool::new(file, pool_pages, replacer, metrics),
            dir: BTreeMap::new(),
            next_page: 0,
            next_lsn: 1,
        })
    }

    fn rescan(&mut self) -> Result<()> {
        self.dir.clear();
        let pages = self.pool.file_mut().pages();
        let mut id = 0u64;
        while id < pages {
            let page = match self.pool.file_mut().read_page(id) {
                Ok(p) => p,
                // Torn/corrupt page: everything from here on is garbage.
                Err(StorageError::Corrupt { .. }) => break,
                Err(e) => return Err(e),
            };
            self.next_lsn = self.next_lsn.max(page.lsn + 1);
            if page.kind == PageKind::BlobHead {
                let (name, total, prefix) = decode_head_prefix(&page.payload, id)?;
                let span = Self::page_span(total, prefix);
                let replace = self
                    .dir
                    .get(&name)
                    .map(|old| page.lsn >= old.lsn)
                    .unwrap_or(true);
                if replace {
                    self.dir.insert(
                        name,
                        BlobMeta {
                            head: id,
                            len: total,
                            lsn: page.lsn,
                        },
                    );
                }
                id += span;
            } else {
                id += 1;
            }
        }
        self.next_page = id;
        Ok(())
    }

    /// Pages a blob of `total` bytes occupies, given its head prefix size.
    fn page_span(total: u64, prefix: usize) -> u64 {
        let head_room = (PAYLOAD_CAP - prefix) as u64;
        if total <= head_room {
            1
        } else {
            1 + (total - head_room).div_ceil(PAYLOAD_CAP as u64)
        }
    }

    /// Store `bytes` under `name` (overwrites), stamping pages with `lsn`.
    /// Pages are written through the pool; call [`BlobStore::flush`] for a
    /// durability point.
    pub fn put(&mut self, name: &str, bytes: &[u8], lsn: u64) -> Result<()> {
        let prefix = encode_head_prefix(name, bytes.len() as u64);
        let head_room = PAYLOAD_CAP - prefix.len();
        let head_chunk = bytes.len().min(head_room);
        let head_id = self.next_page;

        let mut payload = prefix;
        payload.extend_from_slice(&bytes[..head_chunk]);
        self.pool
            .put(Page::new(PageKind::BlobHead, head_id, lsn, payload))?;
        let mut written = head_chunk;
        let mut id = head_id + 1;
        while written < bytes.len() {
            let chunk = (bytes.len() - written).min(PAYLOAD_CAP);
            self.pool.put(Page::new(
                PageKind::BlobCont,
                id,
                lsn,
                bytes[written..written + chunk].to_vec(),
            ))?;
            written += chunk;
            id += 1;
        }
        self.next_page = id;
        self.next_lsn = self.next_lsn.max(lsn + 1);
        self.dir.insert(
            name.to_string(),
            BlobMeta {
                head: head_id,
                len: bytes.len() as u64,
                lsn,
            },
        );
        Ok(())
    }

    /// Store `bytes` under `name`, stamping with the store's own monotone
    /// LSN — for callers (like the disk backing) that don't run a WAL.
    pub fn put_next(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.put(name, bytes, lsn)
    }

    /// Read the blob stored under `name`, through the pool.
    pub fn get(&mut self, name: &str) -> Result<Vec<u8>> {
        let meta = *self
            .dir
            .get(name)
            .ok_or_else(|| StorageError::UnknownBlob {
                name: name.to_string(),
            })?;
        let head = self.pool.fetch(meta.head)?;
        if head.kind != PageKind::BlobHead {
            return Err(StorageError::Corrupt {
                detail: format!("page {} is not a blob head", meta.head),
            });
        }
        let (stored_name, total, prefix) = decode_head_prefix(&head.payload, meta.head)?;
        if stored_name != name || total != meta.len {
            return Err(StorageError::Corrupt {
                detail: format!("blob head {} does not match directory", meta.head),
            });
        }
        let mut out = Vec::with_capacity(total as usize);
        out.extend_from_slice(&head.payload[prefix..]);
        let mut id = meta.head + 1;
        while (out.len() as u64) < total {
            let page = self.pool.fetch(id)?;
            if page.kind != PageKind::BlobCont {
                return Err(StorageError::Corrupt {
                    detail: format!("page {id}: expected blob continuation"),
                });
            }
            out.extend_from_slice(&page.payload);
            id += 1;
        }
        if out.len() as u64 != total {
            return Err(StorageError::Corrupt {
                detail: format!("blob {name}: reassembled {} of {total} bytes", out.len()),
            });
        }
        Ok(out)
    }

    /// True when `name` is in the directory.
    pub fn contains(&self, name: &str) -> bool {
        self.dir.contains_key(name)
    }

    /// Names in the directory, sorted.
    pub fn names(&self) -> Vec<String> {
        self.dir.keys().cloned().collect()
    }

    /// Flush dirty frames and fsync.
    pub fn flush(&mut self) -> Result<()> {
        self.pool.flush()
    }
}

/// A cloneable, lockable handle — what the machine's `Disk` holds.
#[derive(Clone)]
pub struct SharedBlobStore {
    inner: Arc<Mutex<BlobStore>>,
}

impl std::fmt::Debug for SharedBlobStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(store) => store.fmt(f),
            Err(_) => f.write_str("SharedBlobStore(<locked>)"),
        }
    }
}

impl SharedBlobStore {
    /// Wrap a store.
    pub fn new(store: BlobStore) -> SharedBlobStore {
        SharedBlobStore {
            inner: Arc::new(Mutex::new(store)),
        }
    }

    /// See [`BlobStore::put`].
    pub fn put(&self, name: &str, bytes: &[u8], lsn: u64) -> Result<()> {
        self.inner.lock().unwrap().put(name, bytes, lsn)
    }

    /// See [`BlobStore::put_next`].
    pub fn put_next(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.inner.lock().unwrap().put_next(name, bytes)
    }

    /// See [`BlobStore::get`].
    pub fn get(&self, name: &str) -> Result<Vec<u8>> {
        self.inner.lock().unwrap().get(name)
    }

    /// See [`BlobStore::contains`].
    pub fn contains(&self, name: &str) -> bool {
        self.inner.lock().unwrap().contains(name)
    }

    /// See [`BlobStore::names`].
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().unwrap().names()
    }

    /// See [`BlobStore::flush`].
    pub fn flush(&self) -> Result<()> {
        self.inner.lock().unwrap().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use systolic_telemetry::metrics::Registry;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sdb_blob_{}_{name}.pg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn metrics() -> Arc<StorageMetrics> {
        // Leak-free enough for tests: each gets a private registry.
        let r = Box::leak(Box::new(Registry::new()));
        Arc::new(StorageMetrics::from_registry(r))
    }

    #[test]
    fn blobs_round_trip_across_reopen() {
        let path = tmp("roundtrip");
        let m = metrics();
        let mut s = BlobStore::open(&path, 8, ReplacerKind::Clock, m.clone()).unwrap();
        let big: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        s.put("emp", b"small", 1).unwrap();
        s.put("big", &big, 2).unwrap();
        s.flush().unwrap();
        assert_eq!(s.get("emp").unwrap(), b"small");
        assert_eq!(s.get("big").unwrap(), big);
        drop(s);
        let mut s = BlobStore::open(&path, 8, ReplacerKind::Clock, m).unwrap();
        assert_eq!(s.names(), vec!["big".to_string(), "emp".to_string()]);
        assert_eq!(s.get("big").unwrap(), big);
        assert!(matches!(
            s.get("missing"),
            Err(StorageError::UnknownBlob { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overwrite_appends_and_higher_lsn_wins_on_rescan() {
        let path = tmp("overwrite");
        let m = metrics();
        let mut s = BlobStore::open(&path, 8, ReplacerKind::Lru, m.clone()).unwrap();
        s.put("r", b"old", 1).unwrap();
        s.put("r", b"new contents", 2).unwrap();
        s.flush().unwrap();
        assert_eq!(s.get("r").unwrap(), b"new contents");
        drop(s);
        let mut s = BlobStore::open(&path, 8, ReplacerKind::Lru, m).unwrap();
        assert_eq!(s.get("r").unwrap(), b"new contents");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_truncates_existing_contents() {
        let path = tmp("create");
        let m = metrics();
        let mut s = BlobStore::open(&path, 4, ReplacerKind::Clock, m.clone()).unwrap();
        s.put("r", b"stale", 1).unwrap();
        s.flush().unwrap();
        drop(s);
        let s = BlobStore::create(&path, 4, ReplacerKind::Clock, m).unwrap();
        assert!(!s.contains("r"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tiny_pool_still_reassembles_large_blobs() {
        let path = tmp("tinypool");
        let m = metrics();
        let mut s = BlobStore::open(&path, 1, ReplacerKind::Clock, m.clone()).unwrap();
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        s.put("big", &big, 1).unwrap();
        s.flush().unwrap();
        assert_eq!(s.get("big").unwrap(), big);
        assert!(m.pool_evictions.get() > 0, "capacity-1 pool must evict");
        let _ = std::fs::remove_file(&path);
    }
}
