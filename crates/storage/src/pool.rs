//! Buffer pool and replacement policies.
//!
//! The pool keeps up to `capacity` resident pages in front of a
//! [`PageFile`]. Which frame to surrender when full is delegated to a
//! [`Replacer`] — clock (second-chance) by default, true LRU as the
//! alternative. The trait is generic over the key so the *same* policies
//! drive both page frames (keyed by page id) and the machine's staging
//! memories (keyed by relation name) — the `MemoryModule::evict` hook that
//! used to be dead weight.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

use crate::error::Result;
use crate::metrics::StorageMetrics;
use crate::page::Page;
use crate::pagefile::PageFile;

/// A replacement policy over keys of type `K`.
///
/// The policy tracks *candidates*: keys that may be surrendered. Callers
/// record accesses, remove keys that become ineligible (e.g. unpinned →
/// dropped), and ask for a victim when space is needed.
pub trait Replacer<K>: Send {
    /// Note that `key` was touched (inserting it if new).
    fn record_access(&mut self, key: &K);
    /// Forget `key` entirely.
    fn remove(&mut self, key: &K);
    /// Choose and forget a victim, or `None` when empty.
    fn victim(&mut self) -> Option<K>;
    /// Number of tracked candidates.
    fn len(&self) -> usize;
    /// True when no candidates are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which policy to build — selectable with `serve --replacer clock|lru`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacerKind {
    /// Second-chance clock sweep (cheap, scan-resistant enough).
    #[default]
    Clock,
    /// True least-recently-used ordering.
    Lru,
}

impl ReplacerKind {
    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<ReplacerKind> {
        match s {
            "clock" => Some(ReplacerKind::Clock),
            "lru" => Some(ReplacerKind::Lru),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplacerKind::Clock => "clock",
            ReplacerKind::Lru => "lru",
        }
    }

    /// Build a boxed policy over keys of type `K`.
    pub fn build<K: Hash + Eq + Clone + Send + 'static>(&self) -> Box<dyn Replacer<K>> {
        match self {
            ReplacerKind::Clock => Box::new(ClockReplacer::new()),
            ReplacerKind::Lru => Box::new(LruReplacer::new()),
        }
    }
}

/// Second-chance clock: a circular scan over (key, referenced-bit) slots.
/// A referenced entry gets one more lap; an unreferenced one is the victim.
#[derive(Debug)]
pub struct ClockReplacer<K> {
    slots: Vec<Option<(K, bool)>>,
    index: HashMap<K, usize>,
    free: Vec<usize>,
    hand: usize,
}

impl<K: Hash + Eq + Clone> ClockReplacer<K> {
    /// An empty clock.
    pub fn new() -> Self {
        ClockReplacer {
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            hand: 0,
        }
    }
}

impl<K: Hash + Eq + Clone> Default for ClockReplacer<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone + Send> Replacer<K> for ClockReplacer<K> {
    fn record_access(&mut self, key: &K) {
        if let Some(&slot) = self.index.get(key) {
            if let Some(entry) = self.slots[slot].as_mut() {
                entry.1 = true;
            }
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some((key.clone(), true));
                s
            }
            None => {
                self.slots.push(Some((key.clone(), true)));
                self.slots.len() - 1
            }
        };
        self.index.insert(key.clone(), slot);
    }

    fn remove(&mut self, key: &K) {
        if let Some(slot) = self.index.remove(key) {
            self.slots[slot] = None;
            self.free.push(slot);
        }
    }

    fn victim(&mut self) -> Option<K> {
        if self.index.is_empty() {
            return None;
        }
        // At most two laps: the first clears referenced bits, the second
        // must find an unreferenced entry.
        for _ in 0..2 * self.slots.len() {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if let Some((key, referenced)) = self.slots[slot].as_mut() {
                if *referenced {
                    *referenced = false;
                } else {
                    let key = key.clone();
                    self.slots[slot] = None;
                    self.free.push(slot);
                    self.index.remove(&key);
                    return Some(key);
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

/// True LRU: a monotone tick per access, victims in ascending-tick order.
#[derive(Debug)]
pub struct LruReplacer<K> {
    stamp: HashMap<K, u64>,
    order: BTreeMap<u64, K>,
    tick: u64,
}

impl<K: Hash + Eq + Clone> LruReplacer<K> {
    /// An empty LRU.
    pub fn new() -> Self {
        LruReplacer {
            stamp: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }
}

impl<K: Hash + Eq + Clone> Default for LruReplacer<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone + Send> Replacer<K> for LruReplacer<K> {
    fn record_access(&mut self, key: &K) {
        self.tick += 1;
        if let Some(old) = self.stamp.insert(key.clone(), self.tick) {
            self.order.remove(&old);
        }
        self.order.insert(self.tick, key.clone());
    }

    fn remove(&mut self, key: &K) {
        if let Some(old) = self.stamp.remove(key) {
            self.order.remove(&old);
        }
    }

    fn victim(&mut self) -> Option<K> {
        let (&tick, _) = self.order.iter().next()?;
        let key = self.order.remove(&tick)?;
        self.stamp.remove(&key);
        Some(key)
    }

    fn len(&self) -> usize {
        self.stamp.len()
    }
}

/// The buffer pool: resident frames over a page file, write-back on
/// eviction, explicit [`BufferPool::flush`] for durability points.
pub struct BufferPool {
    file: PageFile,
    capacity: usize,
    frames: HashMap<u64, Page>,
    dirty: HashSet<u64>,
    replacer: Box<dyn Replacer<u64>>,
    metrics: Arc<StorageMetrics>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("dirty", &self.dirty.len())
            .finish()
    }
}

impl BufferPool {
    /// A pool of `capacity` frames over `file`, evicting with `kind`.
    pub fn new(
        file: PageFile,
        capacity: usize,
        kind: ReplacerKind,
        metrics: Arc<StorageMetrics>,
    ) -> BufferPool {
        BufferPool {
            file,
            capacity: capacity.max(1),
            frames: HashMap::new(),
            dirty: HashSet::new(),
            replacer: kind.build(),
            metrics,
        }
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// The underlying file (for scans that bypass the pool).
    pub fn file_mut(&mut self) -> &mut PageFile {
        &mut self.file
    }

    /// Fetch page `id`, from a resident frame or the file.
    pub fn fetch(&mut self, id: u64) -> Result<Page> {
        if let Some(page) = self.frames.get(&id) {
            self.metrics.pool_hits.inc();
            let page = page.clone();
            self.replacer.record_access(&id);
            return Ok(page);
        }
        self.metrics.pool_misses.inc();
        let page = self.file.read_page(id)?;
        self.admit(page.clone())?;
        Ok(page)
    }

    /// Write `page` through the pool (frame made resident and dirty; the
    /// file is updated on eviction or [`BufferPool::flush`]).
    pub fn put(&mut self, page: Page) -> Result<()> {
        self.dirty.insert(page.page_id);
        self.admit(page)
    }

    /// Make a frame resident, evicting if the pool is full.
    fn admit(&mut self, page: Page) -> Result<()> {
        let id = page.page_id;
        if !self.frames.contains_key(&id) && self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        self.frames.insert(id, page);
        self.replacer.record_access(&id);
        Ok(())
    }

    fn evict_one(&mut self) -> Result<()> {
        if let Some(victim) = self.replacer.victim() {
            if let Some(page) = self.frames.remove(&victim) {
                if self.dirty.remove(&victim) {
                    self.file.write_page(&page)?;
                }
                self.metrics.pool_evictions.inc();
            }
        }
        Ok(())
    }

    /// Write every dirty frame and fsync the file.
    pub fn flush(&mut self) -> Result<()> {
        if self.dirty.is_empty() {
            return Ok(());
        }
        let mut ids: Vec<u64> = self.dirty.drain().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(page) = self.frames.get(&id) {
                self.file.write_page(page)?;
            }
        }
        self.file.sync()
    }

    /// Drop every frame (dirty ones are flushed first).
    pub fn clear(&mut self) -> Result<()> {
        self.flush()?;
        for id in self.frames.keys() {
            self.replacer.remove(id);
        }
        self.frames.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;
    use std::path::PathBuf;
    use systolic_telemetry::metrics::Registry;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sdb_pool_{}_{name}.pg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn metrics() -> (Registry, Arc<StorageMetrics>) {
        let r = Registry::new();
        let m = Arc::new(StorageMetrics::from_registry(&r));
        (r, m)
    }

    fn page(id: u64) -> Page {
        Page::new(PageKind::BlobCont, id, 0, vec![id as u8; 8])
    }

    #[test]
    fn clock_gives_a_second_chance() {
        let mut c: ClockReplacer<u64> = ClockReplacer::new();
        for k in 0..3u64 {
            c.record_access(&k);
        }
        // First victim call clears all referenced bits, then takes 0.
        assert_eq!(c.victim(), Some(0));
        // Touch 1: it survives the next sweep, 2 goes first.
        c.record_access(&1);
        assert_eq!(c.victim(), Some(2));
        assert_eq!(c.victim(), Some(1));
        assert_eq!(c.victim(), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut l: LruReplacer<&'static str> = LruReplacer::new();
        l.record_access(&"a");
        l.record_access(&"b");
        l.record_access(&"c");
        l.record_access(&"a"); // refresh a
        assert_eq!(l.victim(), Some("b"));
        l.remove(&"c");
        assert_eq!(l.victim(), Some("a"));
        assert_eq!(l.victim(), None);
    }

    #[test]
    fn pool_counts_hits_misses_and_evictions() {
        let path = tmp("counts");
        let (_r, m) = metrics();
        let mut pool = BufferPool::new(
            PageFile::open(&path).unwrap(),
            2,
            ReplacerKind::Lru,
            m.clone(),
        );
        for id in 0..3u64 {
            pool.put(page(id)).unwrap();
        }
        // Capacity 2: inserting page 2 evicted page 0 (LRU), writing it back.
        assert_eq!(m.pool_evictions.get(), 1);
        assert_eq!(pool.resident(), 2);
        pool.fetch(2).unwrap(); // resident
        assert_eq!(m.pool_hits.get(), 1);
        pool.flush().unwrap();
        pool.fetch(0).unwrap(); // evicted earlier -> file read
        assert_eq!(m.pool_misses.get(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dirty_frames_survive_eviction_and_flush() {
        let path = tmp("dirty");
        let (_r, m) = metrics();
        let mut pool = BufferPool::new(PageFile::open(&path).unwrap(), 1, ReplacerKind::Clock, m);
        pool.put(page(0)).unwrap();
        pool.put(page(1)).unwrap(); // evicts 0, which must hit the file
        pool.flush().unwrap();
        drop(pool);
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.read_page(0).unwrap().payload, vec![0u8; 8]);
        assert_eq!(f.read_page(1).unwrap().payload, vec![1u8; 8]);
        let _ = std::fs::remove_file(&path);
    }
}
