//! Durable storage beneath the §9 machine's disk model.
//!
//! The paper's integrated system "initially ... read\[s\] the relevant
//! relations from disks into memories" (§9) but never says where the disk
//! contents come from or what survives power loss — a 1980 machine paper can
//! leave that to the I/O subsystem. A reproduction that serves queries over
//! a network cannot: a restart must not lose every `LOAD`. This crate is the
//! layer the simulated disk stands on:
//!
//! * [`page`] / [`pagefile`] — fixed-size pages with checksummed headers; a
//!   torn or corrupted page is *detected*, never silently decoded.
//! * [`pool`] — a buffer pool with a pluggable replacement policy
//!   ([`pool::Replacer`]: clock or LRU) fronting the page files.
//! * [`blob`] — named byte blobs (encoded relations) laid out across pages;
//!   the backing store for `Disk::read` in the machine crate.
//! * [`wal`] — a redo-only write-ahead log of *logical* operations
//!   (`LOAD`s and store-queries), LSN-stamped, fsynced before the server
//!   acknowledges. Logical redo is what makes recovered `RESULT` frames
//!   byte-identical: replaying loads in their original order re-interns
//!   every dictionary code identically (§2.3 encoding).
//! * [`engine`] — recovery orchestration: redo from the last checkpoint,
//!   then the WAL suffix, dropping a torn tail cleanly.
//! * [`lock`] — a shared/exclusive lock table giving concurrent
//!   `LOAD`/`QUERY` sessions real isolation.
//!
//! Two clocks, one rule: everything in this crate runs on *host* time.
//! fsync latency, recovery time and pool hit rates are reported through
//! [`metrics`]; none of it ever enters the simulated pulse accounting.
#![forbid(unsafe_code)]

pub mod blob;
pub mod codec;
pub mod engine;
pub mod error;
pub mod lock;
pub mod metrics;
pub mod page;
pub mod pagefile;
pub mod pool;
pub mod wal;

pub use blob::{BlobStore, SharedBlobStore};
pub use engine::{CheckpointReport, RecoveryReport, StorageEngine};
pub use error::StorageError;
pub use lock::{LockGuard, LockMode, LockTable};
pub use metrics::StorageMetrics;
pub use pool::{BufferPool, ReplacerKind};
pub use wal::WalRecord;

/// FNV-1a over 64 bits — the checksum used by page headers and WAL frames.
///
/// Not cryptographic; it detects torn writes and bit rot, which is all a
/// single-writer log needs. The same family the server's shard router uses
/// for partitioning, so the repo carries one hash idiom.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
