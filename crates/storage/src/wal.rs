//! Redo-only write-ahead log of logical operations.
//!
//! Why *logical* records (the `LOAD` text, the store-query text) rather
//! than physical page images: the §2.3 dictionary encoding assigns codes in
//! first-appearance order, so replaying the same loads in the same order
//! re-interns every string to the same code. That makes recovered `RESULT`
//! frames byte-identical to an uninterrupted server — a physical redo log
//! would have to snapshot every dictionary to achieve the same.
//!
//! Frame layout, little-endian: `[body_len: u32][crc: u64][body]` with
//! `body = [lsn: u64][kind: u8][payload]`. The crc is FNV-1a-64 over the
//! body. Replay walks frames until the file ends or a frame fails its
//! checks; everything after the first bad frame is a torn tail, truncated
//! at open so the next append lands on a clean boundary. fsync discipline:
//! [`Wal::append`] does not return until the frame is on stable storage —
//! the server acknowledges a `LOAD` only after its record is durable.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{Result, StorageError};
use crate::fnv1a64;
use crate::metrics::StorageMetrics;

/// Frame header bytes: body_len(4) + crc(8).
const FRAME_HEADER: usize = 12;

/// Upper bound on one body — a defence against interpreting garbage as a
/// multi-gigabyte allocation.
const MAX_BODY: usize = 1 << 30;

/// One logical operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A `LOAD name kinds csv` that mutated the catalog and a disk.
    Load {
        /// Relation name.
        name: String,
        /// Column kind spellings, exactly as the wire request gave them.
        kinds: Vec<String>,
        /// The CSV payload, byte-for-byte.
        csv: String,
    },
    /// A query whose result was stored back (`... STORE AS t`).
    Query {
        /// The query text, byte-for-byte.
        text: String,
    },
    /// A checkpoint marker (records before it are covered by the snapshot).
    Checkpoint,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], at: &mut usize) -> Result<String> {
    let corrupt = || StorageError::Corrupt {
        detail: "wal: truncated string field".to_string(),
    };
    if bytes.len() < *at + 4 {
        return Err(corrupt());
    }
    let len = u32::from_le_bytes(bytes[*at..*at + 4].try_into().unwrap()) as usize;
    *at += 4;
    if bytes.len() < *at + len {
        return Err(corrupt());
    }
    let s =
        String::from_utf8(bytes[*at..*at + len].to_vec()).map_err(|_| StorageError::Corrupt {
            detail: "wal: string field not UTF-8".to_string(),
        })?;
    *at += len;
    Ok(s)
}

impl WalRecord {
    fn kind_byte(&self) -> u8 {
        match self {
            WalRecord::Load { .. } => 1,
            WalRecord::Query { .. } => 2,
            WalRecord::Checkpoint => 3,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Load { name, kinds, csv } => {
                put_str(&mut out, name);
                out.extend_from_slice(&(kinds.len() as u32).to_le_bytes());
                for k in kinds {
                    put_str(&mut out, k);
                }
                put_str(&mut out, csv);
            }
            WalRecord::Query { text } => put_str(&mut out, text),
            WalRecord::Checkpoint => {}
        }
        out
    }

    fn decode_payload(kind: u8, bytes: &[u8]) -> Result<WalRecord> {
        let mut at = 0usize;
        let rec = match kind {
            1 => {
                let name = get_str(bytes, &mut at)?;
                if bytes.len() < at + 4 {
                    return Err(StorageError::Corrupt {
                        detail: "wal: truncated kinds count".to_string(),
                    });
                }
                let n = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
                at += 4;
                let mut kinds = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    kinds.push(get_str(bytes, &mut at)?);
                }
                let csv = get_str(bytes, &mut at)?;
                WalRecord::Load { name, kinds, csv }
            }
            2 => WalRecord::Query {
                text: get_str(bytes, &mut at)?,
            },
            3 => WalRecord::Checkpoint,
            other => {
                return Err(StorageError::Corrupt {
                    detail: format!("wal: unknown record kind {other}"),
                })
            }
        };
        if at != bytes.len() {
            return Err(StorageError::Corrupt {
                detail: "wal: trailing bytes in record payload".to_string(),
            });
        }
        Ok(rec)
    }
}

/// Encode one `[len][crc][body]` frame.
pub fn encode_frame(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let payload = record.encode_payload();
    let mut body = Vec::with_capacity(9 + payload.len());
    body.extend_from_slice(&lsn.to_le_bytes());
    body.push(record.kind_byte());
    body.extend_from_slice(&payload);
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encode a record sequence as concatenated frames (checkpoint snapshots
/// reuse the WAL framing so one parser covers both).
pub fn encode_records(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, r) in records.iter().enumerate() {
        out.extend_from_slice(&encode_frame(i as u64, r));
    }
    out
}

/// Strictly decode a record sequence: any malformed frame is an error (used
/// for checkpoint snapshots, which are written atomically and must be whole).
pub fn decode_records(bytes: &[u8]) -> Result<Vec<WalRecord>> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        match parse_frame(&bytes[at..]) {
            ParsedFrame::Ok {
                record, frame_len, ..
            } => {
                out.push(record);
                at += frame_len;
            }
            ParsedFrame::Bad { detail } => return Err(StorageError::Corrupt { detail }),
        }
    }
    Ok(out)
}

enum ParsedFrame {
    Ok {
        lsn: u64,
        record: WalRecord,
        frame_len: usize,
    },
    Bad {
        detail: String,
    },
}

fn parse_frame(bytes: &[u8]) -> ParsedFrame {
    let bad = |detail: &str| ParsedFrame::Bad {
        detail: detail.to_string(),
    };
    if bytes.len() < FRAME_HEADER {
        return bad("short frame header");
    }
    let body_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    if !(9..=MAX_BODY).contains(&body_len) {
        return bad("implausible frame length");
    }
    if bytes.len() < FRAME_HEADER + body_len {
        return bad("frame extends past end of log");
    }
    let crc = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let body = &bytes[FRAME_HEADER..FRAME_HEADER + body_len];
    if fnv1a64(body) != crc {
        return bad("frame checksum mismatch");
    }
    let lsn = u64::from_le_bytes(body[0..8].try_into().unwrap());
    match WalRecord::decode_payload(body[8], &body[9..]) {
        Ok(record) => ParsedFrame::Ok {
            lsn,
            record,
            frame_len: FRAME_HEADER + body_len,
        },
        Err(e) => ParsedFrame::Bad {
            detail: e.to_string(),
        },
    }
}

/// What replay found at the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalTail {
    /// Bytes of intact frames from the start.
    pub valid_bytes: u64,
    /// Torn/garbage bytes dropped after the last intact frame.
    pub dropped_bytes: u64,
}

/// What [`Wal::open`] yields: the handle, the replayed `(lsn, record)`
/// sequence, and the tail report.
pub type WalOpen = (Wal, Vec<(u64, WalRecord)>, WalTail);

/// The open log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    bytes: u64,
    metrics: Arc<StorageMetrics>,
}

impl Wal {
    /// Open `path`, replay every intact frame, truncate any torn tail.
    ///
    /// Returns the log handle, the replayed `(lsn, record)` sequence and a
    /// tail report.
    pub fn open(path: &Path, metrics: Arc<StorageMetrics>) -> Result<WalOpen> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut records = Vec::new();
        let mut at = 0usize;
        let mut next_lsn = 0u64;
        while at < raw.len() {
            match parse_frame(&raw[at..]) {
                ParsedFrame::Ok {
                    lsn,
                    record,
                    frame_len,
                } => {
                    next_lsn = next_lsn.max(lsn + 1);
                    records.push((lsn, record));
                    at += frame_len;
                }
                ParsedFrame::Bad { .. } => break,
            }
        }
        let tail = WalTail {
            valid_bytes: at as u64,
            dropped_bytes: (raw.len() - at) as u64,
        };
        if tail.dropped_bytes > 0 {
            file.set_len(at as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(at as u64))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_lsn,
                bytes: at as u64,
                metrics,
            },
            records,
            tail,
        ))
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append `record`, fsync, return its LSN. The record is durable when
    /// this returns — callers acknowledge only after.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, record);
        self.file.write_all(&frame)?;
        let start = Instant::now();
        self.file.sync_data()?;
        self.metrics
            .wal_fsync_ns
            .observe(start.elapsed().as_nanos() as u64);
        self.metrics.wal_fsyncs.inc();
        self.metrics.wal_records.inc();
        self.metrics.wal_bytes.add(frame.len() as u64);
        self.next_lsn += 1;
        self.bytes += frame.len() as u64;
        Ok(lsn)
    }

    /// Truncate the log to empty (after a checkpoint made it redundant).
    /// LSNs stay monotone across the truncation.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(0))?;
        self.bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_telemetry::metrics::Registry;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sdb_wal_{}_{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn metrics() -> Arc<StorageMetrics> {
        let r = Box::leak(Box::new(Registry::new()));
        Arc::new(StorageMetrics::from_registry(r))
    }

    fn load(name: &str) -> WalRecord {
        WalRecord::Load {
            name: name.to_string(),
            kinds: vec!["int".to_string(), "str".to_string()],
            csv: "1,a\n2,b\n".to_string(),
        }
    }

    #[test]
    fn records_replay_in_order_across_reopen() {
        let path = tmp("replay");
        let m = metrics();
        let (mut wal, recs, tail) = Wal::open(&path, m.clone()).unwrap();
        assert!(recs.is_empty());
        assert_eq!(tail.dropped_bytes, 0);
        assert_eq!(wal.append(&load("emp")).unwrap(), 0);
        assert_eq!(
            wal.append(&WalRecord::Query {
                text: "SELECT ...".to_string()
            })
            .unwrap(),
            1
        );
        drop(wal);
        let (wal, recs, tail) = Wal::open(&path, m).unwrap();
        assert_eq!(tail.dropped_bytes, 0);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (0, load("emp")));
        assert_eq!(wal.next_lsn(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_appends_continue_cleanly() {
        let path = tmp("torn");
        let m = metrics();
        let (mut wal, _, _) = Wal::open(&path, m.clone()).unwrap();
        wal.append(&load("a")).unwrap();
        drop(wal);
        // A crash mid-append: half a frame of garbage.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&encode_frame(1, &load("b"))[..10]).unwrap();
        drop(f);
        let (mut wal, recs, tail) = Wal::open(&path, m.clone()).unwrap();
        assert_eq!(recs.len(), 1, "only the intact record replays");
        assert_eq!(tail.dropped_bytes, 10);
        wal.append(&load("c")).unwrap();
        drop(wal);
        let (_, recs, tail) = Wal::open(&path, m).unwrap();
        assert_eq!(tail.dropped_bytes, 0);
        assert_eq!(recs.len(), 2);
        assert!(matches!(&recs[1].1, WalRecord::Load { name, .. } if name == "c"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_encoding_round_trips_strictly() {
        let records = vec![load("emp"), WalRecord::Checkpoint, load("dept")];
        let bytes = encode_records(&records);
        assert_eq!(decode_records(&bytes).unwrap(), records);
        // Strict mode: any damage is an error, not a silent stop.
        let mut broken = bytes.clone();
        let last = broken.len() - 1;
        broken[last] ^= 0xFF;
        assert!(decode_records(&broken).is_err());
        assert!(decode_records(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn reset_empties_the_log_but_lsns_stay_monotone() {
        let path = tmp("reset");
        let m = metrics();
        let (mut wal, _, _) = Wal::open(&path, m.clone()).unwrap();
        wal.append(&load("a")).unwrap();
        wal.append(&load("b")).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), 0);
        assert_eq!(wal.append(&load("c")).unwrap(), 2);
        drop(wal);
        let (_, recs, _) = Wal::open(&path, m).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, 2);
        let _ = std::fs::remove_file(&path);
    }
}
