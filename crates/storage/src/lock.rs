//! A shared/exclusive lock table for concurrent sessions.
//!
//! The scheduler already serialises *execution* (one thread owns the
//! `System`), but admission is concurrent: many sessions register loads and
//! prepare queries against the catalog at once. The lock table gives those
//! sessions real isolation — readers share, writers exclude — so a `QUERY`
//! can never observe a relation mid-`LOAD`.
//!
//! Deadlock freedom by construction: [`LockTable::acquire_all`] takes every
//! lock a session needs in one all-or-nothing step under a single mutex.
//! Either all names are grantable and all are taken atomically, or the
//! session waits on the condvar — it never holds some locks while blocking
//! on others, which is the only way lock-order cycles form.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// How a session intends to touch a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockMode {
    /// Read: compatible with other readers.
    Shared,
    /// Write: excludes everyone.
    Exclusive,
}

#[derive(Debug, Default, Clone, Copy)]
struct LockState {
    readers: usize,
    writer: bool,
}

impl LockState {
    fn grantable(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => !self.writer,
            LockMode::Exclusive => !self.writer && self.readers == 0,
        }
    }

    fn grant(&mut self, mode: LockMode) {
        match mode {
            LockMode::Shared => self.readers += 1,
            LockMode::Exclusive => self.writer = true,
        }
    }

    fn release(&mut self, mode: LockMode) {
        match mode {
            LockMode::Shared => self.readers -= 1,
            LockMode::Exclusive => self.writer = false,
        }
    }

    fn idle(&self) -> bool {
        self.readers == 0 && !self.writer
    }
}

/// The table: relation name → grant state.
#[derive(Debug, Default)]
pub struct LockTable {
    state: Mutex<HashMap<String, LockState>>,
    released: Condvar,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Acquire one lock; see [`LockTable::acquire_all`].
    pub fn acquire(&self, name: &str, mode: LockMode) -> LockGuard<'_> {
        self.acquire_all(vec![(name.to_string(), mode)])
    }

    /// Block until *every* requested lock is grantable, then take them all
    /// atomically. Duplicate names collapse to the strongest mode requested.
    pub fn acquire_all(&self, mut wants: Vec<(String, LockMode)>) -> LockGuard<'_> {
        // Sort and collapse duplicates, exclusive winning — a session that
        // both reads and writes a name needs the write lock.
        wants.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        wants.dedup_by(|next, keep| next.0 == keep.0);

        let mut state = self.state.lock().unwrap();
        loop {
            let all_free = wants
                .iter()
                .all(|(name, mode)| state.get(name).map(|s| s.grantable(*mode)).unwrap_or(true));
            if all_free {
                for (name, mode) in &wants {
                    state.entry(name.clone()).or_default().grant(*mode);
                }
                return LockGuard {
                    table: self,
                    held: wants,
                };
            }
            state = self.released.wait(state).unwrap();
        }
    }

    /// Try to take every lock without blocking.
    pub fn try_acquire_all(&self, mut wants: Vec<(String, LockMode)>) -> Option<LockGuard<'_>> {
        wants.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        wants.dedup_by(|next, keep| next.0 == keep.0);
        let mut state = self.state.lock().unwrap();
        let all_free = wants
            .iter()
            .all(|(name, mode)| state.get(name).map(|s| s.grantable(*mode)).unwrap_or(true));
        if !all_free {
            return None;
        }
        for (name, mode) in &wants {
            state.entry(name.clone()).or_default().grant(*mode);
        }
        Some(LockGuard {
            table: self,
            held: wants,
        })
    }

    /// Number of names with at least one grant (for tests/telemetry).
    pub fn held_names(&self) -> usize {
        self.state.lock().unwrap().len()
    }
}

/// RAII grant: dropping releases every lock and wakes waiters.
#[derive(Debug)]
pub struct LockGuard<'a> {
    table: &'a LockTable,
    held: Vec<(String, LockMode)>,
}

impl LockGuard<'_> {
    /// The (name, mode) pairs this guard holds, sorted by name.
    pub fn held(&self) -> &[(String, LockMode)] {
        &self.held
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.table.state.lock().unwrap();
        for (name, mode) in &self.held {
            if let Some(s) = state.get_mut(name) {
                s.release(*mode);
                if s.idle() {
                    state.remove(name);
                }
            }
        }
        drop(state);
        self.table.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn readers_share_writers_exclude() {
        let t = LockTable::new();
        let r1 = t.acquire("emp", LockMode::Shared);
        let _r2 = t.acquire("emp", LockMode::Shared);
        assert!(t
            .try_acquire_all(vec![("emp".into(), LockMode::Exclusive)])
            .is_none());
        drop(r1);
        assert!(t
            .try_acquire_all(vec![("emp".into(), LockMode::Exclusive)])
            .is_none());
        // Unrelated names are free.
        assert!(t
            .try_acquire_all(vec![("dept".into(), LockMode::Exclusive)])
            .is_some());
    }

    #[test]
    fn duplicates_collapse_to_exclusive() {
        let t = LockTable::new();
        let g = t.acquire_all(vec![
            ("emp".into(), LockMode::Shared),
            ("emp".into(), LockMode::Exclusive),
            ("emp".into(), LockMode::Shared),
        ]);
        assert_eq!(g.held(), &[("emp".to_string(), LockMode::Exclusive)]);
        assert!(t
            .try_acquire_all(vec![("emp".into(), LockMode::Shared)])
            .is_none());
    }

    #[test]
    fn blocked_writer_proceeds_once_readers_drain() {
        let t = Arc::new(LockTable::new());
        let r = t.acquire("emp", LockMode::Shared);
        let t2 = t.clone();
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let h = thread::spawn(move || {
            let _w = t2.acquire("emp", LockMode::Exclusive);
            done2.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0, "writer must wait");
        drop(r);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(t.held_names(), 0, "idle entries are pruned");
    }

    #[test]
    fn all_or_nothing_prevents_hold_and_wait_cycles() {
        // Two sessions wanting {a,b} in opposite orders would deadlock under
        // incremental acquisition; all-or-nothing cannot.
        let t = Arc::new(LockTable::new());
        let mut handles = Vec::new();
        for flip in [false, true] {
            for _ in 0..8 {
                let t = t.clone();
                handles.push(thread::spawn(move || {
                    for _ in 0..50 {
                        let wants = if flip {
                            vec![
                                ("a".to_string(), LockMode::Exclusive),
                                ("b".to_string(), LockMode::Exclusive),
                            ]
                        } else {
                            vec![
                                ("b".to_string(), LockMode::Exclusive),
                                ("a".to_string(), LockMode::Exclusive),
                            ]
                        };
                        let _g = t.acquire_all(wants);
                    }
                }));
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.held_names(), 0);
    }
}
