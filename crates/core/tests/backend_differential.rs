//! The cross-backend differential harness: for every operator, every
//! execution strategy, and randomly drawn relations, comparator vectors,
//! and tile shapes, BOTH closed-form backends — the row kernels and the
//! bit-sliced columnar scans — must agree with the pulse-accurate
//! simulator bit-for-bit: the same result rows, the same `TMatrix`, and
//! the same `ExecStats` (pulses, busy/total cell-pulses, array runs) the
//! grid would have counted.
//!
//! The unit tests inside `core::kernel` pin each analytic formula to its
//! array over exhaustive small-shape sweeps; this suite completes the
//! picture with randomized relations (duplicates, empties, ragged tile
//! remainders) flowing through the *public* operator API.

use proptest::prelude::*;

use systolic_core::ops::{self, Execution};
use systolic_core::{kernel, ArrayLimits, Backend, JoinSpec, ProgrammableJoinArray};
use systolic_fabric::CompareOp;
use systolic_relation::gen::synth_schema;
use systolic_relation::MultiRelation;

fn rel(m: usize, rows: Vec<Vec<i64>>) -> MultiRelation {
    MultiRelation::new(synth_schema(m), rows).unwrap()
}

/// Tuples over a tiny domain so equalities (and therefore interesting
/// T-matrix structure) actually occur.
fn rows_strategy(m: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(-2i64..3, m..=m), 0..=max_rows)
}

/// Tile shapes from degenerate 1x1x1 through single-tile covers, so both
/// ragged remainders and the no-decomposition case are drawn.
fn limits_strategy() -> impl Strategy<Value = ArrayLimits> {
    (1usize..=6, 1usize..=6, 1usize..=4).prop_map(|(a, b, c)| ArrayLimits::new(a, b, c))
}

fn exec_strategy() -> impl Strategy<Value = Execution> {
    prop_oneof![
        Just(Execution::Marching),
        Just(Execution::FixedOperand),
        limits_strategy().prop_map(Execution::Tiled),
        limits_strategy().prop_map(Execution::TiledPipelined),
        (limits_strategy(), 0usize..4)
            .prop_map(|(limits, threads)| Execution::Parallel { limits, threads }),
    ]
}

fn op_strategy() -> impl Strategy<Value = CompareOp> {
    prop_oneof![
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Lt),
        Just(CompareOp::Le),
        Just(CompareOp::Gt),
        Just(CompareOp::Ge),
    ]
}

/// Assert both backends produce identical rows and identical stats.
fn assert_identical(
    label: &str,
    sim: &(MultiRelation, systolic_core::ExecStats),
    fast: &(MultiRelation, systolic_core::ExecStats),
) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.0.rows(), sim.0.rows(), "{} rows", label);
    prop_assert_eq!(&fast.1, &sim.1, "{} stats", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Set operators (§4–§5): intersection, difference, union, dedup, and
    /// projection agree across backends for every execution strategy.
    #[test]
    fn set_operators_agree(
        m in 1usize..=3,
        exec in exec_strategy(),
        seed_a in rows_strategy(3, 9),
        seed_b in rows_strategy(3, 9),
    ) {
        let trim = |rows: Vec<Vec<i64>>| {
            rows.into_iter().map(|r| r[..m].to_vec()).collect::<Vec<_>>()
        };
        let a = rel(m, trim(seed_a));
        let b = rel(m, trim(seed_b));
        for backend in [Backend::Kernel, Backend::Columnar] {
            for (label, sim, fast) in [
                (
                    "intersect",
                    ops::intersect_with(&a, &b, exec, Backend::Sim),
                    ops::intersect_with(&a, &b, exec, backend),
                ),
                (
                    "difference",
                    ops::difference_with(&a, &b, exec, Backend::Sim),
                    ops::difference_with(&a, &b, exec, backend),
                ),
                (
                    "union",
                    ops::union_with(&a, &b, exec, Backend::Sim),
                    ops::union_with(&a, &b, exec, backend),
                ),
                (
                    "dedup",
                    ops::dedup_with(&a, exec, Backend::Sim),
                    ops::dedup_with(&a, exec, backend),
                ),
                (
                    "project",
                    ops::project_with(&a, &[0], exec, Backend::Sim),
                    ops::project_with(&a, &[0], exec, backend),
                ),
            ] {
                assert_identical(label, &sim.unwrap(), &fast.unwrap())?;
            }
        }
    }

    /// Theta-joins (§6): random comparator vectors over random key columns,
    /// through every execution strategy.
    #[test]
    fn theta_joins_agree(
        exec in exec_strategy(),
        specs in prop::collection::vec((0usize..2, 0usize..2, op_strategy()), 1..=3),
        seed_a in rows_strategy(2, 8),
        seed_b in rows_strategy(2, 8),
    ) {
        let a = rel(2, seed_a);
        let b = rel(2, seed_b);
        let specs: Vec<JoinSpec> = specs
            .into_iter()
            .map(|(ca, cb, op)| JoinSpec::theta(ca, cb, op))
            .collect();
        let sim = ops::join_with(&a, &b, &specs, exec, Backend::Sim).unwrap();
        for backend in [Backend::Kernel, Backend::Columnar] {
            let fast = ops::join_with(&a, &b, &specs, exec, backend).unwrap();
            assert_identical("join", &sim, &fast)?;
        }
    }

    /// The kernel's closed-form `T` equals the programmable array's, entry
    /// for entry, for arbitrary comparator vectors — the matrix itself, not
    /// just the assembled result.
    #[test]
    fn programmable_t_matrix_agrees(
        ops_vec in prop::collection::vec(op_strategy(), 1..=3),
        seed_a in rows_strategy(3, 6),
        seed_b in rows_strategy(3, 6),
    ) {
        let m = ops_vec.len();
        let trim = |rows: Vec<Vec<i64>>| {
            rows.into_iter().map(|r| r[..m].to_vec()).collect::<Vec<_>>()
        };
        let (a, b) = (trim(seed_a), trim(seed_b));
        if a.is_empty() || b.is_empty() {
            // The physical array needs at least one tuple per side; the
            // operator front-ends short-circuit empties before reaching it
            // (covered by `empty_and_exact_fit_shapes_agree`).
            return Ok(());
        }
        let sim = ProgrammableJoinArray::new(m)
            .t_matrix(&a, &b, &ops_vec)
            .unwrap();
        let fast = kernel::t_matrix(&a, &b, &ops_vec, |_, _| true);
        prop_assert_eq!(&fast, &sim.t);
        let packed = systolic_relation::ColumnarRelation::from_rows(&b, m);
        let cols: Vec<usize> = (0..m).collect();
        let cols_scan =
            systolic_core::columnar::t_matrix(&a, &cols, &packed, &cols, &ops_vec);
        prop_assert_eq!(cols_scan, sim.t);
    }

    /// Division (§7): binary dividend against a random divisor, with keys
    /// that may or may not cover every pair.
    #[test]
    fn division_agrees(
        exec in exec_strategy(),
        seed_a in rows_strategy(2, 9),
        seed_b in rows_strategy(1, 5),
    ) {
        let a = rel(2, seed_a);
        let b = rel(1, seed_b);
        let sim = ops::divide_binary_with(&a, 0, 1, &b, 0, exec, Backend::Sim).unwrap();
        for backend in [Backend::Kernel, Backend::Columnar] {
            let fast = ops::divide_binary_with(&a, 0, 1, &b, 0, exec, backend).unwrap();
            assert_identical("divide", &sim, &fast)?;
        }
    }

    /// Selection: random predicate columns and constants.
    #[test]
    fn selection_agrees(
        preds in prop::collection::vec((0usize..2, op_strategy(), -2i64..3), 1..=3),
        seed_a in rows_strategy(2, 8),
    ) {
        let a = rel(2, seed_a.clone());
        if a.is_empty() {
            return Ok(());
        }
        let encoded = a.rows();
        let preds: Vec<systolic_core::Predicate> = preds
            .into_iter()
            .map(|(col, op, v)| {
                // Predicates compare against encoded values; pick a real
                // encoded element so comparisons are meaningful, falling
                // back to the raw constant's encoding position 0.
                let value = encoded[v.rem_euclid(encoded.len() as i64) as usize][col];
                systolic_core::Predicate { col, op, value }
            })
            .collect();
        let sim = ops::select_with(&a, &preds, Execution::Marching, Backend::Sim).unwrap();
        for backend in [Backend::Kernel, Backend::Columnar] {
            let fast = ops::select_with(&a, &preds, Execution::Marching, backend).unwrap();
            assert_identical("select", &sim, &fast)?;
        }
    }
}

/// Empty relations on either (or both) sides, plus the single-tile and
/// exact-fit shapes, pinned deterministically for every operator.
#[test]
fn empty_and_exact_fit_shapes_agree() {
    type Rows = Vec<Vec<i64>>;
    let shapes: &[(Rows, Rows)] = &[
        (vec![], vec![]),
        (vec![], vec![vec![1, 2]]),
        (vec![vec![1, 2]], vec![]),
        (vec![vec![1, 2], vec![1, 2]], vec![vec![1, 2]]),
        // Exactly one 4x4 tile under ArrayLimits::new(4, 4, 2).
        (
            (0..4).map(|i| vec![i, i % 2]).collect(),
            (2..6).map(|i| vec![i, i % 2]).collect(),
        ),
        // One row over: a ragged 2-tile decomposition.
        (
            (0..5).map(|i| vec![i, i % 2]).collect(),
            (2..7).map(|i| vec![i, i % 2]).collect(),
        ),
    ];
    let execs = [
        Execution::Marching,
        Execution::FixedOperand,
        Execution::Tiled(ArrayLimits::new(4, 4, 2)),
        Execution::TiledPipelined(ArrayLimits::new(4, 4, 2)),
        Execution::Parallel {
            limits: ArrayLimits::new(4, 4, 2),
            threads: 2,
        },
    ];
    for (rows_a, rows_b) in shapes {
        let a = rel(2, rows_a.clone());
        let b = rel(2, rows_b.clone());
        for exec in execs {
            let ident = |label: &str,
                         sim: (MultiRelation, systolic_core::ExecStats),
                         fast: (MultiRelation, systolic_core::ExecStats)| {
                assert_eq!(
                    fast.0.rows(),
                    sim.0.rows(),
                    "{label} rows ({rows_a:?} vs {rows_b:?}, {exec:?})"
                );
                assert_eq!(
                    fast.1, sim.1,
                    "{label} stats ({rows_a:?} vs {rows_b:?}, {exec:?})"
                );
            };
            for backend in [Backend::Kernel, Backend::Columnar] {
                ident(
                    "intersect",
                    ops::intersect_with(&a, &b, exec, Backend::Sim).unwrap(),
                    ops::intersect_with(&a, &b, exec, backend).unwrap(),
                );
                ident(
                    "union",
                    ops::union_with(&a, &b, exec, Backend::Sim).unwrap(),
                    ops::union_with(&a, &b, exec, backend).unwrap(),
                );
                ident(
                    "dedup",
                    ops::dedup_with(&a, exec, Backend::Sim).unwrap(),
                    ops::dedup_with(&a, exec, backend).unwrap(),
                );
                let specs = [JoinSpec::eq(0, 0)];
                ident(
                    "join",
                    ops::join_with(&a, &b, &specs, exec, Backend::Sim).unwrap(),
                    ops::join_with(&a, &b, &specs, exec, backend).unwrap(),
                );
                ident(
                    "divide",
                    ops::divide_binary_with(&a, 0, 1, &b, 0, exec, Backend::Sim).unwrap(),
                    ops::divide_binary_with(&a, 0, 1, &b, 0, exec, backend).unwrap(),
                );
            }
        }
    }
}
