//! Host-parallel execution of independent array runs.
//!
//! The paper's decomposition technique (§8) turns one large problem into
//! many *independent* sub-problems: each (A-tile x B-tile x column-group)
//! run touches its own slices of the input relations and produces its own
//! block of the result matrix. On real hardware those runs would time-share
//! one physical array; in the simulator they are pure functions, so the
//! host may compute them on several OS threads at once without changing
//! anything the paper measures.
//!
//! Two clocks must never be conflated:
//!
//! * **Hardware time** — simulated pulses, accumulated in [`ExecStats`]
//!   exactly as the sequential executor does (`merge_sequential` in a fixed
//!   job order, modelling one array running tile after tile). Parallel and
//!   sequential execution produce *bit-identical* `ExecStats`.
//! * **Host time** — how long the simulation itself took on this machine,
//!   reported separately in [`HostStats`]. Only this number changes with
//!   the thread count.
//!
//! The pool is built on `std::thread::scope` only — no external
//! dependencies — with a shared atomic work counter handing out job
//! indices, and results written into per-job slots so the merge order is
//! independent of completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use systolic_fabric::{CompareOp, Elem};
use systolic_telemetry::metrics::{self, Counter};

use crate::comparison::ComparisonArray2d;
use crate::error::Result;
use crate::intersection::SetOpMode;
use crate::matrix::TMatrix;
use crate::stats::ExecStats;
use crate::tiling::{ArrayLimits, TiledOutcome};

/// Environment variable overriding the "auto" thread count (`threads: 0`),
/// so CI can force the parallel executor on for a whole test run.
pub const THREADS_ENV: &str = "SYSTOLIC_THREADS";

/// Host-side (wall-clock) cost of a parallel section. Deliberately *not*
/// part of [`ExecStats`]: simulated hardware latency is a property of the
/// design, host speed is a property of this machine and run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Wall-clock nanoseconds the host spent in the parallel section.
    pub wall_ns: u64,
    /// Worker threads actually used.
    pub threads: usize,
    /// Independent jobs executed.
    pub jobs: usize,
}

/// Resolve a requested thread count. Precedence, highest first:
///
/// 1. an explicit positive `requested` value;
/// 2. [`THREADS_ENV`] set to a positive integer (`requested == 0`, "auto");
/// 3. the host's [`std::thread::available_parallelism`];
/// 4. sequential (`1`) if even that is unavailable.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run `n_jobs` independent jobs on up to `threads` workers and return the
/// results **indexed by job**, regardless of completion order.
///
/// Jobs are handed out through an atomic counter, so scheduling is dynamic,
/// but because every job writes only its own slot the output is exactly
/// `[f(0), f(1), .., f(n_jobs - 1)]` — the same vector a sequential loop
/// would build. With `threads <= 1` the jobs run inline on this thread.
pub fn run_jobs<T, F>(threads: usize, n_jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_jobs <= 1 {
        return (0..n_jobs).map(f).collect();
    }
    let workers = threads.min(n_jobs);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n_jobs {
                    break;
                }
                let out = f(k);
                *slots[k].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool completed every job")
        })
        .collect()
}

struct PoolCounters {
    sections: Arc<Counter>,
    jobs: Arc<Counter>,
    wall_ns: Arc<Counter>,
}

fn pool_counters() -> &'static PoolCounters {
    static CACHE: OnceLock<PoolCounters> = OnceLock::new();
    CACHE.get_or_init(|| {
        let r = metrics::global();
        PoolCounters {
            sections: r.counter(
                "sdb_executor_sections_total",
                "Parallel sections executed by the host job pool.",
            ),
            jobs: r.counter(
                "sdb_executor_jobs_total",
                "Independent tile jobs executed by the host job pool.",
            ),
            wall_ns: r.counter(
                "sdb_executor_wall_ns_total",
                "Host wall-clock ns spent inside parallel sections.",
            ),
        }
    })
}

fn record_section(host: HostStats) {
    if !metrics::metrics_enabled() {
        return;
    }
    let c = pool_counters();
    c.sections.inc();
    c.jobs.add(host.jobs as u64);
    c.wall_ns.add(host.wall_ns);
}

/// One (A-tile x B-tile x column-group) sub-problem, in the exact order the
/// sequential executor in [`crate::tiling::t_matrix_tiled`] visits them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    a0: usize,
    a1: usize,
    b0: usize,
    b1: usize,
    c0: usize,
    c1: usize,
    group_idx: usize,
}

fn enumerate_jobs(n_a: usize, n_b: usize, m: usize, limits: ArrayLimits) -> Vec<Job> {
    let col_groups: Vec<(usize, usize)> = (0..m)
        .step_by(limits.max_cols)
        .map(|start| (start, (start + limits.max_cols).min(m)))
        .collect();
    let mut jobs = Vec::new();
    for a0 in (0..n_a).step_by(limits.max_a) {
        let a1 = (a0 + limits.max_a).min(n_a);
        for b0 in (0..n_b).step_by(limits.max_b) {
            let b1 = (b0 + limits.max_b).min(n_b);
            for (group_idx, &(c0, c1)) in col_groups.iter().enumerate() {
                jobs.push(Job {
                    a0,
                    a1,
                    b0,
                    b1,
                    c0,
                    c1,
                    group_idx,
                });
            }
        }
    }
    jobs
}

/// As [`crate::tiling::t_matrix_tiled`], but with the independent grid runs
/// fanned over `threads` host workers. The assembled matrix and the merged
/// [`ExecStats`] are bit-identical to the sequential path: results are
/// merged in the sequential job order, and the hardware accounting still
/// models one physical array running every tile in sequence.
///
/// `initial` must be `Fn + Sync` (not `FnMut`) because several workers may
/// consult it concurrently; all uses in this crate are pure masks.
pub fn t_matrix_tiled_parallel(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    ops: &[CompareOp],
    limits: ArrayLimits,
    threads: usize,
    initial: impl Fn(usize, usize) -> bool + Sync,
) -> Result<TiledOutcome> {
    t_matrix_tiled_parallel_timed(a, b, ops, limits, threads, initial).map(|(out, _)| out)
}

/// [`t_matrix_tiled_parallel`] plus the host-side [`HostStats`] for the
/// parallel section, for callers that report host speed-ups (benches, the
/// machine scheduler).
pub fn t_matrix_tiled_parallel_timed(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    ops: &[CompareOp],
    limits: ArrayLimits,
    threads: usize,
    initial: impl Fn(usize, usize) -> bool + Sync,
) -> Result<(TiledOutcome, HostStats)> {
    let m = ops.len();
    assert!(m > 0, "tuple width must be positive");
    let threads = resolve_threads(threads);
    let jobs = enumerate_jobs(a.len(), b.len(), m, limits);
    let mut section_span = systolic_telemetry::span("executor.parallel_section");
    section_span.arg("threads", threads);
    section_span.arg("jobs", jobs.len());
    let start = std::time::Instant::now();
    let results = run_jobs(threads, jobs.len(), |k| {
        let job = jobs[k];
        let sub_a: Vec<Vec<Elem>> = a[job.a0..job.a1]
            .iter()
            .map(|row| row[job.c0..job.c1].to_vec())
            .collect();
        let sub_b: Vec<Vec<Elem>> = b[job.b0..job.b1]
            .iter()
            .map(|row| row[job.c0..job.c1].to_vec())
            .collect();
        let arr = ComparisonArray2d::with_ops(ops[job.c0..job.c1].to_vec());
        // The west-edge seed is applied on the first column group only;
        // later groups are ANDed in, so seeding them TRUE is the identity.
        arr.t_matrix(&sub_a, &sub_b, |i, j| {
            if job.group_idx == 0 {
                initial(job.a0 + i, job.b0 + j)
            } else {
                true
            }
        })
    });
    let host = HostStats {
        wall_ns: start.elapsed().as_nanos() as u64,
        threads,
        jobs: jobs.len(),
    };
    drop(section_span);
    record_section(host);

    // Deterministic merge, in the sequential executor's nesting order.
    let mut t = TMatrix::new(a.len(), b.len());
    let mut stats = ExecStats::default();
    let mut block: Option<TMatrix> = None;
    for (job, result) in jobs.iter().zip(results) {
        let out = result?;
        stats.merge_sequential(&out.stats);
        block = Some(match block {
            None => out.t,
            Some(mut acc) => {
                acc.and_assign(&out.t);
                acc
            }
        });
        if job.c1 == m {
            // Last column group of this (A-tile, B-tile): paste the block.
            t.paste(job.a0, job.b0, &block.take().expect("block accumulated"));
        }
    }
    Ok((TiledOutcome { t, stats }, host))
}

/// Kernel-backend counterpart of [`t_matrix_tiled_parallel`]: the rows of
/// `A` are split into contiguous chunks, each chunk's block of `T` is
/// computed with the closed-form comparison kernel on its own worker, and
/// the blocks are pasted back in row order. The result is bit-identical to
/// the single-threaded kernel (and therefore to every simulator tiling);
/// only host wall-clock time changes with `threads` — which honours
/// [`THREADS_ENV`] exactly as the simulated parallel executor does.
pub fn kernel_t_matrix_parallel(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    ops: &[CompareOp],
    threads: usize,
) -> TMatrix {
    assert!(!ops.is_empty(), "tuple width must be positive");
    let threads = resolve_threads(threads);
    let chunk = a.len().div_ceil(threads.max(1)).max(1);
    let n_jobs = a.len().div_ceil(chunk);
    let mut section_span = systolic_telemetry::span("executor.parallel_section");
    section_span.arg("threads", threads);
    section_span.arg("jobs", n_jobs);
    let start = std::time::Instant::now();
    let blocks = run_jobs(threads, n_jobs, |k| {
        let lo = k * chunk;
        let hi = (lo + chunk).min(a.len());
        crate::kernel::t_matrix(&a[lo..hi], b, ops, |_, _| true)
    });
    let host = HostStats {
        wall_ns: start.elapsed().as_nanos() as u64,
        threads,
        jobs: n_jobs,
    };
    drop(section_span);
    record_section(host);
    let mut t = TMatrix::new(a.len(), b.len());
    for (k, block) in blocks.iter().enumerate() {
        t.paste(k * chunk, 0, block);
    }
    t
}

/// Columnar-backend counterpart of [`kernel_t_matrix_parallel`]: the
/// streamed rows of `A` are split into contiguous chunks and each worker
/// scans the shared word planes of `B` ([`crate::columnar::t_matrix`]),
/// writing its own band of `T` directly. Bit-identical to the
/// single-threaded columnar scan (and therefore to the row kernel and
/// every simulator tiling) at any thread count.
pub fn columnar_t_matrix_parallel(
    a: &[Vec<Elem>],
    cols_a: &[usize],
    b: &systolic_relation::ColumnarRelation,
    cols_b: &[usize],
    ops: &[CompareOp],
    threads: usize,
) -> TMatrix {
    assert!(!ops.is_empty(), "tuple width must be positive");
    let threads = resolve_threads(threads);
    let chunk = a.len().div_ceil(threads.max(1)).max(1);
    let n_jobs = a.len().div_ceil(chunk);
    let mut section_span = systolic_telemetry::span("executor.parallel_section");
    section_span.arg("threads", threads);
    section_span.arg("jobs", n_jobs);
    let start = std::time::Instant::now();
    let blocks = run_jobs(threads, n_jobs, |k| {
        let lo = k * chunk;
        let hi = (lo + chunk).min(a.len());
        crate::columnar::t_matrix(&a[lo..hi], cols_a, b, cols_b, ops)
    });
    let host = HostStats {
        wall_ns: start.elapsed().as_nanos() as u64,
        threads,
        jobs: n_jobs,
    };
    drop(section_span);
    record_section(host);
    let mut t = TMatrix::new(a.len(), b.n_rows());
    for (k, block) in blocks.iter().enumerate() {
        t.paste(k * chunk, 0, block);
    }
    t
}

/// Membership (intersection/difference keep-flags) over the parallel tiled
/// executor — the parallel counterpart of
/// [`crate::tiling::membership_tiled`].
pub fn membership_tiled_parallel(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    mode: SetOpMode,
    limits: ArrayLimits,
    threads: usize,
    initial: impl Fn(usize, usize) -> bool + Sync,
) -> Result<(Vec<bool>, ExecStats)> {
    let m = a.first().map(|r| r.len()).unwrap_or(1);
    let ops = vec![CompareOp::Eq; m];
    let out = t_matrix_tiled_parallel(a, b, &ops, limits, threads, initial)?;
    let t = out.t.row_ors();
    let keep = match mode {
        SetOpMode::Intersect => t,
        SetOpMode::Difference => t.into_iter().map(|x| !x).collect(),
    };
    Ok((keep, out.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::t_matrix_tiled;

    fn relation(n: usize, m: usize, seed: i64) -> Vec<Vec<Elem>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|c| ((i as i64 * 7 + seed) % 11) + c as i64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        for threads in [1, 2, 8] {
            let out = run_jobs(threads, 37, |k| k * k);
            assert_eq!(
                out,
                (0..37).map(|k| k * k).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn run_jobs_handles_zero_and_one_job() {
        assert!(run_jobs(4, 0, |k| k).is_empty());
        assert_eq!(run_jobs(4, 1, |k| k + 10), vec![10]);
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_sequential() {
        let a = relation(13, 3, 0);
        let b = relation(9, 3, 3);
        let ops = vec![CompareOp::Eq; 3];
        for limits in [
            ArrayLimits::new(4, 4, 3),
            ArrayLimits::new(5, 3, 2),
            ArrayLimits::new(1, 1, 1),
            ArrayLimits::new(100, 100, 100),
        ] {
            let seq = t_matrix_tiled(&a, &b, &ops, limits, |_, _| true).unwrap();
            for threads in [1, 2, 8] {
                let par =
                    t_matrix_tiled_parallel(&a, &b, &ops, limits, threads, |_, _| true).unwrap();
                assert_eq!(par.t, seq.t, "{limits:?} x{threads}");
                assert_eq!(par.stats, seq.stats, "{limits:?} x{threads}");
            }
        }
    }

    #[test]
    fn parallel_masking_matches_sequential() {
        let rows: Vec<Vec<Elem>> = vec![vec![4], vec![4], vec![5], vec![4], vec![5]];
        let limits = ArrayLimits::new(2, 2, 1);
        let (seq, seq_stats) =
            crate::tiling::membership_tiled(&rows, &rows, SetOpMode::Intersect, limits, |i, j| {
                i > j
            })
            .unwrap();
        let (par, par_stats) =
            membership_tiled_parallel(&rows, &rows, SetOpMode::Intersect, limits, 8, |i, j| i > j)
                .unwrap();
        assert_eq!(par, seq);
        assert_eq!(par_stats, seq_stats);
    }

    #[test]
    fn host_stats_report_the_fan_out() {
        let a = relation(8, 2, 0);
        let b = relation(8, 2, 1);
        let ops = vec![CompareOp::Eq; 2];
        let (_, host) =
            t_matrix_tiled_parallel_timed(&a, &b, &ops, ArrayLimits::new(4, 4, 2), 3, |_, _| true)
                .unwrap();
        assert_eq!(host.jobs, 4, "2x2 tile grid");
        assert_eq!(host.threads, 3);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(7), 7);
        // requested == 0 falls back to the environment, then the host's
        // available parallelism; either way the result is positive.
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn kernel_parallel_matrix_is_bit_identical_to_single_threaded() {
        let a = relation(13, 3, 0);
        let b = relation(9, 3, 3);
        let ops = vec![CompareOp::Eq; 3];
        let single = crate::kernel::t_matrix(&a, &b, &ops, |_, _| true);
        for threads in [1, 2, 8, 64] {
            let par = kernel_t_matrix_parallel(&a, &b, &ops, threads);
            assert_eq!(par, single, "{threads} threads");
        }
    }

    #[test]
    fn columnar_parallel_matrix_is_bit_identical_to_single_threaded() {
        let a = relation(77, 3, 0);
        let b = relation(69, 3, 3);
        let packed = systolic_relation::ColumnarRelation::from_rows(&b, 3);
        let ops = vec![CompareOp::Eq, CompareOp::Le, CompareOp::Ne];
        let cols = [0usize, 1, 2];
        let single = crate::kernel::t_matrix(&a, &b, &ops, |_, _| true);
        for threads in [1, 2, 8, 64] {
            let par = columnar_t_matrix_parallel(&a, &cols, &packed, &cols, &ops, threads);
            assert_eq!(par, single, "{threads} threads");
        }
    }
}
