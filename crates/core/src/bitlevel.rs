//! Word-level to bit-level transformation (§8).
//!
//! "For simplicity, we have so far assumed that processors in systolic
//! arrays operate on words. In implementation, each word processor can be
//! partitioned into bit processors to achieve modularity at the bit-level.
//! A transformation of a design from word-level to bit-level is demonstrated
//! in \[3\]." (Foster & Kung's pattern-match chip — "a scaled-down version of
//! the comparison array in Section 3".)
//!
//! Two transformations are provided:
//!
//! * **bit-parallel equality**: a `w`-bit word comparator becomes `w`
//!   single-bit comparators in a row; a tuple comparator becomes `m x w`
//!   bit cells. Realised by expanding tuples to bit streams and reusing the
//!   word-level [`LinearComparisonArray`] — the arrays are literally the
//!   same hardware at a different granularity;
//! * **bit-serial magnitude comparison**: a single stateful cell consumes
//!   the two operands MSB-first over `w` pulses and then emits any of the
//!   six [`CompareOp`] verdicts — the building block for bit-level
//!   theta-join processors (§6.3.2).

use std::cmp::Ordering;

use systolic_fabric::{Cell, CellIo, CompareOp, Elem, Grid, ScheduleFeeder, Word};

use crate::comparison::LinearComparisonArray;
use crate::error::{CoreError, Result};
use crate::stats::ExecStats;

/// Expand a non-negative element into `width` bits, MSB first, each bit as
/// a 0/1 [`Elem`] suitable for streaming through comparison cells.
pub fn expand_bits(value: Elem, width: u32) -> Result<Vec<Elem>> {
    if value < 0 || (width < 63 && value >= (1i64 << width)) {
        return Err(CoreError::WidthOverflow { value, width });
    }
    Ok((0..width).rev().map(|k| (value >> k) & 1).collect())
}

/// Expand a whole tuple into a concatenated MSB-first bit stream.
pub fn expand_tuple(tuple: &[Elem], width: u32) -> Result<Vec<Elem>> {
    let mut out = Vec::with_capacity(tuple.len() * width as usize);
    for &e in tuple {
        out.extend(expand_bits(e, width)?);
    }
    Ok(out)
}

/// A bit-level linear tuple-comparison array: `m x width` single-bit
/// comparators, fed the bit-expanded tuples. Produces exactly the same
/// verdict as the word-level array of Figure 3-1.
#[derive(Debug, Clone, Copy)]
pub struct BitLinearComparisonArray {
    /// Tuple width in words.
    pub m: usize,
    /// Word width in bits.
    pub width: u32,
}

impl BitLinearComparisonArray {
    /// Build for tuples of `m` words of `width` bits each.
    pub fn new(m: usize, width: u32) -> Self {
        assert!(m > 0 && width > 0, "dimensions must be positive");
        BitLinearComparisonArray { m, width }
    }

    /// Number of bit processors.
    pub fn cells(&self) -> usize {
        self.m * self.width as usize
    }

    /// Compare two tuples at bit granularity.
    pub fn compare(&self, a: &[Elem], b: &[Elem], initial: bool) -> Result<(bool, ExecStats)> {
        assert_eq!(a.len(), self.m, "tuple a has wrong width");
        assert_eq!(b.len(), self.m, "tuple b has wrong width");
        let ea = expand_tuple(a, self.width)?;
        let eb = expand_tuple(b, self.width)?;
        let arr = LinearComparisonArray::new(self.cells());
        let out = arr.compare(&ea, &eb, initial)?;
        Ok((out.result, out.stats))
    }
}

/// A bit-serial magnitude comparator cell: consumes one bit of each operand
/// per pulse (MSB first), latching the first difference; a trailing
/// [`Word::Drain`] flushes the verdict for the configured operator.
#[derive(Debug, Clone, Copy)]
pub struct BitSerialMagnitudeCell {
    /// The comparison verdict to emit.
    pub op: CompareOp,
    state: Ordering,
}

impl BitSerialMagnitudeCell {
    /// A fresh comparator for `op`.
    pub fn new(op: CompareOp) -> Self {
        BitSerialMagnitudeCell {
            op,
            state: Ordering::Equal,
        }
    }

    fn verdict(&self) -> bool {
        match self.op {
            CompareOp::Eq => self.state == Ordering::Equal,
            CompareOp::Ne => self.state != Ordering::Equal,
            CompareOp::Lt => self.state == Ordering::Less,
            CompareOp::Le => self.state != Ordering::Greater,
            CompareOp::Gt => self.state == Ordering::Greater,
            CompareOp::Ge => self.state != Ordering::Less,
        }
    }
}

impl Cell for BitSerialMagnitudeCell {
    fn pulse(&mut self, io: &mut CellIo) {
        if let (Some(a), Some(b)) = (io.a_in.as_elem(), io.b_in.as_elem()) {
            // MSB-first: the first differing bit decides and stays latched.
            if self.state == Ordering::Equal {
                self.state = a.cmp(&b);
            }
        }
        if io.t_in == Word::Drain {
            io.t_out = Word::Bool(self.verdict());
            self.state = Ordering::Equal;
        }
    }

    fn reset(&mut self) {
        self.state = Ordering::Equal;
    }
}

/// A single-word bit-serial comparator: one cell, `width + 1` pulses per
/// comparison (the `+1` is the drain pulse that flushes the verdict).
#[derive(Debug, Clone, Copy)]
pub struct BitSerialComparator {
    /// Word width in bits.
    pub width: u32,
    /// Comparison to perform.
    pub op: CompareOp,
}

impl BitSerialComparator {
    /// Build for `width`-bit words under `op`.
    pub fn new(width: u32, op: CompareOp) -> Self {
        assert!(width > 0, "width must be positive");
        BitSerialComparator { width, op }
    }

    /// Compare two elements serially.
    pub fn compare(&self, a: Elem, b: Elem) -> Result<(bool, ExecStats)> {
        let bits_a = expand_bits(a, self.width)?;
        let bits_b = expand_bits(b, self.width)?;
        let op = self.op;
        let mut grid: Grid<BitSerialMagnitudeCell> =
            Grid::new(1, 1, |_, _| BitSerialMagnitudeCell::new(op));
        grid.set_north_feeder(ScheduleFeeder::from_entries(
            bits_a
                .iter()
                .enumerate()
                .map(|(k, &bit)| (k as u64, 0, Word::Elem(bit))),
        ));
        grid.set_south_feeder(ScheduleFeeder::from_entries(
            bits_b
                .iter()
                .enumerate()
                .map(|(k, &bit)| (k as u64, 0, Word::Elem(bit))),
        ));
        grid.set_west_feeder(ScheduleFeeder::from_entries([(
            self.width as u64,
            0,
            Word::Drain,
        )]));
        grid.run_until_quiescent(2 * self.width as u64 + 8)?;
        let verdict = grid
            .east_emissions()
            .at(self.width as u64, 0)
            .and_then(Word::as_bool)
            .ok_or_else(|| CoreError::ScheduleViolation {
                detail: "bit-serial comparator produced no verdict".into(),
            })?;
        Ok((verdict, ExecStats::from_grid(grid.stats(), 1)))
    }
}

/// A complete *bit-level intersection array*: the Figure 4-1 design with
/// every word comparator partitioned into `width` single-bit comparators —
/// §8's transformation applied to a whole operator, not just one cell. The
/// array has `(n_A + n_B - 1) x (m·width + 1)` bit processors and produces
/// exactly the word-level results.
#[derive(Debug, Clone, Copy)]
pub struct BitLevelIntersectionArray {
    /// Tuple width in words.
    pub m: usize,
    /// Word width in bits.
    pub width: u32,
}

impl BitLevelIntersectionArray {
    /// Build for `m`-word tuples of `width`-bit words.
    pub fn new(m: usize, width: u32) -> Self {
        assert!(m > 0 && width > 0, "dimensions must be positive");
        BitLevelIntersectionArray { m, width }
    }

    /// Run the intersection (or difference) at bit granularity.
    pub fn run(
        &self,
        a: &[Vec<Elem>],
        b: &[Vec<Elem>],
        mode: crate::intersection::SetOpMode,
    ) -> Result<crate::intersection::MembershipOutcome> {
        let expand = |rows: &[Vec<Elem>]| -> Result<Vec<Vec<Elem>>> {
            rows.iter().map(|r| expand_tuple(r, self.width)).collect()
        };
        let ea = expand(a)?;
        let eb = expand(b)?;
        crate::intersection::IntersectionArray::new(self.m * self.width as usize)
            .run(&ea, &eb, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection::{IntersectionArray, SetOpMode};

    #[test]
    fn bit_level_intersection_equals_word_level() {
        let a: Vec<Vec<Elem>> = (0..10).map(|i| vec![i, 255 - i]).collect();
        let b: Vec<Vec<Elem>> = (5..15).map(|i| vec![i, 255 - i]).collect();
        let word = IntersectionArray::new(2)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        let bit = BitLevelIntersectionArray::new(2, 8)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        assert_eq!(word.keep, bit.keep);
        let word_d = IntersectionArray::new(2)
            .run(&a, &b, SetOpMode::Difference)
            .unwrap();
        let bit_d = BitLevelIntersectionArray::new(2, 8)
            .run(&a, &b, SetOpMode::Difference)
            .unwrap();
        assert_eq!(word_d.keep, bit_d.keep);
    }

    #[test]
    fn bit_level_array_shape_scales_with_width() {
        let a: Vec<Vec<Elem>> = (0..4).map(|i| vec![i]).collect();
        let word = IntersectionArray::new(1)
            .run(&a, &a, SetOpMode::Intersect)
            .unwrap();
        let bit = BitLevelIntersectionArray::new(1, 8)
            .run(&a, &a, SetOpMode::Intersect)
            .unwrap();
        // (2n-1) x (m·w + 1) bit processors vs (2n-1) x (m + 1) word ones.
        assert_eq!(word.stats.cells, 7 * 2);
        assert_eq!(bit.stats.cells, 7 * 9);
        // Latency grows by the extra column count only (pipeline property).
        assert_eq!(bit.stats.pulses - word.stats.pulses, 8 - 1);
    }

    #[test]
    fn bit_level_rejects_values_exceeding_the_width() {
        let arr = BitLevelIntersectionArray::new(1, 4);
        let err = arr
            .run(&[vec![16]], &[vec![1]], SetOpMode::Intersect)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::WidthOverflow {
                value: 16,
                width: 4
            }
        ));
    }

    #[test]
    fn bit_expansion_is_msb_first() {
        assert_eq!(expand_bits(5, 4).unwrap(), vec![0, 1, 0, 1]);
        assert_eq!(expand_bits(0, 3).unwrap(), vec![0, 0, 0]);
        assert_eq!(expand_bits(7, 3).unwrap(), vec![1, 1, 1]);
    }

    #[test]
    fn expansion_rejects_out_of_range_values() {
        assert!(matches!(
            expand_bits(8, 3),
            Err(CoreError::WidthOverflow { .. })
        ));
        assert!(matches!(
            expand_bits(-1, 8),
            Err(CoreError::WidthOverflow { .. })
        ));
    }

    #[test]
    fn tuple_expansion_concatenates_words() {
        assert_eq!(expand_tuple(&[2, 1], 2).unwrap(), vec![1, 0, 0, 1]);
    }

    #[test]
    fn bit_level_equality_agrees_with_word_level() {
        let word = LinearComparisonArray::new(3);
        let bit = BitLinearComparisonArray::new(3, 8);
        for (a, b) in [
            (vec![1, 2, 3], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![1, 2, 4]),
            (vec![255, 0, 128], vec![255, 0, 128]),
            (vec![255, 0, 128], vec![254, 0, 128]),
        ] {
            let w = word.compare(&a, &b, true).unwrap().result;
            let (v, _) = bit.compare(&a, &b, true).unwrap();
            assert_eq!(w, v, "tuples {a:?} vs {b:?}");
        }
    }

    #[test]
    fn bit_level_array_has_m_times_w_cells_and_linear_latency() {
        let bit = BitLinearComparisonArray::new(2, 8);
        assert_eq!(bit.cells(), 16);
        let (_, stats) = bit.compare(&[1, 2], &[1, 2], true).unwrap();
        assert_eq!(stats.cells, 16);
        // The verdict forms after m*w pulses (one per bit position).
        assert_eq!(stats.pulses, 16);
    }

    #[test]
    fn bit_serial_comparator_matches_all_six_operators() {
        for op in CompareOp::ALL {
            let cmp = BitSerialComparator::new(6, op);
            for (a, b) in [(0, 0), (5, 9), (9, 5), (63, 63), (1, 0), (0, 63)] {
                let (v, _) = cmp.compare(a, b).unwrap();
                assert_eq!(v, op.eval(a, b), "{a} {op} {b}");
            }
        }
    }

    #[test]
    fn serial_comparison_takes_width_plus_one_pulses() {
        let cmp = BitSerialComparator::new(10, CompareOp::Lt);
        let (_, stats) = cmp.compare(100, 200).unwrap();
        assert_eq!(stats.pulses, 11);
        assert_eq!(stats.cells, 1);
    }

    #[test]
    fn serial_cell_state_resets_after_drain() {
        // Two back-to-back comparisons through one grid must not leak state.
        let mut grid: Grid<BitSerialMagnitudeCell> =
            Grid::new(1, 1, |_, _| BitSerialMagnitudeCell::new(CompareOp::Eq));
        // First comparison: 1 vs 0 (not equal). Second: 1 vs 1 (equal).
        grid.set_north_feeder(ScheduleFeeder::from_entries([
            (0, 0, Word::Elem(1)),
            (2, 0, Word::Elem(1)),
        ]));
        grid.set_south_feeder(ScheduleFeeder::from_entries([
            (0, 0, Word::Elem(0)),
            (2, 0, Word::Elem(1)),
        ]));
        grid.set_west_feeder(ScheduleFeeder::from_entries([
            (1, 0, Word::Drain),
            (3, 0, Word::Drain),
        ]));
        grid.run_until_quiescent(16).unwrap();
        assert_eq!(grid.east_emissions().at(1, 0), Some(Word::Bool(false)));
        assert_eq!(grid.east_emissions().at(3, 0), Some(Word::Bool(true)));
    }

    #[test]
    fn wide_words_up_to_62_bits() {
        let cmp = BitSerialComparator::new(62, CompareOp::Gt);
        let big = (1i64 << 61) + 12345;
        let (v, _) = cmp.compare(big, big - 1).unwrap();
        assert!(v);
    }
}
