//! Error type for the systolic operator front-ends.

use std::fmt;

use systolic_fabric::NotQuiescent;
use systolic_relation::RelationError;

/// Errors surfaced by the systolic operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A relational precondition failed (arity, union-compatibility, ...).
    Relation(RelationError),
    /// The array failed to drain within its pulse budget — a schedule bug.
    Fabric(NotQuiescent),
    /// An expected result never appeared on (or an unexpected word appeared
    /// at) an array edge; the message pinpoints the slot.
    ScheduleViolation {
        /// What went wrong and where.
        detail: String,
    },
    /// An element does not fit the configured bit width (bit-level arrays).
    WidthOverflow {
        /// The offending element.
        value: i64,
        /// The configured width in bits.
        width: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relation(e) => write!(f, "{e}"),
            CoreError::Fabric(e) => write!(f, "{e}"),
            CoreError::ScheduleViolation { detail } => {
                write!(f, "schedule violation: {detail}")
            }
            CoreError::WidthOverflow { value, width } => {
                write!(f, "element {value} does not fit in {width} bits")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relation(e) => Some(e),
            CoreError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CoreError {
    fn from(e: RelationError) -> Self {
        CoreError::Relation(e)
    }
}

impl From<NotQuiescent> for CoreError {
    fn from(e: NotQuiescent) -> Self {
        CoreError::Fabric(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: CoreError = RelationError::DuplicateTuple.into();
        assert!(e.to_string().contains("duplicate"));
        let e: CoreError = NotQuiescent { max_pulses: 5 }.into();
        assert!(e.to_string().contains("5 pulses"));
        let e = CoreError::WidthOverflow {
            value: 300,
            width: 8,
        };
        assert!(e.to_string().contains("300"));
        let e = CoreError::ScheduleViolation {
            detail: "row 3".into(),
        };
        assert!(e.to_string().contains("row 3"));
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error;
        let e: CoreError = RelationError::DuplicateTuple.into();
        assert!(e.source().is_some());
        let e = CoreError::ScheduleViolation {
            detail: String::new(),
        };
        assert!(e.source().is_none());
    }
}
