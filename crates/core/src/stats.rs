//! Execution statistics of a simulated array run.

use systolic_fabric::GridStats;

/// What one (or a sequence of) array run(s) cost: the quantities the paper
/// reasons about in §8 — pulses (each pulse is one comparison time on the
/// hardware), processor count, and utilisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Pulses executed (hardware latency = `pulses x comparison_time`).
    pub pulses: u64,
    /// Processors in the array.
    pub cells: usize,
    /// Cell-pulses during which a cell had input (work performed).
    pub busy_cell_pulses: u64,
    /// `pulses x cells` — the utilisation denominator.
    pub total_cell_pulses: u64,
    /// Separate array invocations (1 for a single run; >1 when a problem is
    /// decomposed over a fixed-size array, §8).
    pub array_runs: u64,
}

impl ExecStats {
    /// Assemble from a grid run.
    pub fn from_grid(stats: GridStats, cells: usize) -> Self {
        ExecStats {
            pulses: stats.pulses,
            cells,
            busy_cell_pulses: stats.busy_cell_pulses,
            total_cell_pulses: stats.total_cell_pulses,
            array_runs: 1,
        }
    }

    /// Fraction of cell-pulses doing work, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.total_cell_pulses == 0 {
            0.0
        } else {
            self.busy_cell_pulses as f64 / self.total_cell_pulses as f64
        }
    }

    /// Hardware time for the run under a given per-pulse comparison time
    /// (§8's conservative figure is 350 ns per comparison).
    pub fn hardware_time_ns(&self, pulse_ns: f64) -> f64 {
        self.pulses as f64 * pulse_ns
    }

    /// Merge the statistics of a subsequent run on the same physical array
    /// (sequential composition: pulses add, cell count is the maximum —
    /// the physical array is as large as the largest tile it hosted).
    pub fn merge_sequential(&mut self, other: &ExecStats) {
        self.pulses += other.pulses;
        self.busy_cell_pulses += other.busy_cell_pulses;
        self.total_cell_pulses += other.total_cell_pulses;
        self.cells = self.cells.max(other.cells);
        self.array_runs += other.array_runs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_and_time() {
        let s = ExecStats {
            pulses: 100,
            cells: 10,
            busy_cell_pulses: 250,
            total_cell_pulses: 1000,
            array_runs: 1,
        };
        assert!((s.utilisation() - 0.25).abs() < 1e-12);
        assert!((s.hardware_time_ns(350.0) - 35_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_utilisation() {
        assert_eq!(ExecStats::default().utilisation(), 0.0);
    }

    #[test]
    fn sequential_merge_adds_pulses_and_keeps_max_cells() {
        let mut a = ExecStats {
            pulses: 10,
            cells: 8,
            busy_cell_pulses: 5,
            total_cell_pulses: 80,
            array_runs: 1,
        };
        let b = ExecStats {
            pulses: 20,
            cells: 4,
            busy_cell_pulses: 9,
            total_cell_pulses: 80,
            array_runs: 1,
        };
        a.merge_sequential(&b);
        assert_eq!(a.pulses, 30);
        assert_eq!(a.cells, 8);
        assert_eq!(a.busy_cell_pulses, 14);
        assert_eq!(a.array_runs, 2);
    }
}
