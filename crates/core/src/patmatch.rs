//! The pattern-match chip (§8, reference \[3\]).
//!
//! "During the past year, we have designed prototypes of several
//! special-purpose chips at CMU. These include a pattern-match chip \[3\] ...
//! The pattern-match chip can be viewed as a scaled-down version of the
//! comparison array in Section 3. (This chip has been fabricated, tested,
//! and found to work.)"
//!
//! This module realises that chip on the same fabric: a linear array of `k`
//! character comparators with the pattern resident (one symbol per cell,
//! wildcards allowed), the text streaming through, and one match verdict
//! emitted per alignment — the AND-chain of Figure 3-2 with a stored
//! operand. It both demonstrates the lineage the paper describes and serves
//! as a second worked application of the fixed-operand layout.

use systolic_fabric::{Cell, CellIo, Elem, Grid, ScheduleFeeder, Word};

use crate::error::{CoreError, Result};
use crate::stats::ExecStats;

/// The wildcard symbol: matches any text character ("don't care" in the
/// Foster–Kung chip).
pub const WILDCARD: Elem = -1;

/// One pattern cell: a comparator with a resident pattern symbol.
#[derive(Debug, Clone, Copy)]
pub struct PatternCell {
    /// The resident symbol ([`WILDCARD`] matches everything).
    pub stored: Elem,
}

impl Cell for PatternCell {
    fn pulse(&mut self, io: &mut CellIo) {
        match io.a_in.as_elem() {
            Some(ch) => {
                let hit = self.stored == WILDCARD || ch == self.stored;
                io.t_out = match io.t_in {
                    Word::Bool(t) => Word::Bool(t && hit),
                    _ => Word::Bool(hit),
                };
            }
            None => io.t_out = io.t_in,
        }
        // The text keeps streaming; nothing moves north.
        io.a_out = io.a_in;
    }
}

/// The linear pattern-match array: `k` resident pattern cells.
///
/// ```
/// use systolic_core::PatternMatchChip;
/// let chip = PatternMatchChip::from_bytes(b"a?a");
/// assert_eq!(chip.find_in_bytes(b"banana").unwrap(), vec![1, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct PatternMatchChip {
    pattern: Vec<Elem>,
}

impl PatternMatchChip {
    /// Pre-load a pattern (symbols, [`WILDCARD`] for don't-care positions).
    ///
    /// # Panics
    /// Panics on an empty pattern.
    pub fn preload(pattern: &[Elem]) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        PatternMatchChip {
            pattern: pattern.to_vec(),
        }
    }

    /// Convenience: pre-load from bytes, `b'?'` as the wildcard.
    pub fn from_bytes(pattern: &[u8]) -> Self {
        Self::preload(
            &pattern
                .iter()
                .map(|&b| if b == b'?' { WILDCARD } else { b as Elem })
                .collect::<Vec<_>>(),
        )
    }

    /// Pattern length (number of processors).
    pub fn k(&self) -> usize {
        self.pattern.len()
    }

    /// Stream `text` through the chip. Returns one boolean per alignment
    /// (`text.len() - k + 1` verdicts: `out[i]` is TRUE iff the pattern
    /// matches at text position `i`), plus the hardware statistics.
    pub fn search(&self, text: &[Elem]) -> Result<(Vec<bool>, ExecStats)> {
        let k = self.k();
        if text.len() < k {
            return Ok((Vec::new(), ExecStats::default()));
        }
        let alignments = text.len() - k + 1;
        let pattern = &self.pattern;
        let mut grid: Grid<PatternCell> =
            Grid::new(1, k, |_, c| PatternCell { stored: pattern[c] });
        // Cell c sees the text delayed by c pulses: lane c carries text[p]
        // at pulse p, restricted to the alignments that use it. Alignment i
        // meets cell c (character text[i+c]) at pulse i + c.
        let mut north = ScheduleFeeder::new();
        for c in 0..k {
            for i in 0..alignments {
                north.push((i + c) as u64, c, Word::Elem(text[i + c]));
            }
        }
        grid.set_north_feeder(north);
        grid.set_west_feeder(ScheduleFeeder::from_entries(
            (0..alignments).map(|i| (i as u64, 0, Word::Bool(true))),
        ));
        grid.run_until_quiescent((text.len() + 2 * k + 4) as u64)?;

        let mut out = vec![None; alignments];
        for em in grid.east_emissions().emissions() {
            let p = em.pulse as usize;
            if p + 1 < k {
                continue;
            }
            let i = p + 1 - k;
            if i >= alignments {
                return Err(CoreError::ScheduleViolation {
                    detail: format!("verdict at pulse {p} beyond the last alignment"),
                });
            }
            out[i] = em.word.as_bool();
        }
        let out: Vec<bool> = out
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("no verdict for alignment {i}"),
                })
            })
            .collect::<Result<_>>()?;
        Ok((out, ExecStats::from_grid(grid.stats(), k)))
    }

    /// Search a byte string; returns the matching start offsets.
    pub fn find_in_bytes(&self, text: &[u8]) -> Result<Vec<usize>> {
        let encoded: Vec<Elem> = text.iter().map(|&b| b as Elem).collect();
        let (hits, _) = self.search(&encoded)?;
        Ok(hits
            .iter()
            .enumerate()
            .filter(|(_, &h)| h)
            .map(|(i, _)| i)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_all_occurrences() {
        let chip = PatternMatchChip::from_bytes(b"aba");
        let hits = chip.find_in_bytes(b"abababa").unwrap();
        assert_eq!(hits, vec![0, 2, 4], "overlapping matches included");
    }

    #[test]
    fn wildcards_match_any_character() {
        let chip = PatternMatchChip::from_bytes(b"a?c");
        let hits = chip.find_in_bytes(b"abc axc azz").unwrap();
        assert_eq!(hits, vec![0, 4]);
    }

    #[test]
    fn no_match_anywhere() {
        let chip = PatternMatchChip::from_bytes(b"xyz");
        assert!(chip.find_in_bytes(b"aaaaaa").unwrap().is_empty());
    }

    #[test]
    fn text_shorter_than_pattern_yields_no_alignments() {
        let chip = PatternMatchChip::from_bytes(b"long pattern");
        let (hits, stats) = chip.search(&[1, 2, 3]).unwrap();
        assert!(hits.is_empty());
        assert_eq!(stats, ExecStats::default());
    }

    #[test]
    fn exact_text_equals_pattern() {
        let chip = PatternMatchChip::from_bytes(b"hello");
        assert_eq!(chip.find_in_bytes(b"hello").unwrap(), vec![0]);
    }

    #[test]
    fn single_symbol_pattern_matches_each_occurrence() {
        let chip = PatternMatchChip::from_bytes(b"a");
        assert_eq!(chip.find_in_bytes(b"banana").unwrap(), vec![1, 3, 5]);
    }

    #[test]
    fn verdicts_agree_with_naive_search_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(808);
        for _ in 0..20 {
            let k = rng.gen_range(1..=4);
            let n = rng.gen_range(k..=24);
            let pattern: Vec<Elem> = (0..k)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        WILDCARD
                    } else {
                        rng.gen_range(0..3)
                    }
                })
                .collect();
            let text: Vec<Elem> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            let chip = PatternMatchChip::preload(&pattern);
            let (hits, _) = chip.search(&text).unwrap();
            for i in 0..=(n - k) {
                let expect = (0..k).all(|c| pattern[c] == WILDCARD || text[i + c] == pattern[c]);
                assert_eq!(hits[i], expect, "alignment {i}");
            }
        }
    }

    #[test]
    fn latency_is_linear_in_text_length() {
        let chip = PatternMatchChip::from_bytes(b"ab");
        let text: Vec<Elem> = (0..100).map(|i| (i % 2) + 97).collect();
        let (_, stats) = chip.search(&text).unwrap();
        assert!(stats.pulses <= 104, "pulses {} not linear", stats.pulses);
        assert_eq!(stats.cells, 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        PatternMatchChip::preload(&[]);
    }
}
