//! Columnar scan kernels: the [`Backend::Columnar`] result paths.
//!
//! [`crate::kernel`] already computes every operator's observable result in
//! closed form, but its hot loops still walk row-oriented `Vec<Vec<Elem>>`
//! relations one tuple-pair comparison chain at a time. This module
//! re-expresses those loops over the bit-packed word planes of
//! [`systolic_relation::ColumnarRelation`] (one `u64` plane per significant
//! bit of a column's §2.3 offset codes, 64 rows per word):
//!
//! * [`t_matrix`] assembles whole `TMatrix` rows at a time — per streamed
//!   `A` tuple, each comparison column becomes `width` branch-free word
//!   operations over `B`'s planes instead of `|B|` scalar compare chains.
//! * [`membership_bits`] / [`duplicate_bits`] replace tuple hashing with
//!   `u64` *composite-code* hashing when the column widths fit one word
//!   (foreign tuples outside a packed range cannot match and are rejected
//!   before hashing), falling back to the row kernels when they do not.
//! * [`quotient_flags`] / [`quotient_flags_multi`] replace the per-key
//!   `HashSet<Elem>` of matched divisor values with a bit set over the
//!   distinct divisor elements, reducing the §7 all-present test to a
//!   popcount.
//! * [`fused_select`] is the multi-query scan: when several admitted
//!   queries share an operand relation, each *distinct* predicate mask is
//!   computed once over the shared planes and the per-query keep vectors
//!   are ANDed from those masks — one pass over the operand, per-query
//!   results identical to running [`select_bits`] separately.
//!
//! Everything here is a *result* kernel only. The analytic `ExecStats`
//! formulas in [`crate::kernel`] are shared verbatim by the kernel and
//! columnar backends, which is why stats, timelines, and RESULT frames are
//! bit-identical by construction; the differential tests additionally pin
//! the result bits against both the row kernels and the pulse simulator.

use std::collections::{HashMap, HashSet};

use systolic_fabric::{CompareOp, Elem};
use systolic_relation::columnar::CmpMasks;
use systolic_relation::{ColumnarRelation, Row};

use crate::kernel;
use crate::matrix::TMatrix;
use crate::select::Predicate;

#[allow(unused_imports)] // rustdoc link target
use crate::kernel::Backend;

/// Combine the three primitive masks into the mask of rows `r` satisfying
/// `packed[r] <op> constant` (the packed value on the *left*). `live` is
/// the all-rows mask a `Ne` needs to complement against.
fn combine_left(op: CompareOp, m: &CmpMasks, live: impl Fn(usize) -> u64, out: &mut [u64]) {
    match op {
        CompareOp::Eq => out.copy_from_slice(&m.eq),
        CompareOp::Ne => {
            for (w, o) in out.iter_mut().enumerate() {
                *o = !m.eq[w] & live(w);
            }
        }
        CompareOp::Lt => out.copy_from_slice(&m.lt),
        CompareOp::Le => {
            for (w, o) in out.iter_mut().enumerate() {
                *o = m.eq[w] | m.lt[w];
            }
        }
        CompareOp::Gt => out.copy_from_slice(&m.gt),
        CompareOp::Ge => {
            for (w, o) in out.iter_mut().enumerate() {
                *o = m.eq[w] | m.gt[w];
            }
        }
    }
}

/// Mirror a comparison so the packed operand moves to the left-hand side:
/// `a <op> b  ⟺  b <mirror(op)> a`.
fn mirror(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Eq => CompareOp::Eq,
        CompareOp::Ne => CompareOp::Ne,
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::Le => CompareOp::Ge,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::Ge => CompareOp::Le,
    }
}

/// The live-row mask of word `w` in a `words`-word plane with tail `tail`.
#[inline]
fn live_mask(words: usize, tail: u64) -> impl Fn(usize) -> u64 {
    move |w| if w + 1 == words { tail } else { u64::MAX }
}

/// The comparison matrix `T` over word planes: `t_{ij} = AND_c
/// ops[c](a[i][cols_a[c]], b[cols_b[c]])`, bit-identical to
/// [`kernel::t_matrix`] over the corresponding key projections.
///
/// `B` is the packed operand; each streamed `A` tuple produces one packed
/// `TMatrix` row as `width`-bounded word loops over `B`'s planes (the
/// per-column masks ANDed word-wise), instead of `|B|` scalar comparison
/// chains.
pub fn t_matrix(
    a: &[Row],
    cols_a: &[usize],
    b: &ColumnarRelation,
    cols_b: &[usize],
    ops: &[CompareOp],
) -> TMatrix {
    debug_assert_eq!(cols_a.len(), ops.len());
    debug_assert_eq!(cols_b.len(), ops.len());
    let mut t = TMatrix::new(a.len(), b.n_rows());
    t_matrix_into(a, cols_a, b, cols_b, ops, &mut t, 0);
    t
}

/// [`t_matrix`] writing rows `row0..row0 + a.len()` of an existing matrix
/// (the parallel executor's chunked form; see
/// [`crate::executor::columnar_t_matrix_parallel`]).
pub(crate) fn t_matrix_into(
    a: &[Row],
    cols_a: &[usize],
    b: &ColumnarRelation,
    cols_b: &[usize],
    ops: &[CompareOp],
    t: &mut TMatrix,
    row0: usize,
) {
    let words = b.words();
    let tail = b.tail_mask();
    let live = live_mask(words, tail);
    let mut masks = CmpMasks::default();
    let mut col_mask = vec![0u64; words];
    let mut acc = vec![0u64; words];
    for (i, row) in a.iter().enumerate() {
        // Seed all-live, then AND each comparison column's mask in.
        for (w, x) in acc.iter_mut().enumerate() {
            *x = live(w);
        }
        for (c, &op) in ops.iter().enumerate() {
            b.cmp_masks_into(cols_b[c], row[cols_a[c]], &mut masks);
            combine_left(mirror(op), &masks, &live, &mut col_mask);
            for (x, &m) in acc.iter_mut().zip(&col_mask) {
                *x &= m;
            }
        }
        t.row_words_mut(row0 + i).copy_from_slice(&acc);
    }
}

/// [`kernel::membership_bits`] over composite codes: `t_i = OR_j
/// (a_i == b_j)` with `B`'s tuples hashed as single `u64` codes when the
/// packed column widths sum to at most 64 bits (rows of `A` outside a
/// packed range cannot match and short-circuit to FALSE). Falls back to
/// the row kernel when the widths do not fit.
pub fn membership_bits(a: &[Row], b_rows: &[Row], b: &ColumnarRelation) -> Vec<bool> {
    let Some(spec) = b.composite_spec() else {
        return kernel::membership_bits(a, b_rows);
    };
    let set: HashSet<u64> = b_rows
        .iter()
        .map(|r| ColumnarRelation::composite_code(&spec, r))
        .collect();
    a.iter()
        .map(|r| {
            b.try_composite_code(&spec, r)
                .is_some_and(|code| set.contains(&code))
        })
        .collect()
}

/// [`kernel::duplicate_bits`] over composite codes: `dup[i] = OR_{j < i}
/// (a_i == a_j)` with first occurrences tracked in a `u64`-keyed map.
/// Falls back to the row kernel when the widths do not fit one word.
pub fn duplicate_bits(rows: &[Row], packed: &ColumnarRelation) -> Vec<bool> {
    let Some(spec) = packed.composite_spec() else {
        return kernel::duplicate_bits(rows);
    };
    let mut first: HashMap<u64, usize> = HashMap::with_capacity(rows.len());
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            let code = ColumnarRelation::composite_code(&spec, r);
            *first.entry(code).or_insert(i) < i
        })
        .collect()
}

/// Set bit `d` of the `words`-word bit set starting at `r * words`.
#[inline]
fn set_bit(bits: &mut [u64], r: usize, words: usize, d: usize) {
    bits[r * words + d / 64] |= 1u64 << (d % 64);
}

/// Whether key row `r`'s bit set covers all `nd` distinct divisor ids.
#[inline]
fn all_covered(bits: &[u64], r: usize, words: usize, nd: usize) -> bool {
    let row = &bits[r * words..(r + 1) * words];
    let pop: u32 = row.iter().map(|w| w.count_ones()).sum();
    pop as usize == nd
}

/// [`kernel::quotient_flags`] with the per-key matched set held as a bit
/// set over the *distinct* divisor elements: `flags[r]` is TRUE iff every
/// divisor element is paired with `keys[r]`, decided by a popcount instead
/// of `nd` hash probes per key. `hits` is identical to the row kernel's.
pub fn quotient_flags(
    pairs: &[(Elem, Elem)],
    keys: &[Elem],
    divisor: &[Elem],
) -> (Vec<bool>, usize) {
    let mut div_id: HashMap<Elem, usize> = HashMap::with_capacity(divisor.len());
    for &y in divisor {
        let next = div_id.len();
        div_id.entry(y).or_insert(next);
    }
    let nd = div_id.len();
    let words = nd.div_ceil(64).max(1);
    let index: HashMap<Elem, usize> = keys.iter().enumerate().map(|(r, &k)| (k, r)).collect();
    let mut bits = vec![0u64; keys.len() * words];
    let mut hits = 0usize;
    for &(x, y) in pairs {
        if let Some(&r) = index.get(&x) {
            hits += 1;
            if let Some(&d) = div_id.get(&y) {
                set_bit(&mut bits, r, words, d);
            }
        }
    }
    let flags = (0..keys.len())
        .map(|r| all_covered(&bits, r, words, nd))
        .collect();
    (flags, hits)
}

/// [`kernel::quotient_flags_multi`] with divisor bit sets (as
/// [`quotient_flags`]) and, when the key columns fit one composite word,
/// `u64`-keyed row→key lookup via `keys_packed`'s composite codes.
pub fn quotient_flags_multi(
    rows: &[Vec<Elem>],
    keys: &[Vec<Elem>],
    keys_packed: &ColumnarRelation,
    kw: usize,
    divisor: &[Elem],
) -> (Vec<bool>, usize) {
    let mut div_id: HashMap<Elem, usize> = HashMap::with_capacity(divisor.len());
    for &y in divisor {
        let next = div_id.len();
        div_id.entry(y).or_insert(next);
    }
    let nd = div_id.len();
    let words = nd.div_ceil(64).max(1);
    let mut bits = vec![0u64; keys.len() * words];
    let mut hits = 0usize;
    if let Some(spec) = keys_packed.composite_spec() {
        let index: HashMap<u64, usize> = keys
            .iter()
            .enumerate()
            .map(|(r, k)| (ColumnarRelation::composite_code(&spec, k), r))
            .collect();
        for row in rows {
            let Some(code) = keys_packed.try_composite_code(&spec, &row[..kw]) else {
                continue;
            };
            if let Some(&r) = index.get(&code) {
                hits += 1;
                if let Some(&d) = div_id.get(&row[kw]) {
                    set_bit(&mut bits, r, words, d);
                }
            }
        }
    } else {
        let index: HashMap<&[Elem], usize> = keys
            .iter()
            .enumerate()
            .map(|(r, k)| (k.as_slice(), r))
            .collect();
        for row in rows {
            if let Some(&r) = index.get(&row[..kw]) {
                hits += 1;
                if let Some(&d) = div_id.get(&row[kw]) {
                    set_bit(&mut bits, r, words, d);
                }
            }
        }
    }
    let flags = (0..keys.len())
        .map(|r| all_covered(&bits, r, words, nd))
        .collect();
    (flags, hits)
}

/// The packed keep mask of rows satisfying every predicate: each
/// predicate's `(col, op, value)` becomes one plane scan, the masks AND
/// word-wise. Out-of-range constants resolve without touching a plane.
fn select_mask(packed: &ColumnarRelation, predicates: &[Predicate]) -> Vec<u64> {
    let words = packed.words();
    let tail = packed.tail_mask();
    let live = live_mask(words, tail);
    let mut masks = CmpMasks::default();
    let mut col_mask = vec![0u64; words];
    let mut acc: Vec<u64> = (0..words).map(&live).collect();
    for p in predicates {
        packed.cmp_masks_into(p.col, p.value, &mut masks);
        combine_left(p.op, &masks, &live, &mut col_mask);
        for (x, &m) in acc.iter_mut().zip(&col_mask) {
            *x &= m;
        }
    }
    acc
}

/// Unpack a word mask into per-row booleans.
fn mask_to_bits(mask: &[u64], n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| (mask[i / 64] >> (i % 64)) & 1 == 1)
        .collect()
}

/// Selection keep flags over word planes, bit-identical to evaluating
/// `predicates.iter().all(|p| p.eval(row))` per row.
pub fn select_bits(packed: &ColumnarRelation, predicates: &[Predicate]) -> Vec<bool> {
    mask_to_bits(&select_mask(packed, predicates), packed.n_rows())
}

/// The fused multi-query scan: evaluate many queries' predicate lists in
/// **one pass** over a shared operand's word planes. Each *distinct*
/// `(col, op, value)` mask across all queries is computed once, then every
/// query's keep vector is the word-wise AND of its predicates' masks —
/// exactly [`select_bits`] per query, with the shared-mask work deduped.
pub fn fused_select(packed: &ColumnarRelation, queries: &[&[Predicate]]) -> Vec<Vec<bool>> {
    let words = packed.words();
    let tail = packed.tail_mask();
    let live = live_mask(words, tail);
    let mut masks = CmpMasks::default();
    let mut cache: HashMap<(usize, CompareOp, Elem), Vec<u64>> = HashMap::new();
    let mut out = Vec::with_capacity(queries.len());
    for preds in queries {
        let mut acc: Vec<u64> = (0..words).map(&live).collect();
        for p in *preds {
            let mask = cache.entry((p.col, p.op, p.value)).or_insert_with(|| {
                packed.cmp_masks_into(p.col, p.value, &mut masks);
                let mut m = vec![0u64; words];
                combine_left(p.op, &masks, &live, &mut m);
                m
            });
            for (x, &m) in acc.iter_mut().zip(mask.iter()) {
                *x &= m;
            }
        }
        out.push(mask_to_bits(&acc, packed.n_rows()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relation(n: usize, m: usize, seed: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|c| ((i as i64 * 7 + seed) % 5) + c as i64)
                    .collect()
            })
            .collect()
    }

    fn pack(rows: &[Row], m: usize) -> ColumnarRelation {
        ColumnarRelation::from_rows(rows, m)
    }

    #[test]
    fn t_matrix_matches_the_row_kernel_for_every_op() {
        for ops in [
            vec![CompareOp::Eq, CompareOp::Eq],
            vec![CompareOp::Lt, CompareOp::Ge],
            vec![CompareOp::Ne, CompareOp::Le],
            vec![CompareOp::Gt, CompareOp::Eq],
        ] {
            for (n_a, n_b) in [(1, 1), (3, 2), (7, 13), (5, 64), (6, 65), (4, 130)] {
                let a = relation(n_a, 2, 0);
                let b = relation(n_b, 2, 3);
                let packed = pack(&b, 2);
                let reference = kernel::t_matrix(&a, &b, &ops, |_, _| true);
                let got = t_matrix(&a, &[0, 1], &packed, &[0, 1], &ops);
                assert_eq!(got, reference, "{ops:?} {n_a}x{n_b}");
            }
        }
    }

    #[test]
    fn t_matrix_handles_out_of_range_stream_values() {
        // Streamed constants below/above B's packed range exercise the
        // no-plane short-circuits for every operator.
        let b: Vec<Row> = vec![vec![10], vec![12], vec![11]];
        let packed = pack(&b, 1);
        let a: Vec<Row> = vec![vec![-5], vec![10], vec![11], vec![99], vec![i64::MIN]];
        for op in CompareOp::ALL {
            let ops = [op];
            let reference = kernel::t_matrix(&a, &b, &ops, |_, _| true);
            let got = t_matrix(&a, &[0], &packed, &[0], &ops);
            assert_eq!(got, reference, "{op:?}");
        }
    }

    #[test]
    fn membership_and_duplicates_match_the_row_kernels() {
        let a = relation(23, 2, 0);
        let b = relation(17, 2, 3);
        let packed = pack(&b, 2);
        assert_eq!(
            membership_bits(&a, &b, &packed),
            kernel::membership_bits(&a, &b)
        );
        // Foreign values far outside B's packed range.
        let wild: Vec<Row> = vec![vec![i64::MIN, 0], vec![0, i64::MAX], b[0].clone()];
        assert_eq!(
            membership_bits(&wild, &b, &packed),
            kernel::membership_bits(&wild, &b)
        );
        let dupes = relation(31, 3, 1);
        let packed = pack(&dupes, 3);
        assert_eq!(
            duplicate_bits(&dupes, &packed),
            kernel::duplicate_bits(&dupes)
        );
    }

    #[test]
    fn overwide_relations_fall_back_to_the_row_kernels() {
        // Two full-width columns cannot composite-code; results must still
        // match via the fallback.
        let b: Vec<Row> = vec![vec![i64::MIN, 0], vec![i64::MAX, i64::MAX], vec![0, 5]];
        let packed = pack(&b, 2);
        assert!(packed.composite_spec().is_none());
        let a: Vec<Row> = vec![vec![0, 5], vec![1, 1], vec![i64::MAX, i64::MAX]];
        assert_eq!(
            membership_bits(&a, &b, &packed),
            kernel::membership_bits(&a, &b)
        );
        let mut dupes = b.clone();
        dupes.extend_from_slice(&b);
        let packed = pack(&dupes, 2);
        assert_eq!(
            duplicate_bits(&dupes, &packed),
            kernel::duplicate_bits(&dupes)
        );
    }

    #[test]
    fn quotient_flags_match_the_row_kernel() {
        let pairs: Vec<(Elem, Elem)> = (0..40).map(|p| (p % 6, p % 5)).collect();
        let divisor: Vec<Elem> = vec![0, 1, 2, 3, 2, 0]; // duplicates allowed
        for keys in [vec![0, 1, 2, 3, 4, 5], vec![1, 3], vec![9], vec![]] {
            for nd in [0, 3, divisor.len()] {
                let expect = kernel::quotient_flags(&pairs, &keys, &divisor[..nd]);
                let got = quotient_flags(&pairs, &keys, &divisor[..nd]);
                assert_eq!(got, expect, "keys {keys:?} nd {nd}");
            }
        }
    }

    #[test]
    fn quotient_flags_multi_match_the_row_kernel() {
        for (n, kw, nd) in [(12, 2, 3), (5, 1, 2), (7, 3, 0), (4, 2, 1)] {
            let rows: Vec<Vec<Elem>> = (0..n)
                .map(|p| {
                    let mut r: Vec<Elem> = (0..kw).map(|c| ((p + c) % 3) as Elem).collect();
                    r.push((p % 4) as Elem);
                    r
                })
                .collect();
            let mut keys: Vec<Vec<Elem>> = Vec::new();
            let mut seen = HashSet::new();
            for row in &rows {
                if seen.insert(row[..kw].to_vec()) {
                    keys.push(row[..kw].to_vec());
                }
            }
            let divisor: Vec<Elem> = (0..nd as Elem).collect();
            let packed = pack(&keys, kw);
            let expect = kernel::quotient_flags_multi(&rows, &keys, kw, &divisor);
            let got = quotient_flags_multi(&rows, &keys, &packed, kw, &divisor);
            assert_eq!(got, expect, "n {n} kw {kw} nd {nd}");
        }
    }

    #[test]
    fn select_bits_match_scalar_predicate_evaluation() {
        let rows = relation(70, 3, 2);
        let packed = pack(&rows, 3);
        for preds in [
            vec![Predicate::new(0, CompareOp::Gt, 2)],
            vec![
                Predicate::new(0, CompareOp::Ge, 1),
                Predicate::new(2, CompareOp::Ne, 4),
            ],
            vec![Predicate::new(1, CompareOp::Lt, -100)], // below range
            vec![Predicate::new(1, CompareOp::Le, 1000)], // above range
        ] {
            let expect: Vec<bool> = rows
                .iter()
                .map(|r| preds.iter().all(|p| p.eval(r)))
                .collect();
            assert_eq!(select_bits(&packed, &preds), expect, "{preds:?}");
        }
    }

    #[test]
    fn fused_select_matches_solo_scans() {
        let rows = relation(130, 3, 5);
        let packed = pack(&rows, 3);
        let q1 = vec![Predicate::new(0, CompareOp::Gt, 2)];
        let q2 = vec![
            Predicate::new(0, CompareOp::Gt, 2), // shared mask with q1
            Predicate::new(1, CompareOp::Le, 3),
        ];
        let q3 = vec![Predicate::new(2, CompareOp::Eq, 4)];
        let q4: Vec<Predicate> = vec![]; // empty predicate list keeps all
        let queries: Vec<&[Predicate]> = vec![&q1, &q2, &q3, &q4];
        let fused = fused_select(&packed, &queries);
        assert_eq!(fused.len(), 4);
        for (k, preds) in queries.iter().enumerate() {
            assert_eq!(fused[k], select_bits(&packed, preds), "query {k}");
        }
        assert!(fused[3].iter().all(|&x| x), "empty query keeps every row");
    }

    #[test]
    fn empty_relations_produce_empty_masks() {
        let packed = pack(&[], 2);
        assert!(select_bits(&packed, &[Predicate::new(0, CompareOp::Eq, 1)]).is_empty());
        let t = t_matrix(
            &relation(3, 2, 0),
            &[0, 1],
            &packed,
            &[0, 1],
            &[CompareOp::Eq, CompareOp::Eq],
        );
        assert_eq!(t.n_a(), 3);
        assert_eq!(t.n_b(), 0);
        assert_eq!(t.count_true(), 0);
    }
}
