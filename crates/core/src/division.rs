//! Arrays for division (§7, Figures 7-1 and 7-2).
//!
//! The division array has two modules side by side:
//!
//! * the **dividend array** (two processor columns): the left column stores
//!   the distinct elements appearing in the dividend's key column `A1`
//!   (one per processor); `(x, y)` pairs are fed from the bottom, `x` into
//!   the left column and `y` one step behind into the right column. Where
//!   `x` matches a stored element, a TRUE crosses to the right column just
//!   as the associated `y` arrives, and the `y` is emitted eastward
//!   (otherwise a null is emitted);
//! * the **divisor array** (one column per divisor element): each processor
//!   stores one element of `B` and watches the `y` stream passing
//!   left-to-right, latching a match flag. After the dividend has passed, an
//!   AND is taken across each row ("which is checked by doing an AND across
//!   the row after the dividend passes through the array") — realised here
//!   by a `Drain` control word swept through the array behind the data.
//!
//! A row whose AND is TRUE contributes its stored `x` to the quotient.

use systolic_fabric::{Cell, CellIo, Elem, Grid, ScheduleFeeder, TraceFrame, Word};

use crate::error::{CoreError, Result};
use crate::stats::ExecStats;

/// Left dividend column: holds one distinct key element `x̄`.
#[derive(Debug, Clone, Copy)]
pub struct DividendKeyCell {
    /// The stored (pre-loaded) distinct element of `A1`.
    pub stored: Elem,
}

impl Cell for DividendKeyCell {
    fn pulse(&mut self, io: &mut CellIo) {
        match io.b_in {
            Word::Elem(x) => {
                io.b_out = io.b_in;
                io.t_out = Word::Bool(x == self.stored);
            }
            Word::Drain => {
                io.b_out = Word::Drain;
                io.t_out = Word::Drain;
            }
            _ => {}
        }
    }
}

/// Right dividend column: gates the `y` stream with the key-match boolean.
#[derive(Debug, Clone, Copy, Default)]
pub struct DividendGateCell;

impl Cell for DividendGateCell {
    fn pulse(&mut self, io: &mut CellIo) {
        io.b_out = io.b_in;
        io.t_out = match io.t_in {
            // "If t is true, then y is output from the right side of the
            // processor. Otherwise, some null value is output."
            Word::Bool(true) => io.b_in,
            Word::Bool(false) => Word::Null,
            // The drain sweeping past seeds the AND chain with TRUE.
            Word::Drain => Word::Bool(true),
            _ => Word::Null,
        };
    }
}

/// Divisor-array cell: stores one divisor element and a match latch.
#[derive(Debug, Clone, Copy)]
pub struct DivisorStoreCell {
    /// The pre-loaded divisor element.
    pub stored: Elem,
    /// Latched TRUE once any passing `y` equals `stored`.
    pub matched: bool,
}

impl DivisorStoreCell {
    /// A cell storing `stored`, initially unmatched.
    pub fn new(stored: Elem) -> Self {
        DivisorStoreCell {
            stored,
            matched: false,
        }
    }
}

impl Cell for DivisorStoreCell {
    fn pulse(&mut self, io: &mut CellIo) {
        io.t_out = match io.t_in {
            Word::Elem(y) => {
                // "each processor of the row checks if the element it is
                // storing matches any of the y's passing from left to right"
                if y == self.stored {
                    self.matched = true;
                }
                io.t_in
            }
            // The AND across the row, riding the drain token.
            Word::Bool(v) => {
                let out = Word::Bool(v && self.matched);
                self.matched = false; // consume the latch; array is reusable
                out
            }
            _ => Word::Null,
        };
    }

    fn reset(&mut self) {
        self.matched = false;
    }
}

/// A cell of the combined division array.
#[derive(Debug, Clone, Copy)]
pub enum DivisionCell {
    /// Left dividend column.
    Key(DividendKeyCell),
    /// Right dividend column.
    Gate(DividendGateCell),
    /// Divisor-array column.
    Store(DivisorStoreCell),
}

impl Cell for DivisionCell {
    fn pulse(&mut self, io: &mut CellIo) {
        match self {
            DivisionCell::Key(c) => c.pulse(io),
            DivisionCell::Gate(c) => c.pulse(io),
            DivisionCell::Store(c) => c.pulse(io),
        }
    }
    fn reset(&mut self) {
        if let DivisionCell::Store(c) = self {
            c.reset();
        }
    }
}

/// Outcome of a division-array run.
#[derive(Debug, Clone)]
pub struct DivisionOutcome {
    /// The distinct dividend keys, in pre-load (row) order.
    pub keys: Vec<Elem>,
    /// `quotient_flags[r]` is TRUE iff `keys[r]` belongs to the quotient.
    pub quotient_flags: Vec<bool>,
    /// The quotient itself, in key order.
    pub quotient: Vec<Elem>,
    /// Run statistics.
    pub stats: ExecStats,
    /// Wire snapshots, if tracing was requested.
    pub frames: Vec<TraceFrame>,
}

/// The division array (restricted case of §7: binary dividend `A(A1, A2)`,
/// unary divisor `B(B1)`).
///
/// ```
/// use systolic_core::DivisionArray;
/// // Figure 7-1 (keys i,j,k as 1,2,3; values a..e as 10..14): C = {i}.
/// let pairs = [(1, 10), (1, 11), (1, 12), (2, 10), (2, 12),
///              (3, 10), (1, 13), (2, 14), (3, 12), (3, 13)];
/// let out = DivisionArray.divide(&pairs, &[10, 11, 12, 13]).unwrap();
/// assert_eq!(out.quotient, vec![1]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DivisionArray;

impl DivisionArray {
    /// Divide: `pairs` are the `(x, y)` rows of the dividend; `divisor` the
    /// elements of `B1`. Distinct keys are extracted host-side in
    /// first-occurrence order (the paper notes they "can be identified by
    /// the remove-duplicates array"; the operator front-end does exactly
    /// that — see `ops::divide_binary`).
    pub fn divide(&self, pairs: &[(Elem, Elem)], divisor: &[Elem]) -> Result<DivisionOutcome> {
        let mut keys: Vec<Elem> = Vec::new();
        for &(x, _) in pairs {
            if !keys.contains(&x) {
                keys.push(x);
            }
        }
        self.divide_with_keys(pairs, &keys, divisor, false)
    }

    /// As [`Self::divide`], with explicit pre-loaded keys and optional
    /// tracing. Keys must be distinct; pairs whose `x` is not among the
    /// keys are ignored by the hardware (they match no row).
    pub fn divide_with_keys(
        &self,
        pairs: &[(Elem, Elem)],
        keys: &[Elem],
        divisor: &[Elem],
        trace: bool,
    ) -> Result<DivisionOutcome> {
        if keys.is_empty() {
            return Ok(DivisionOutcome {
                keys: Vec::new(),
                quotient_flags: Vec::new(),
                quotient: Vec::new(),
                stats: ExecStats::default(),
                frames: Vec::new(),
            });
        }
        let rows = keys.len();
        let nd = divisor.len();
        let cols = 2 + nd;
        let mut grid: Grid<DivisionCell> = Grid::new(rows, cols, |r, c| match c {
            0 => DivisionCell::Key(DividendKeyCell { stored: keys[r] }),
            1 => DivisionCell::Gate(DividendGateCell),
            _ => DivisionCell::Store(DivisorStoreCell::new(divisor[c - 2])),
        });
        if trace {
            grid.enable_tracing();
        }
        // Pairs enter from the bottom: x at pulse p into lane 0, y one step
        // behind into lane 1; the drain token follows the last pair.
        let n = pairs.len() as u64;
        let mut south = ScheduleFeeder::new();
        for (p, &(x, y)) in pairs.iter().enumerate() {
            south.push(p as u64, 0, Word::Elem(x));
            south.push(p as u64 + 1, 1, Word::Elem(y));
        }
        south.push(n, 0, Word::Drain);
        grid.set_south_feeder(south);
        let bound = n + (rows + nd) as u64 + 8;
        grid.run_until_quiescent(bound)?;

        // Exactly one boolean (the row's AND) exits east per row; the y
        // values that survived gating also exit east and are ignored here.
        let mut flags: Vec<Option<bool>> = vec![None; rows];
        for em in grid.east_emissions().emissions() {
            if let Word::Bool(v) = em.word {
                if flags[em.lane].replace(v).is_some() {
                    return Err(CoreError::ScheduleViolation {
                        detail: format!("two AND verdicts for divisor row {}", em.lane),
                    });
                }
            }
        }
        let quotient_flags: Vec<bool> = flags
            .into_iter()
            .enumerate()
            .map(|(r, f)| {
                f.ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("no AND verdict for divisor row {r}"),
                })
            })
            .collect::<Result<_>>()?;
        let quotient = keys
            .iter()
            .zip(&quotient_flags)
            .filter(|(_, &f)| f)
            .map(|(&k, _)| k)
            .collect();
        let stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
        Ok(DivisionOutcome {
            keys: keys.to_vec(),
            quotient_flags,
            quotient,
            stats,
            frames: grid.trace_frames().to_vec(),
        })
    }
}

/// A key cell of the *multi-column* dividend array (§7's "the extension
/// from this to the general case is straightforward (as in the preceding
/// section on the join)"): one processor column per key column, the match
/// boolean ANDing eastward exactly as in the comparison array, so a
/// composite key `(x_1, ..., x_K)` is compared in hardware without any
/// host-side encoding.
#[derive(Debug, Clone, Copy)]
pub struct DividendKeyCellMulti {
    /// The stored element of this key column for this row.
    pub stored: Elem,
}

impl Cell for DividendKeyCellMulti {
    fn pulse(&mut self, io: &mut CellIo) {
        match io.b_in {
            Word::Elem(x) => {
                io.b_out = io.b_in;
                let eq = x == self.stored;
                io.t_out = match io.t_in {
                    Word::Bool(t) => Word::Bool(t && eq),
                    _ => Word::Bool(eq),
                };
            }
            Word::Drain => {
                io.b_out = Word::Drain;
                io.t_out = Word::Drain;
            }
            // Nothing northbound this pulse: forward any in-flight booleans
            // or drain tokens from the neighbouring key column.
            _ => io.t_out = io.t_in,
        }
    }
}

/// A cell of the multi-key division array.
#[derive(Debug, Clone, Copy)]
pub enum DivisionCellMulti {
    /// One of the `K` key columns.
    Key(DividendKeyCellMulti),
    /// The gate column (identical to the restricted design).
    Gate(DividendGateCell),
    /// A divisor-array column.
    Store(DivisorStoreCell),
}

impl Cell for DivisionCellMulti {
    fn pulse(&mut self, io: &mut CellIo) {
        match self {
            DivisionCellMulti::Key(c) => c.pulse(io),
            DivisionCellMulti::Gate(c) => c.pulse(io),
            DivisionCellMulti::Store(c) => c.pulse(io),
        }
    }
    fn reset(&mut self) {
        if let DivisionCellMulti::Store(c) = self {
            c.reset();
        }
    }
}

/// The multi-column-key division array: dividend rows are
/// `(x_1, ..., x_K, y)`, the divisor is unary, and the quotient is the set
/// of composite keys paired with every divisor value.
#[derive(Debug, Clone, Copy)]
pub struct DivisionArrayMulti {
    /// Number of key columns `K`.
    pub key_width: usize,
}

/// Outcome of a multi-key division run.
#[derive(Debug, Clone)]
pub struct DivisionMultiOutcome {
    /// The distinct composite keys, in pre-load (row) order.
    pub keys: Vec<Vec<Elem>>,
    /// `quotient_flags[r]` is TRUE iff `keys[r]` belongs to the quotient.
    pub quotient_flags: Vec<bool>,
    /// The quotient keys.
    pub quotient: Vec<Vec<Elem>>,
    /// Run statistics.
    pub stats: ExecStats,
}

impl DivisionArrayMulti {
    /// Build for composite keys of `key_width` columns.
    pub fn new(key_width: usize) -> Self {
        assert!(key_width > 0, "key width must be positive");
        DivisionArrayMulti { key_width }
    }

    /// Divide: `rows` are the dividend tuples `(x_1..x_K, y)`; `divisor`
    /// the divisor elements. Distinct composite keys are pre-loaded in
    /// first-occurrence order.
    pub fn divide(&self, rows: &[Vec<Elem>], divisor: &[Elem]) -> Result<DivisionMultiOutcome> {
        let kw = self.key_width;
        for row in rows {
            assert_eq!(row.len(), kw + 1, "dividend rows must be (x_1..x_K, y)");
        }
        let mut keys: Vec<Vec<Elem>> = Vec::new();
        for row in rows {
            let key = &row[..kw];
            if !keys.iter().any(|k| k.as_slice() == key) {
                keys.push(key.to_vec());
            }
        }
        if keys.is_empty() {
            return Ok(DivisionMultiOutcome {
                keys: Vec::new(),
                quotient_flags: Vec::new(),
                quotient: Vec::new(),
                stats: ExecStats::default(),
            });
        }
        let grid_rows = keys.len();
        let nd = divisor.len();
        let cols = kw + 1 + nd;
        let keys_ref = &keys;
        let mut grid: Grid<DivisionCellMulti> = Grid::new(grid_rows, cols, |r, c| {
            if c < kw {
                DivisionCellMulti::Key(DividendKeyCellMulti {
                    stored: keys_ref[r][c],
                })
            } else if c == kw {
                DivisionCellMulti::Gate(DividendGateCell)
            } else {
                DivisionCellMulti::Store(DivisorStoreCell::new(divisor[c - kw - 1]))
            }
        });
        // Pair p: key element x_c into lane c at pulse p+c (staggered like
        // the comparison array); y into the gate lane at pulse p+kw, one
        // step behind the last key element, exactly when the accumulated
        // key-match boolean reaches the gate. Pairs one pulse apart; the
        // drain follows the last pair through lane 0 (and fans east).
        let n = rows.len() as u64;
        let mut south = ScheduleFeeder::new();
        for (p, row) in rows.iter().enumerate() {
            for (c, &x) in row[..kw].iter().enumerate() {
                south.push((p + c) as u64, c, Word::Elem(x));
            }
            south.push((p + kw) as u64, kw, Word::Elem(row[kw]));
        }
        south.push(n, 0, Word::Drain);
        grid.set_south_feeder(south);
        let bound = n + (grid_rows + cols) as u64 + 8;
        grid.run_until_quiescent(bound)?;

        let mut flags: Vec<Option<bool>> = vec![None; grid_rows];
        for em in grid.east_emissions().emissions() {
            if let Word::Bool(v) = em.word {
                if flags[em.lane].replace(v).is_some() {
                    return Err(CoreError::ScheduleViolation {
                        detail: format!("two AND verdicts for divisor row {}", em.lane),
                    });
                }
            }
        }
        let quotient_flags: Vec<bool> = flags
            .into_iter()
            .enumerate()
            .map(|(r, f)| {
                f.ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("no AND verdict for divisor row {r}"),
                })
            })
            .collect::<Result<_>>()?;
        let quotient = keys
            .iter()
            .zip(&quotient_flags)
            .filter(|(_, &f)| f)
            .map(|(k, _)| k.clone())
            .collect();
        let stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
        Ok(DivisionMultiOutcome {
            keys,
            quotient_flags,
            quotient,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figures 7-1 and 7-2: keys {i, j, k} as 1, 2, 3
    /// and values {a..e} as 10..14.
    fn paper_example() -> (Vec<(Elem, Elem)>, Vec<Elem>) {
        let (i, j, k) = (1, 2, 3);
        let (a, b, c, d, e) = (10, 11, 12, 13, 14);
        let pairs = vec![
            (i, a),
            (i, b),
            (i, c),
            (j, a),
            (j, c),
            (k, a),
            (i, d),
            (j, e),
            (k, c),
            (k, d),
        ];
        (pairs, vec![a, b, c, d])
    }

    #[test]
    fn reproduces_the_figure_7_1_quotient() {
        let (pairs, divisor) = paper_example();
        let out = DivisionArray.divide(&pairs, &divisor).unwrap();
        assert_eq!(
            out.keys,
            vec![1, 2, 3],
            "distinct keys in first-occurrence order"
        );
        assert_eq!(
            out.quotient,
            vec![1],
            "C = {{i}}: only i pairs with all of a,b,c,d"
        );
        assert_eq!(out.quotient_flags, vec![true, false, false]);
        // Dividend array is rows x 2; divisor array rows x |B|.
        assert_eq!(out.stats.cells, 3 * (2 + 4));
    }

    #[test]
    fn empty_divisor_accepts_every_key() {
        // Universal quantification over the empty set.
        let out = DivisionArray.divide(&[(1, 10), (2, 20)], &[]).unwrap();
        assert_eq!(out.quotient, vec![1, 2]);
    }

    #[test]
    fn empty_dividend_produces_empty_quotient() {
        let out = DivisionArray.divide(&[], &[10]).unwrap();
        assert!(out.quotient.is_empty());
        assert_eq!(out.stats, ExecStats::default());
    }

    #[test]
    fn single_key_single_divisor() {
        let out = DivisionArray.divide(&[(5, 10)], &[10]).unwrap();
        assert_eq!(out.quotient, vec![5]);
        let out = DivisionArray.divide(&[(5, 11)], &[10]).unwrap();
        assert!(out.quotient.is_empty());
    }

    #[test]
    fn duplicate_pairs_do_not_change_the_result() {
        let out = DivisionArray
            .divide(&[(1, 10), (1, 10), (1, 11), (2, 10)], &[10, 11])
            .unwrap();
        assert_eq!(out.quotient, vec![1]);
    }

    #[test]
    fn duplicate_divisor_elements_are_harmless() {
        let out = DivisionArray
            .divide(&[(1, 10), (2, 11)], &[10, 10])
            .unwrap();
        assert_eq!(out.quotient, vec![1]);
    }

    #[test]
    fn keys_not_covering_all_pairs_are_ignored_gracefully() {
        // Pre-load only key 1: pairs with x=2 match no row and vanish.
        let out = DivisionArray
            .divide_with_keys(&[(1, 10), (2, 10), (2, 11)], &[1], &[10, 11], false)
            .unwrap();
        assert_eq!(out.quotient_flags, vec![false], "key 1 lacks y=11");
    }

    #[test]
    fn agrees_with_reference_division_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use systolic_relation::gen;
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..10 {
            let (a, b, expected) = gen::division_instance(&mut rng, 9, 3, 3);
            let pairs: Vec<(Elem, Elem)> = a.rows().iter().map(|r| (r[0], r[1])).collect();
            let divisor: Vec<Elem> = b.rows().iter().map(|r| r[0]).collect();
            let out = DivisionArray.divide(&pairs, &divisor).unwrap();
            let mut got = out.quotient.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "trial {trial}");
        }
    }

    #[test]
    fn latency_is_linear_in_pairs_plus_rows_plus_divisor() {
        let pairs: Vec<(Elem, Elem)> = (0..32).map(|p| (p % 8, p / 8)).collect();
        let divisor: Vec<Elem> = (0..4).collect();
        let out = DivisionArray.divide(&pairs, &divisor).unwrap();
        assert!(
            out.stats.pulses <= (32 + 8 + 4 + 8) as u64,
            "pulses {} exceed the linear bound",
            out.stats.pulses
        );
    }

    #[test]
    fn multi_key_division_matches_the_general_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9090);
        for trial in 0..10 {
            // Dividend (x1, x2, y) with small domains to force coverage.
            let n = rng.gen_range(4..24);
            let rows: Vec<Vec<Elem>> = (0..n)
                .map(|_| {
                    vec![
                        rng.gen_range(0..3),
                        rng.gen_range(0..3),
                        rng.gen_range(0..4),
                    ]
                })
                .collect();
            let divisor: Vec<Elem> = (0..rng.gen_range(1..4)).collect();
            let out = DivisionArrayMulti::new(2).divide(&rows, &divisor).unwrap();
            // Reference: composite key kept iff paired with every divisor y.
            for (key, &flag) in out.keys.iter().zip(&out.quotient_flags) {
                let expect = divisor
                    .iter()
                    .all(|&y| rows.iter().any(|r| &r[..2] == key.as_slice() && r[2] == y));
                assert_eq!(flag, expect, "trial {trial}, key {key:?}");
            }
        }
    }

    #[test]
    fn multi_key_with_width_one_matches_the_restricted_array() {
        let rows: Vec<Vec<Elem>> = vec![
            vec![1, 10],
            vec![1, 11],
            vec![2, 10],
            vec![3, 11],
            vec![3, 10],
        ];
        let divisor = [10, 11];
        let pairs: Vec<(Elem, Elem)> = rows.iter().map(|r| (r[0], r[1])).collect();
        let restricted = DivisionArray.divide(&pairs, &divisor).unwrap();
        let multi = DivisionArrayMulti::new(1).divide(&rows, &divisor).unwrap();
        assert_eq!(restricted.quotient_flags, multi.quotient_flags);
        let flat: Vec<Elem> = multi.quotient.iter().map(|k| k[0]).collect();
        assert_eq!(restricted.quotient, flat);
    }

    #[test]
    fn multi_key_hardware_shape() {
        // K key columns + gate + |B| divisor columns, one row per distinct
        // composite key.
        let rows: Vec<Vec<Elem>> = vec![
            vec![1, 1, 10],
            vec![1, 1, 11],
            vec![1, 2, 10],
            vec![2, 2, 10],
            vec![2, 2, 11],
        ];
        let out = DivisionArrayMulti::new(2).divide(&rows, &[10, 11]).unwrap();
        assert_eq!(out.keys.len(), 3);
        assert_eq!(out.stats.cells, 3 * (2 + 1 + 2));
        assert_eq!(
            out.quotient,
            vec![vec![1, 1], vec![2, 2]],
            "(1,1) and (2,2) are paired with both 10 and 11"
        );
    }

    #[test]
    fn multi_key_empty_dividend() {
        let out = DivisionArrayMulti::new(2).divide(&[], &[1]).unwrap();
        assert!(out.quotient.is_empty());
    }

    #[test]
    fn array_state_resets_between_runs_via_fresh_grids() {
        // Two consecutive divisions must not leak matched flags.
        let d = DivisionArray;
        let out1 = d.divide(&[(1, 10)], &[10, 11]).unwrap();
        assert!(out1.quotient.is_empty());
        let out2 = d.divide(&[(1, 11)], &[11]).unwrap();
        assert_eq!(out2.quotient, vec![1]);
    }
}
