//! The intersection array (§4, Figure 4-1) and the difference variant
//! (§4.3).
//!
//! "The intersection array ... consists of a (two-dimensional) comparison
//! array on the left and a (linear) accumulation array on the right. The
//! comparison array performs comparisons between tuples in A and tuples in
//! B, to produce the matrix T, whereas the accumulation array accumulates
//! t_{ij} to form t_i = OR_{1<=j<=n} t_{ij} (4.1)."
//!
//! The difference `A - B` is the same array with inverted output: "t_i is
//! FALSE for any a_i that was in A, but not in B, which is precisely the
//! condition for a_i being in the difference" (§4.3).

use systolic_fabric::{Cell, CellIo, CompareOp, CompareSchedule, Elem, Grid, TraceFrame, Word};

use crate::comparison::CompareCell;
use crate::error::{CoreError, Result};
use crate::stats::ExecStats;

/// An accumulation processor (§4.2): "takes its left input (some t_{ij}
/// from the comparison array), OR's that with the top input (some t_i), and
/// passes on the result as its output (the updated t_i) to the processor
/// below"; when idle it "simply pass\[es\] on the t_i" it holds.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccumulateCell;

impl Cell for AccumulateCell {
    fn pulse(&mut self, io: &mut CellIo) {
        io.a_out = match (io.a_in.as_bool(), io.t_in.as_bool()) {
            (Some(acc), Some(t)) => Word::Bool(acc || t),
            (Some(acc), None) => Word::Bool(acc),
            // A t with no running accumulator is a schedule anomaly (a
            // correctly staggered run always delivers the FALSE-initialised
            // accumulator alongside the first t, §4.2); dropping it keeps
            // the fault visible as a missing output downstream.
            (None, _) => Word::Null,
        };
        // Accumulated values leave through the bottom, not the east edge.
        io.t_out = Word::Null;
        io.b_out = Word::Null;
    }
}

/// A cell of the combined intersection array: comparison columns on the
/// left, one accumulation column on the right (Figure 4-1 shows the two
/// modules side by side; physically they form one grid).
#[derive(Debug, Clone, Copy)]
pub enum IntersectCell {
    /// A comparison processor (Figure 3-2).
    Compare(CompareCell),
    /// An accumulation processor (§4.2).
    Accumulate(AccumulateCell),
}

impl Cell for IntersectCell {
    fn pulse(&mut self, io: &mut CellIo) {
        match self {
            IntersectCell::Compare(c) => c.pulse(io),
            IntersectCell::Accumulate(c) => c.pulse(io),
        }
    }
}

/// Which set operation to derive from the accumulated `t_i` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpMode {
    /// Keep `a_i` when `t_i` is TRUE (`A ∩ B`).
    Intersect,
    /// Keep `a_i` when `t_i` is FALSE (`A - B`) — "alternatively, we could
    /// just put an inverter on the output line of the accumulation array".
    Difference,
}

/// Outcome of an intersection-array run: one keep-flag per tuple of `A`.
#[derive(Debug, Clone)]
pub struct MembershipOutcome {
    /// `keep[i]` is TRUE iff `a_i` belongs to the result.
    pub keep: Vec<bool>,
    /// The raw accumulated `t_i` bits (before any inversion).
    pub t: Vec<bool>,
    /// Run statistics.
    pub stats: ExecStats,
    /// Wire snapshots, if tracing was requested.
    pub frames: Vec<TraceFrame>,
}

/// The intersection array of Figure 4-1.
///
/// ```
/// use systolic_core::{IntersectionArray, SetOpMode};
/// let a = vec![vec![1, 1], vec![2, 2], vec![3, 3]];
/// let b = vec![vec![2, 2], vec![9, 9]];
/// let out = IntersectionArray::new(2).run(&a, &b, SetOpMode::Intersect).unwrap();
/// assert_eq!(out.keep, vec![false, true, false]); // only (2,2) is in both
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IntersectionArray {
    /// Tuple width.
    pub m: usize,
}

impl IntersectionArray {
    /// An intersection array for tuples of width `m`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "tuple width must be positive");
        IntersectionArray { m }
    }

    /// Run the array over relations `a` and `b`, producing keep-flags for
    /// the tuples of `a` under `mode`.
    pub fn run(
        &self,
        a: &[Vec<Elem>],
        b: &[Vec<Elem>],
        mode: SetOpMode,
    ) -> Result<MembershipOutcome> {
        self.run_masked(a, b, mode, |_, _| true, false)
    }

    /// The general form used by both intersection (§4) and
    /// remove-duplicates (§5): `initial(i, j)` supplies the west-edge `t`
    /// seed per pair (TRUE everywhere for intersection; `i > j` for
    /// remove-duplicates).
    pub fn run_masked(
        &self,
        a: &[Vec<Elem>],
        b: &[Vec<Elem>],
        mode: SetOpMode,
        initial: impl FnMut(usize, usize) -> bool,
        trace: bool,
    ) -> Result<MembershipOutcome> {
        let m = self.m;
        let sched = CompareSchedule::new(a.len(), b.len(), m);
        // Comparison columns 0..m-1, accumulation column m.
        let mut grid: Grid<IntersectCell> = Grid::new(sched.rows(), m + 1, |_, c| {
            if c < m {
                IntersectCell::Compare(CompareCell::new(CompareOp::Eq))
            } else {
                IntersectCell::Accumulate(AccumulateCell)
            }
        });
        if trace {
            grid.enable_tracing();
        }
        // North feeder carries both relation A (columns 0..m-1) and the
        // FALSE-initialised accumulator stream (column m, §4.2).
        let mut north = sched.a_feeder(a);
        for (pulse, lane, word) in sched.acc_feeder_entries() {
            north.push(pulse, lane, word);
        }
        grid.set_north_feeder(north);
        grid.set_south_feeder(sched.b_feeder(b));
        grid.set_west_feeder(sched.t_feeder(initial));
        grid.run_until_quiescent(sched.pulse_bound())?;

        // Accumulated t_i values leave the bottom of the accumulation
        // column; everything else exiting south is relation A marching out.
        let mut t = vec![None; a.len()];
        for em in grid.south_emissions().emissions() {
            if em.lane != sched.acc_col() {
                continue;
            }
            let i =
                sched
                    .tuple_at_acc_exit(em.pulse)
                    .ok_or_else(|| CoreError::ScheduleViolation {
                        detail: format!("unexpected accumulator emission at pulse {}", em.pulse),
                    })?;
            let v = em
                .word
                .as_bool()
                .ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("non-boolean accumulator output {:?}", em.word),
                })?;
            t[i] = Some(v);
        }
        let t: Vec<bool> = t
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("no accumulated t for tuple {i}"),
                })
            })
            .collect::<Result<_>>()?;
        let keep = match mode {
            SetOpMode::Intersect => t.clone(),
            SetOpMode::Difference => t.iter().map(|&b| !b).collect(),
        };
        let stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
        Ok(MembershipOutcome {
            keep,
            t,
            stats,
            frames: grid.trace_frames().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[&[Elem]]) -> Vec<Vec<Elem>> {
        vals.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn reproduces_the_figure_4_1_shape() {
        // Two 3x3 relations, as in the worked example of §4.2.
        let a = rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let b = rows(&[&[4, 5, 6], &[0, 0, 0], &[7, 8, 9]]);
        let out = IntersectionArray::new(3)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        assert_eq!(out.keep, vec![false, true, true]);
        // (n_A + n_B - 1) rows of (m comparison + 1 accumulation) cells.
        assert_eq!(out.stats.cells, 5 * 4);
    }

    #[test]
    fn difference_is_the_inverted_output() {
        let a = rows(&[&[1, 1], &[2, 2], &[3, 3]]);
        let b = rows(&[&[2, 2]]);
        let arr = IntersectionArray::new(2);
        let inter = arr.run(&a, &b, SetOpMode::Intersect).unwrap();
        let diff = arr.run(&a, &b, SetOpMode::Difference).unwrap();
        assert_eq!(inter.keep, vec![false, true, false]);
        assert_eq!(diff.keep, vec![true, false, true]);
        // Same raw t bits in both modes — only the interpretation differs.
        assert_eq!(inter.t, diff.t);
    }

    #[test]
    fn duplicate_matches_in_b_still_give_a_single_true() {
        // OR-accumulation is idempotent: multiple matching b_j do not break
        // anything.
        let a = rows(&[&[5]]);
        let b = rows(&[&[5], &[5], &[5]]);
        let out = IntersectionArray::new(1)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        assert_eq!(out.keep, vec![true]);
    }

    #[test]
    fn disjoint_relations_intersect_empty() {
        let a = rows(&[&[1], &[2]]);
        let b = rows(&[&[3], &[4], &[5]]);
        let out = IntersectionArray::new(1)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        assert!(out.keep.iter().all(|&k| !k));
        let out = IntersectionArray::new(1)
            .run(&a, &b, SetOpMode::Difference)
            .unwrap();
        assert!(out.keep.iter().all(|&k| k));
    }

    #[test]
    fn masked_run_implements_triangle_suppression() {
        // Feeding A against itself with the §5 mask: only strictly-lower
        // pairs may produce TRUE.
        let a = rows(&[&[9], &[9], &[9]]);
        let out = IntersectionArray::new(1)
            .run_masked(&a, &a, SetOpMode::Intersect, |i, j| i > j, false)
            .unwrap();
        // Tuple 0 has no prior equal tuple; tuples 1 and 2 do.
        assert_eq!(out.t, vec![false, true, true]);
    }

    #[test]
    fn agrees_with_nested_loop_reference_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use systolic_relation::gen;
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..10 {
            let (a, b) = gen::pair_with_overlap(&mut rng, 12, 9, 2, 0.5);
            let arr = IntersectionArray::new(2);
            let out = arr.run(a.rows(), b.rows(), SetOpMode::Intersect).unwrap();
            for (i, row) in a.rows().iter().enumerate() {
                assert_eq!(out.keep[i], b.contains(row), "row {i}");
            }
        }
    }

    #[test]
    fn utilisation_is_at_most_about_a_half() {
        // §8: "only half of the processors in a systolic array are busy at
        // any one time" when both relations march.
        let a: Vec<Vec<Elem>> = (0..16).map(|i| vec![i, i]).collect();
        let out = IntersectionArray::new(2)
            .run(&a, &a, SetOpMode::Intersect)
            .unwrap();
        let u = out.stats.utilisation();
        assert!(
            u <= 0.55,
            "marching arrays should not exceed ~50% utilisation, got {u}"
        );
    }

    #[test]
    fn single_tuple_each_side() {
        let out = IntersectionArray::new(2)
            .run(&rows(&[&[3, 4]]), &rows(&[&[3, 4]]), SetOpMode::Intersect)
            .unwrap();
        assert_eq!(out.keep, vec![true]);
    }
}
