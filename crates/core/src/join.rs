//! Arrays for join (§6, Figure 6-1).
//!
//! The join array produces the matrix `T` whose entry `t_{ij}` is TRUE iff
//! `a_i` and `b_j` match in the specified columns; result tuples are then
//! assembled host-side from the TRUE entries ("if we have the matrix T, it
//! is straightforward to generate the relation C", §6.2). A single join
//! column needs only a linear (one-column) array; joining over several
//! columns uses one processor column per column pair (§6.3.1); any binary
//! comparison can replace equality (§6.3.2).

use systolic_fabric::{CompareOp, Elem, TraceFrame};

use crate::comparison::{CompareCell, ComparisonArray2d};
use crate::error::Result;
use crate::matrix::TMatrix;
use crate::stats::ExecStats;

/// One join condition: compare `A` column `col_a` against `B` column
/// `col_b` under `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpec {
    /// Column of the left relation.
    pub col_a: usize,
    /// Column of the right relation.
    pub col_b: usize,
    /// Comparison predicate (equality for an equi-join).
    pub op: CompareOp,
}

impl JoinSpec {
    /// An equality condition (`A.col_a = B.col_b`).
    pub fn eq(col_a: usize, col_b: usize) -> Self {
        JoinSpec {
            col_a,
            col_b,
            op: CompareOp::Eq,
        }
    }

    /// A theta condition.
    pub fn theta(col_a: usize, col_b: usize, op: CompareOp) -> Self {
        JoinSpec { col_a, col_b, op }
    }
}

/// Outcome of a join-array run.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The match matrix `T` (`t_{ij}` TRUE iff `a_i` joins `b_j`).
    pub t: TMatrix,
    /// Run statistics.
    pub stats: ExecStats,
    /// Wire snapshots, if tracing was requested.
    pub frames: Vec<TraceFrame>,
}

/// The join array: a comparison array whose columns carry only the join
/// columns of the two relations, with per-column comparators, and *no*
/// accumulation stage ("here we are interested in the t_{ij} individually,
/// and do not perform further accumulation operations on them", §6.2).
#[derive(Debug, Clone)]
pub struct JoinArray {
    specs: Vec<JoinSpec>,
}

impl JoinArray {
    /// A join array for the given conditions (one processor column each).
    ///
    /// # Panics
    /// Panics on an empty condition list.
    pub fn new(specs: Vec<JoinSpec>) -> Self {
        assert!(!specs.is_empty(), "join needs at least one column pair");
        JoinArray { specs }
    }

    /// A single-column equi-join array (the Figure 6-1 case).
    pub fn equi(col_a: usize, col_b: usize) -> Self {
        JoinArray::new(vec![JoinSpec::eq(col_a, col_b)])
    }

    /// The join conditions.
    pub fn specs(&self) -> &[JoinSpec] {
        &self.specs
    }

    /// Produce the match matrix for full rows of `a` and `b`; only the join
    /// columns are streamed through the array (the rest of each tuple stays
    /// in memory until result assembly).
    pub fn t_matrix(&self, a: &[Vec<Elem>], b: &[Vec<Elem>]) -> Result<JoinOutcome> {
        self.run(a, b, false)
    }

    /// As [`Self::t_matrix`], optionally tracing.
    pub fn run(&self, a: &[Vec<Elem>], b: &[Vec<Elem>], trace: bool) -> Result<JoinOutcome> {
        // Extract the join-column projections that actually enter the array.
        let a_keys: Vec<Vec<Elem>> = a
            .iter()
            .map(|row| self.specs.iter().map(|s| row[s.col_a]).collect())
            .collect();
        let b_keys: Vec<Vec<Elem>> = b
            .iter()
            .map(|row| self.specs.iter().map(|s| row[s.col_b]).collect())
            .collect();
        let ops: Vec<CompareOp> = self.specs.iter().map(|s| s.op).collect();
        let out = ComparisonArray2d::with_ops(ops).run(&a_keys, &b_keys, |_, _| true, trace)?;
        Ok(JoinOutcome {
            t: out.t,
            stats: out.stats,
            frames: out.frames,
        })
    }

    /// Assemble the joined rows from a match matrix — the host-side step of
    /// §6.2. For a pure equi-join, `B`'s join columns are dropped
    /// ("removing the redundant column"); for joins involving any non-
    /// equality comparison all columns of both relations are kept.
    pub fn assemble(&self, a: &[Vec<Elem>], b: &[Vec<Elem>], t: &TMatrix) -> Vec<Vec<Elem>> {
        let pure_equi = self.specs.iter().all(|s| s.op == CompareOp::Eq);
        let drop_b: Vec<bool> = if pure_equi {
            (0..b.first().map(|r| r.len()).unwrap_or(0))
                .map(|k| self.specs.iter().any(|s| s.col_b == k))
                .collect()
        } else {
            vec![false; b.first().map(|r| r.len()).unwrap_or(0)]
        };
        let mut out = Vec::with_capacity(t.count_true());
        for (i, j) in t.true_pairs() {
            let mut row = a[i].clone();
            row.extend(
                b[j].iter()
                    .enumerate()
                    .filter(|(k, _)| !drop_b[*k])
                    .map(|(_, &e)| e),
            );
            out.push(row);
        }
        out
    }
}

/// A comparison processor whose comparator is *programmed at run time* by
/// an opcode word swept through the row ahead of the data — the second
/// §6.3.2 option ("the particular operation to be performed might be
/// encoded in a few bits, and passed along with the a_ij ... This
/// illustrates that some degree of programability can often be provided to
/// a processor array at the expense of additional logic").
///
/// Programming protocol: `m` opcode words enter each row from the west
/// before that row's first data; an unprogrammed cell latches (consumes)
/// the first opcode it sees, a programmed cell forwards opcodes east, so
/// the c-th opcode programs the c-th cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgrammableCompareCell {
    op: Option<CompareOp>,
}

impl systolic_fabric::Cell for ProgrammableCompareCell {
    fn pulse(&mut self, io: &mut systolic_fabric::CellIo) {
        use systolic_fabric::Word;
        if let Word::Op(op) = io.t_in {
            io.pass_through();
            if self.op.is_none() {
                self.op = Some(op); // latch and consume
            } else {
                io.t_out = Word::Op(op); // forward to the next cell
            }
            return;
        }
        let mut inner = CompareCell::new(self.op.unwrap_or_default());
        systolic_fabric::Cell::pulse(&mut inner, io);
    }

    fn reset(&mut self) {
        self.op = None;
    }
}

/// A join array whose per-column comparators are loaded at run time instead
/// of being wired in — the same physical array executes an equi-join one
/// transaction and a greater-than join the next.
#[derive(Debug, Clone)]
pub struct ProgrammableJoinArray {
    m: usize,
}

impl ProgrammableJoinArray {
    /// An array with `m` programmable processor columns.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "array needs at least one column");
        ProgrammableJoinArray { m }
    }

    /// Produce the match matrix for the key projections `a` and `b` under
    /// run-time-programmed comparators `ops` (one per column).
    pub fn t_matrix(
        &self,
        a: &[Vec<Elem>],
        b: &[Vec<Elem>],
        ops: &[CompareOp],
    ) -> Result<JoinOutcome> {
        use systolic_fabric::{Grid, ScheduleFeeder, Word};
        assert_eq!(ops.len(), self.m, "one opcode per processor column");
        let m = self.m;
        let sched = systolic_fabric::CompareSchedule::new(a.len(), b.len(), m);
        // Delay the whole data schedule by `m` pulses to make room for the
        // opcode sweep in front of each row's first meeting.
        let delay = m as u64;
        let mut grid: Grid<ProgrammableCompareCell> =
            Grid::new(sched.rows(), m, |_, _| ProgrammableCompareCell::default());
        let mut north = ScheduleFeeder::new();
        for (i, tup) in a.iter().enumerate() {
            for (c, &e) in tup.iter().enumerate() {
                north.push(sched.a_injection(i, c) + delay, c, Word::Elem(e));
            }
        }
        grid.set_north_feeder(north);
        let mut south = ScheduleFeeder::new();
        for (j, tup) in b.iter().enumerate() {
            for (c, &e) in tup.iter().enumerate() {
                south.push(sched.b_injection(j, c) + delay, c, Word::Elem(e));
            }
        }
        grid.set_south_feeder(south);
        let mut west = ScheduleFeeder::new();
        // Data seeds, delayed.
        for i in 0..a.len() {
            for j in 0..b.len() {
                let (lane, pulse) = sched.t_injection(i, j);
                west.push(pulse + delay, lane, Word::Bool(true));
            }
        }
        // The opcode sweep: for each row, m opcodes ending one pulse before
        // that row's first meeting. Cell c latches the c-th opcode at pulse
        // start + 2c, which precedes its first meeting at first + c because
        // start = first - m + delay' arithmetic keeps a one-pulse margin.
        for lane in 0..sched.rows() {
            let first = (0..a.len())
                .flat_map(|i| (0..b.len()).map(move |j| (i, j)))
                .filter(|&(i, j)| sched.meeting_row(i, j) == lane)
                .map(|(i, j)| sched.meeting_pulse(i, j, 0))
                .min();
            if let Some(first) = first {
                let start = first + delay - m as u64;
                for (c, &op) in ops.iter().enumerate() {
                    west.push(start + c as u64, lane, Word::Op(op));
                }
            }
        }
        grid.set_west_feeder(west);
        grid.run_until_quiescent(sched.pulse_bound() + delay + 4)?;

        let mut t = TMatrix::new(a.len(), b.len());
        let mut seen = 0usize;
        for em in grid.east_emissions().emissions() {
            let (i, j) = sched
                .pair_at_exit(em.lane, em.pulse - delay)
                .ok_or_else(|| crate::error::CoreError::ScheduleViolation {
                    detail: format!(
                        "unexpected emission {:?} at row {}, pulse {}",
                        em.word, em.lane, em.pulse
                    ),
                })?;
            let v =
                em.word
                    .as_bool()
                    .ok_or_else(|| crate::error::CoreError::ScheduleViolation {
                        detail: format!("non-boolean result {:?}", em.word),
                    })?;
            t.set(i, j, v);
            seen += 1;
        }
        if seen != a.len() * b.len() {
            return Err(crate::error::CoreError::ScheduleViolation {
                detail: format!("expected {} results, saw {seen}", a.len() * b.len()),
            });
        }
        let stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
        Ok(JoinOutcome {
            t,
            stats,
            frames: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[&[Elem]]) -> Vec<Vec<Elem>> {
        vals.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn single_column_equi_join_matches_figure_6_1_semantics() {
        // Column 2 of A against column 0 of B (the figure joins A's column
        // 3 with B's column 1, 1-based).
        let a = rows(&[&[1, 1, 7], &[2, 2, 8], &[3, 3, 7]]);
        let b = rows(&[&[7, 100], &[9, 200]]);
        let arr = JoinArray::equi(2, 0);
        let out = arr.t_matrix(&a, &b).unwrap();
        let expect = TMatrix::from_fn(3, 2, |i, j| a[i][2] == b[j][0]);
        assert_eq!(out.t, expect);
        assert_eq!(out.t.count_true(), 2);
        // One processor column suffices; the array is linear.
        assert_eq!(out.stats.cells, 3 + 2 - 1);
    }

    #[test]
    fn assembly_drops_the_redundant_column_for_equi_joins() {
        let a = rows(&[&[10, 7]]);
        let b = rows(&[&[7, 99]]);
        let arr = JoinArray::equi(1, 0);
        let out = arr.t_matrix(&a, &b).unwrap();
        let joined = arr.assemble(&a, &b, &out.t);
        assert_eq!(joined, vec![vec![10, 7, 99]]);
    }

    #[test]
    fn multi_column_join_uses_one_processor_column_per_pair() {
        let a = rows(&[&[1, 2, 50], &[1, 3, 60]]);
        let b = rows(&[&[1, 2, 70], &[1, 9, 80]]);
        let arr = JoinArray::new(vec![JoinSpec::eq(0, 0), JoinSpec::eq(1, 1)]);
        let out = arr.t_matrix(&a, &b).unwrap();
        let expect = TMatrix::from_fn(2, 2, |i, j| a[i][0] == b[j][0] && a[i][1] == b[j][1]);
        assert_eq!(out.t, expect);
        assert_eq!(out.stats.cells, (2 + 2 - 1) * 2, "two processor columns");
        let joined = arr.assemble(&a, &b, &out.t);
        assert_eq!(joined, vec![vec![1, 2, 50, 70]]);
    }

    #[test]
    fn greater_than_join() {
        // §6.3.2: "for greater-than-join, say, processors in the array would
        // simply perform that comparison".
        let a = rows(&[&[5], &[1], &[9]]);
        let b = rows(&[&[3], &[7]]);
        let arr = JoinArray::new(vec![JoinSpec::theta(0, 0, CompareOp::Gt)]);
        let out = arr.t_matrix(&a, &b).unwrap();
        let expect = TMatrix::from_fn(3, 2, |i, j| a[i][0] > b[j][0]);
        assert_eq!(out.t, expect);
        // Theta-join assembly keeps both compared columns.
        let joined = arr.assemble(&a, &b, &out.t);
        assert!(joined.contains(&vec![5, 3]));
        assert!(joined.contains(&vec![9, 7]));
        assert_eq!(joined.len(), 3);
    }

    #[test]
    fn every_theta_operator_matches_the_reference_predicate() {
        let a = rows(&[&[1], &[2], &[3]]);
        let b = rows(&[&[2]]);
        for op in CompareOp::ALL {
            let arr = JoinArray::new(vec![JoinSpec::theta(0, 0, op)]);
            let out = arr.t_matrix(&a, &b).unwrap();
            let expect = TMatrix::from_fn(3, 1, |i, j| op.eval(a[i][0], b[j][0]));
            assert_eq!(out.t, expect, "operator {op}");
        }
    }

    #[test]
    fn degenerate_all_match_join_reaches_the_product_bound() {
        // §6.2: "|C| might be as large as the product |A||B|".
        let a = rows(&[&[7, 1], &[7, 2]]);
        let b = rows(&[&[7, 10], &[7, 20], &[7, 30]]);
        let arr = JoinArray::equi(0, 0);
        let out = arr.t_matrix(&a, &b).unwrap();
        assert_eq!(out.t.count_true(), 6);
        assert_eq!(arr.assemble(&a, &b, &out.t).len(), 6);
    }

    #[test]
    fn agrees_with_nested_loop_join_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use systolic_baseline::{nested_loop, OpCounter};
        use systolic_relation::gen::{self, synth_schema};
        use systolic_relation::MultiRelation;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..8 {
            let (a, b, ka, kb) = gen::join_pair(&mut rng, 10, 12, 3, 2, 4, 0.0);
            let arr = JoinArray::equi(ka, kb);
            let out = arr.t_matrix(a.rows(), b.rows()).unwrap();
            let joined = arr.assemble(a.rows(), b.rows(), &out.t);
            let got = MultiRelation::new(synth_schema(4), joined).unwrap();
            let expect =
                nested_loop::equi_join(&a, &b, &[(ka, kb)], &mut OpCounter::new()).unwrap();
            assert!(got.set_eq(&expect));
            assert_eq!(got.len(), expect.len(), "multiplicities must match too");
        }
    }

    #[test]
    #[should_panic(expected = "at least one column pair")]
    fn empty_spec_rejected() {
        JoinArray::new(vec![]);
    }

    #[test]
    fn programmable_array_matches_preloaded_array_for_every_operator() {
        let a = rows(&[&[1], &[3], &[5]]);
        let b = rows(&[&[2], &[4]]);
        let prog = ProgrammableJoinArray::new(1);
        for op in CompareOp::ALL {
            let programmed = prog.t_matrix(&a, &b, &[op]).unwrap();
            let preloaded = JoinArray::new(vec![JoinSpec::theta(0, 0, op)])
                .t_matrix(&a, &b)
                .unwrap();
            assert_eq!(programmed.t, preloaded.t, "operator {op}");
        }
    }

    #[test]
    fn programmable_multi_column_array() {
        // Column 0 programmed with <, column 1 with equality, at run time.
        let a = rows(&[&[1, 7], &[5, 7], &[2, 8]]);
        let b = rows(&[&[3, 7], &[0, 8]]);
        let out = ProgrammableJoinArray::new(2)
            .t_matrix(&a, &b, &[CompareOp::Lt, CompareOp::Eq])
            .unwrap();
        let expect = TMatrix::from_fn(3, 2, |i, j| a[i][0] < b[j][0] && a[i][1] == b[j][1]);
        assert_eq!(out.t, expect);
    }

    #[test]
    fn same_physical_array_reprogrammed_between_transactions() {
        // §6.3.2's point: programmability means one array serves different
        // joins; two consecutive runs with different opcodes both succeed.
        let a = rows(&[&[10], &[20]]);
        let b = rows(&[&[15]]);
        let prog = ProgrammableJoinArray::new(1);
        let lt = prog.t_matrix(&a, &b, &[CompareOp::Lt]).unwrap();
        let gt = prog.t_matrix(&a, &b, &[CompareOp::Gt]).unwrap();
        assert!(lt.t.get(0, 0) && !lt.t.get(1, 0));
        assert!(!gt.t.get(0, 0) && gt.t.get(1, 0));
    }

    #[test]
    fn programmable_array_with_unbalanced_cardinalities() {
        let a = rows(&[&[1, 1]]);
        let b: Vec<Vec<Elem>> = (0..7).map(|j| vec![j, j]).collect();
        let out = ProgrammableJoinArray::new(2)
            .t_matrix(&a, &b, &[CompareOp::Eq, CompareOp::Eq])
            .unwrap();
        let expect = TMatrix::from_fn(1, 7, |_, j| b[j] == vec![1, 1]);
        assert_eq!(out.t, expect);
    }
}
