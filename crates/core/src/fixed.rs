//! The fixed-operand optimisation of §8.
//!
//! "In some of the schemes presented in this paper, it is the case that only
//! half of the processors in a systolic array are busy at any one time. This
//! inefficiency can be avoided in the following implementation: rather than
//! marching two relations against each other along the systolic array, we
//! let only one relation move while the other remains fixed."
//!
//! Relation `B` is pre-loaded one tuple per row (one element per cell);
//! relation `A` streams south with consecutive tuples only *one* pulse
//! apart. Compared with the marching design this needs `n_B` rows instead of
//! `n_A + n_B - 1`, runs in roughly half the pulses, and roughly doubles
//! utilisation — all measured by experiment E10.

use systolic_fabric::{Cell, CellIo, CompareOp, Elem, FixedSchedule, Grid, Word};

use crate::error::{CoreError, Result};
use crate::intersection::{AccumulateCell, MembershipOutcome, SetOpMode};
use crate::matrix::TMatrix;
use crate::stats::ExecStats;

/// A comparison processor with a pre-loaded ("resident") operand element.
#[derive(Debug, Clone, Copy)]
pub struct StoredCompareCell {
    /// The resident element of `B`.
    pub stored: Elem,
    /// The comparison applied.
    pub op: CompareOp,
}

impl Cell for StoredCompareCell {
    fn pulse(&mut self, io: &mut CellIo) {
        io.a_out = io.a_in; // A streams through southbound
        match io.a_in.as_elem() {
            Some(a) => {
                let cmp = self.op.eval(a, self.stored);
                io.t_out = match io.t_in {
                    Word::Bool(t) => Word::Bool(t && cmp),
                    _ => Word::Bool(cmp),
                };
            }
            None => io.t_out = io.t_in,
        }
    }
}

/// A cell of the fixed-operand membership array: stored comparators plus an
/// accumulation column.
#[derive(Debug, Clone, Copy)]
pub enum FixedCell {
    /// A comparator with a resident element.
    Stored(StoredCompareCell),
    /// An accumulation processor (§4.2).
    Accumulate(AccumulateCell),
}

impl Cell for FixedCell {
    fn pulse(&mut self, io: &mut CellIo) {
        match self {
            FixedCell::Stored(c) => c.pulse(io),
            FixedCell::Accumulate(c) => c.pulse(io),
        }
    }
}

/// The fixed-operand intersection/difference array: `B` resident, `A`
/// streaming, OR-accumulation on the right.
#[derive(Debug, Clone)]
pub struct FixedOperandArray {
    b: Vec<Vec<Elem>>,
    m: usize,
}

impl FixedOperandArray {
    /// Pre-load relation `B` (its tuples become the array's rows).
    ///
    /// # Panics
    /// Panics if `b` is empty or its rows are not uniformly sized.
    pub fn preload(b: &[Vec<Elem>]) -> Self {
        assert!(!b.is_empty(), "fixed operand must be non-empty");
        let m = b[0].len();
        assert!(
            m > 0 && b.iter().all(|r| r.len() == m),
            "uniform tuple width required"
        );
        FixedOperandArray { b: b.to_vec(), m }
    }

    /// Tuple width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of resident tuples (array rows).
    pub fn rows(&self) -> usize {
        self.b.len()
    }

    /// Stream `A` through the array and report, per tuple of `A`, whether it
    /// matched any resident tuple (intersection) or none (difference).
    pub fn run(&self, a: &[Vec<Elem>], mode: SetOpMode) -> Result<MembershipOutcome> {
        self.run_masked(a, mode, |_, _| true)
    }

    /// As [`Self::run`], with a per-pair west-edge seed: `initial(i, j)` for
    /// streamed tuple `i` against resident row `j`. Pre-loading a relation
    /// against itself with the `i > j` mask gives the fixed-operand
    /// remove-duplicates array (§5 masking + §8 layout).
    pub fn run_masked(
        &self,
        a: &[Vec<Elem>],
        mode: SetOpMode,
        initial: impl FnMut(usize, usize) -> bool,
    ) -> Result<MembershipOutcome> {
        let sched = FixedSchedule::new(a.len(), self.b.len(), self.m);
        let b = &self.b;
        let m = self.m;
        let mut grid: Grid<FixedCell> = Grid::new(sched.rows(), m + 1, |r, c| {
            if c < m {
                FixedCell::Stored(StoredCompareCell {
                    stored: b[r][c],
                    op: CompareOp::Eq,
                })
            } else {
                FixedCell::Accumulate(AccumulateCell)
            }
        });
        let mut north = sched.a_feeder(a);
        for (pulse, lane, word) in sched.acc_feeder_entries() {
            north.push(pulse, lane, word);
        }
        grid.set_north_feeder(north);
        grid.set_west_feeder(sched.t_feeder(initial));
        grid.run_until_quiescent(sched.pulse_bound())?;

        let mut t = vec![None; a.len()];
        for em in grid.south_emissions().emissions() {
            if em.lane != sched.acc_col() {
                continue;
            }
            let i =
                sched
                    .tuple_at_acc_exit(em.pulse)
                    .ok_or_else(|| CoreError::ScheduleViolation {
                        detail: format!("unexpected accumulator emission at pulse {}", em.pulse),
                    })?;
            t[i] = em.word.as_bool();
        }
        let t: Vec<bool> = t
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("no accumulated t for streamed tuple {i}"),
                })
            })
            .collect::<Result<_>>()?;
        let keep = match mode {
            SetOpMode::Intersect => t.clone(),
            SetOpMode::Difference => t.iter().map(|&x| !x).collect(),
        };
        let stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
        Ok(MembershipOutcome {
            keep,
            t,
            stats,
            frames: Vec::new(),
        })
    }

    /// Produce the full match matrix `T` (fixed-operand variant of the
    /// comparison array / join array): no accumulation column, results
    /// collected individually from the east edge.
    pub fn t_matrix(&self, a: &[Vec<Elem>], ops: &[CompareOp]) -> Result<(TMatrix, ExecStats)> {
        assert_eq!(ops.len(), self.m, "one comparator per column");
        let sched = FixedSchedule::new(a.len(), self.b.len(), self.m);
        let b = &self.b;
        let mut grid: Grid<StoredCompareCell> =
            Grid::new(sched.rows(), self.m, |r, c| StoredCompareCell {
                stored: b[r][c],
                op: ops[c],
            });
        grid.set_north_feeder(sched.a_feeder(a));
        grid.set_west_feeder(sched.t_feeder(|_, _| true));
        grid.run_until_quiescent(sched.pulse_bound())?;
        let mut t = TMatrix::new(a.len(), self.b.len());
        let mut seen = 0usize;
        for em in grid.east_emissions().emissions() {
            let (i, j) = sched.pair_at_exit(em.lane, em.pulse).ok_or_else(|| {
                CoreError::ScheduleViolation {
                    detail: format!("unexpected emission at row {}, pulse {}", em.lane, em.pulse),
                }
            })?;
            let v = em
                .word
                .as_bool()
                .ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("non-boolean result {:?}", em.word),
                })?;
            t.set(i, j, v);
            seen += 1;
        }
        if seen != a.len() * self.b.len() {
            return Err(CoreError::ScheduleViolation {
                detail: format!("expected {} results, saw {seen}", a.len() * self.b.len()),
            });
        }
        Ok((t, ExecStats::from_grid(grid.stats(), grid.cell_count())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection::IntersectionArray;

    fn rows(vals: &[&[Elem]]) -> Vec<Vec<Elem>> {
        vals.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn fixed_intersection_agrees_with_the_marching_array() {
        let a = rows(&[&[1, 1], &[2, 2], &[3, 3], &[4, 4]]);
        let b = rows(&[&[2, 2], &[4, 4], &[9, 9]]);
        let marching = IntersectionArray::new(2)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        let fixed = FixedOperandArray::preload(&b)
            .run(&a, SetOpMode::Intersect)
            .unwrap();
        assert_eq!(marching.keep, fixed.keep);
        let marching_d = IntersectionArray::new(2)
            .run(&a, &b, SetOpMode::Difference)
            .unwrap();
        let fixed_d = FixedOperandArray::preload(&b)
            .run(&a, SetOpMode::Difference)
            .unwrap();
        assert_eq!(marching_d.keep, fixed_d.keep);
    }

    #[test]
    fn fixed_array_is_smaller_and_faster() {
        // §8's point: n_B rows instead of n_A + n_B - 1, and roughly half
        // the pulses because tuples stream one (not two) pulses apart.
        let n = 16usize;
        let a: Vec<Vec<Elem>> = (0..n as i64).map(|i| vec![i, i]).collect();
        let marching = IntersectionArray::new(2)
            .run(&a, &a, SetOpMode::Intersect)
            .unwrap();
        let fixed = FixedOperandArray::preload(&a)
            .run(&a, SetOpMode::Intersect)
            .unwrap();
        // n rows instead of 2n-1: cells shrink by a factor approaching 2.
        assert!(fixed.stats.cells * 2 <= marching.stats.cells + 2 * (2 + 1));
        assert!(
            fixed.stats.pulses * 2 <= marching.stats.pulses + 8,
            "fixed {} vs marching {}",
            fixed.stats.pulses,
            marching.stats.pulses
        );
    }

    #[test]
    fn fixed_array_roughly_doubles_utilisation() {
        let n = 24usize;
        let a: Vec<Vec<Elem>> = (0..n as i64).map(|i| vec![i, i]).collect();
        let marching = IntersectionArray::new(2)
            .run(&a, &a, SetOpMode::Intersect)
            .unwrap();
        let fixed = FixedOperandArray::preload(&a)
            .run(&a, SetOpMode::Intersect)
            .unwrap();
        // At n = 24 pipeline fill/drain still dilutes both figures; the
        // steady-state ratio approaches 2 as n grows (measured in E10).
        assert!(
            fixed.stats.utilisation() > 1.35 * marching.stats.utilisation(),
            "fixed {} vs marching {}",
            fixed.stats.utilisation(),
            marching.stats.utilisation()
        );
        assert!(
            marching.stats.utilisation() < 0.40,
            "marching stays below ~50%"
        );
        assert!(
            fixed.stats.utilisation() > 0.45,
            "fixed approaches full utilisation"
        );
    }

    #[test]
    fn fixed_t_matrix_agrees_with_direct_computation() {
        let a = rows(&[&[1, 5], &[2, 6], &[3, 5]]);
        let b = rows(&[&[1, 5], &[3, 9]]);
        let (t, _) = FixedOperandArray::preload(&b)
            .t_matrix(&a, &[CompareOp::Eq, CompareOp::Eq])
            .unwrap();
        let expect = TMatrix::from_fn(3, 2, |i, j| a[i] == b[j]);
        assert_eq!(t, expect);
    }

    #[test]
    fn fixed_t_matrix_supports_theta_comparators() {
        let a = rows(&[&[5], &[1]]);
        let b = rows(&[&[3]]);
        let (t, _) = FixedOperandArray::preload(&b)
            .t_matrix(&a, &[CompareOp::Gt])
            .unwrap();
        assert!(t.get(0, 0));
        assert!(!t.get(1, 0));
    }

    #[test]
    fn single_row_resident_relation() {
        let b = rows(&[&[7, 7]]);
        let a = rows(&[&[7, 7], &[8, 8]]);
        let out = FixedOperandArray::preload(&b)
            .run(&a, SetOpMode::Intersect)
            .unwrap();
        assert_eq!(out.keep, vec![true, false]);
    }

    #[test]
    fn fixed_dedup_via_triangle_mask() {
        let a = rows(&[&[4], &[5], &[4], &[4]]);
        let out = FixedOperandArray::preload(&a)
            .run_masked(&a, SetOpMode::Difference, |i, j| i > j)
            .unwrap();
        assert_eq!(out.keep, vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_preload_rejected() {
        FixedOperandArray::preload(&[]);
    }
}
