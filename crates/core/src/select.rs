//! Selection (restriction) on the array.
//!
//! The paper handles simple selections at the disk ("logic-per-track"
//! devices, §9) — but a selection is also exactly a one-sided comparison
//! array: every tuple is compared against a *constant* tuple of predicates
//! resident in a single row of processors (the degenerate `n_B = 1` case of
//! the fixed-operand layout of §8). This module provides that array, which
//! completes the relational algebra for hosts whose disks lack track logic.

use systolic_fabric::{CompareOp, Elem};

use crate::error::Result;
use crate::fixed::FixedOperandArray;
use crate::stats::ExecStats;

/// One selection predicate: `column <op> constant`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// The column tested.
    pub col: usize,
    /// The comparison.
    pub op: CompareOp,
    /// The constant compared against (already encoded, §2.3).
    pub value: Elem,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(col: usize, op: CompareOp, value: Elem) -> Self {
        Predicate { col, op, value }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Elem]) -> bool {
        self.op.eval(row[self.col], self.value)
    }
}

/// The selection array: one resident row of predicate constants, the
/// relation streaming through, one keep-bit per tuple (the conjunction of
/// all predicates).
///
/// ```
/// use systolic_core::{Predicate, SelectionArray};
/// use systolic_fabric::CompareOp;
/// let arr = SelectionArray::new(vec![Predicate::new(1, CompareOp::Ge, 20)]);
/// let (keep, _) = arr.run(&[vec![1, 10], vec![2, 25]]).unwrap();
/// assert_eq!(keep, vec![false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct SelectionArray {
    predicates: Vec<Predicate>,
}

impl SelectionArray {
    /// Build for a conjunction of predicates.
    ///
    /// # Panics
    /// Panics on an empty predicate list.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        assert!(
            !predicates.is_empty(),
            "selection needs at least one predicate"
        );
        SelectionArray { predicates }
    }

    /// Stream `rows` through the array; `keep[i]` is TRUE iff row `i`
    /// satisfies every predicate.
    pub fn run(&self, rows: &[Vec<Elem>]) -> Result<(Vec<bool>, ExecStats)> {
        if rows.is_empty() {
            return Ok((Vec::new(), ExecStats::default()));
        }
        // Project the tested columns; the resident "relation" is the single
        // row of constants, one per predicate column.
        let keys: Vec<Vec<Elem>> = rows
            .iter()
            .map(|row| self.predicates.iter().map(|p| row[p.col]).collect())
            .collect();
        let constants: Vec<Vec<Elem>> = vec![self.predicates.iter().map(|p| p.value).collect()];
        let ops: Vec<CompareOp> = self.predicates.iter().map(|p| p.op).collect();
        let (t, stats) = FixedOperandArray::preload(&constants).t_matrix(&keys, &ops)?;
        let keep = (0..rows.len()).map(|i| t.get(i, 0)).collect();
        Ok((keep, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[&[Elem]]) -> Vec<Vec<Elem>> {
        vals.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn single_predicate_selection() {
        let rows = rows(&[&[1, 10], &[2, 20], &[3, 30]]);
        let arr = SelectionArray::new(vec![Predicate::new(1, CompareOp::Ge, 20)]);
        let (keep, stats) = arr.run(&rows).unwrap();
        assert_eq!(keep, vec![false, true, true]);
        assert_eq!(stats.cells, 1, "one predicate, one resident processor");
    }

    #[test]
    fn conjunction_of_predicates() {
        let rows = rows(&[&[1, 10], &[2, 20], &[3, 30], &[4, 40]]);
        let arr = SelectionArray::new(vec![
            Predicate::new(0, CompareOp::Gt, 1),
            Predicate::new(1, CompareOp::Lt, 40),
        ]);
        let (keep, _) = arr.run(&rows).unwrap();
        assert_eq!(keep, vec![false, true, true, false]);
    }

    #[test]
    fn agrees_with_direct_evaluation_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(606);
        for _ in 0..10 {
            let n = rng.gen_range(1..20);
            let data: Vec<Vec<Elem>> = (0..n)
                .map(|_| (0..3).map(|_| rng.gen_range(0..8)).collect())
                .collect();
            let preds = vec![
                Predicate::new(
                    rng.gen_range(0..3),
                    CompareOp::ALL[rng.gen_range(0..6)],
                    rng.gen_range(0..8),
                ),
                Predicate::new(
                    rng.gen_range(0..3),
                    CompareOp::ALL[rng.gen_range(0..6)],
                    rng.gen_range(0..8),
                ),
            ];
            let arr = SelectionArray::new(preds.clone());
            let (keep, _) = arr.run(&data).unwrap();
            for (i, row) in data.iter().enumerate() {
                assert_eq!(keep[i], preds.iter().all(|p| p.eval(row)), "row {i}");
            }
        }
    }

    #[test]
    fn empty_input_is_trivial() {
        let arr = SelectionArray::new(vec![Predicate::new(0, CompareOp::Eq, 5)]);
        let (keep, stats) = arr.run(&[]).unwrap();
        assert!(keep.is_empty());
        assert_eq!(stats, ExecStats::default());
    }

    #[test]
    fn latency_is_linear_with_constant_hardware() {
        let data: Vec<Vec<Elem>> = (0..128).map(|i| vec![i]).collect();
        let arr = SelectionArray::new(vec![Predicate::new(0, CompareOp::Lt, 64)]);
        let (keep, stats) = arr.run(&data).unwrap();
        assert_eq!(keep.iter().filter(|&&k| k).count(), 64);
        assert_eq!(stats.cells, 1);
        assert!(stats.pulses <= 132);
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn empty_predicates_rejected() {
        SelectionArray::new(vec![]);
    }
}
