//! The kernel execution backend: closed-form results + analytic pulse
//! accounting, bit-identical to the pulse-accurate simulator.
//!
//! The simulator in this crate steps every `fabric::Grid` cell on every
//! pulse, so an operator costs `O(pulses x cells)` host time even though
//! the *observable* outcome — the boolean matrix `T` (§3.3), the membership
//! bits (§4), the quotient flags (§7), and the [`ExecStats`] — is a pure
//! function of the inputs and the schedule. This module computes those
//! observables directly:
//!
//! * **Results** come from tight host loops over the relations (one
//!   short-circuit comparison chain per tuple pair; hash-based membership
//!   and first-occurrence maps where the arrays compute set semantics).
//! * **Statistics** come from the closed-form injection-pulse arithmetic of
//!   [`systolic_fabric::CompareSchedule`] / `FixedSchedule`: every word a
//!   feeder would inject occupies a known set of cell-pulses, and the
//!   paper's schedules make coincidences (two words meeting in a cell)
//!   exactly enumerable. Each function documents the word-by-word
//!   accounting it replaces.
//!
//! The invariant — enforced by the differential tests here, in `ops`, and
//! in `tests/backend_differential.rs` — is **bit-identity**: for every
//! operator, every [`crate::ops::Execution`] strategy, every tile shape and
//! thread count, the kernel backend produces the same `TMatrix`, the same
//! keep/quotient bits, and the same `ExecStats` (pulses, cells, busy/total
//! cell-pulses, array runs) as running the simulated hardware.
//!
//! One observable intentionally differs: the fabric's *telemetry counters*
//! (`sdb_fabric_*`) do not advance under the kernel backend, because no
//! grid is ever stepped. Everything derived from `ExecStats` — timelines,
//! machine `RunStats`, server frames — is identical.

use std::collections::{HashMap, HashSet};

use systolic_fabric::{CompareOp, Elem};

use crate::stats::ExecStats;
use crate::tiling::ArrayLimits;

/// Environment variable selecting the default backend (`sim`, `kernel`, or
/// `columnar`) when a configuration does not set one explicitly — the CI
/// toggle that runs the whole test suite once per backend.
pub const BACKEND_ENV: &str = "SYSTOLIC_BACKEND";

/// How to execute an operator: on the pulse-accurate simulated fabric, or
/// with the closed-form kernels in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Step the simulated grid pulse by pulse (the reference semantics).
    #[default]
    Sim,
    /// Closed-form results + analytic stats, bit-identical to [`Self::Sim`].
    Kernel,
    /// Closed-form results computed by bit-sliced word-plane scans
    /// ([`crate::columnar`]); stats identical to [`Self::Kernel`] because
    /// both share the analytic formulas.
    Columnar,
}

impl Backend {
    /// Parse a backend name as used by `--backend` and [`BACKEND_ENV`].
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "sim" => Some(Backend::Sim),
            "kernel" => Some(Backend::Kernel),
            "columnar" => Some(Backend::Columnar),
            _ => None,
        }
    }

    /// The wire/CLI name of this backend.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Kernel => "kernel",
            Backend::Columnar => "columnar",
        }
    }

    /// Whether this backend computes results in closed form (no grid is
    /// stepped) — everything except the pulse-accurate simulator.
    pub fn is_closed_form(self) -> bool {
        self != Backend::Sim
    }

    /// The default backend: [`BACKEND_ENV`] if set to a valid name, else
    /// [`Backend::Sim`].
    pub fn from_env() -> Backend {
        std::env::var(BACKEND_ENV)
            .ok()
            .and_then(|v| Backend::parse(&v))
            .unwrap_or(Backend::Sim)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// Result kernels (what the arrays compute, as tight host loops)
// ---------------------------------------------------------------------------

/// The full comparison matrix `T`: `t_{ij} = initial(i, j) AND_c
/// ops[c](a[i][c], b[j][c])` — exactly the Figure 3-2 AND chain, with the
/// same short-circuit a FALSE west seed ("poisons the result") provides.
pub fn t_matrix(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    ops: &[CompareOp],
    mut initial: impl FnMut(usize, usize) -> bool,
) -> crate::matrix::TMatrix {
    let mut t = crate::matrix::TMatrix::new(a.len(), b.len());
    for (i, ra) in a.iter().enumerate() {
        for (j, rb) in b.iter().enumerate() {
            if initial(i, j) && ops.iter().enumerate().all(|(c, op)| op.eval(ra[c], rb[c])) {
                t.set(i, j, true);
            }
        }
    }
    t
}

/// The accumulated membership bits of §4: `t_i = OR_j (a_i == b_j)`.
/// Equality-only (as every membership path is), so a hash set of `B`'s
/// tuples replaces the `|A| x |B|` comparison sweep.
pub fn membership_bits(a: &[Vec<Elem>], b: &[Vec<Elem>]) -> Vec<bool> {
    let set: HashSet<&[Elem]> = b.iter().map(|r| r.as_slice()).collect();
    a.iter().map(|r| set.contains(r.as_slice())).collect()
}

/// The §5 triangle-masked self-membership: `dup[i] = OR_{j < i}
/// (a_i == a_j)` — TRUE iff an earlier equal tuple exists.
pub fn duplicate_bits(rows: &[Vec<Elem>]) -> Vec<bool> {
    let mut first: HashMap<&[Elem], usize> = HashMap::new();
    rows.iter()
        .enumerate()
        .map(|(i, r)| *first.entry(r.as_slice()).or_insert(i) < i)
        .collect()
}

/// The §7 quotient flags: `flags[r]` is TRUE iff every divisor element is
/// paired (through some dividend pair) with `keys[r]`. `hits` — the number
/// of pairs whose key matches a pre-loaded row, which the stats need — is
/// returned alongside. Keys must be distinct (as the arrays require).
pub fn quotient_flags(
    pairs: &[(Elem, Elem)],
    keys: &[Elem],
    divisor: &[Elem],
) -> (Vec<bool>, usize) {
    let index: HashMap<Elem, usize> = keys.iter().enumerate().map(|(r, &k)| (k, r)).collect();
    let mut matched: Vec<HashSet<Elem>> = vec![HashSet::new(); keys.len()];
    let mut hits = 0usize;
    for &(x, y) in pairs {
        if let Some(&r) = index.get(&x) {
            hits += 1;
            matched[r].insert(y);
        }
    }
    let flags = matched
        .iter()
        .map(|set| divisor.iter().all(|y| set.contains(y)))
        .collect();
    (flags, hits)
}

/// Multi-column-key variant of [`quotient_flags`]: rows are
/// `(x_1..x_K, y)`, keys are composite.
pub fn quotient_flags_multi(
    rows: &[Vec<Elem>],
    keys: &[Vec<Elem>],
    kw: usize,
    divisor: &[Elem],
) -> (Vec<bool>, usize) {
    let index: HashMap<&[Elem], usize> = keys
        .iter()
        .enumerate()
        .map(|(r, k)| (k.as_slice(), r))
        .collect();
    let mut matched: Vec<HashSet<Elem>> = vec![HashSet::new(); keys.len()];
    let mut hits = 0usize;
    for row in rows {
        if let Some(&r) = index.get(&row[..kw]) {
            hits += 1;
            matched[r].insert(row[kw]);
        }
    }
    let flags = matched
        .iter()
        .map(|set| divisor.iter().all(|y| set.contains(y)))
        .collect();
    (flags, hits)
}

// ---------------------------------------------------------------------------
// Analytic statistics (what the grid would have counted)
// ---------------------------------------------------------------------------
//
// The grid counts, per pulse: `busy_cell_pulses += cells with any input`,
// `total_cell_pulses += rows * cols`, and `pulses` is the first pulse at
// which all feeders are exhausted and all wire planes empty. A word
// injected at pulse `p` into an `R`-row traversal occupies one cell per
// pulse for `R` pulses (p .. p+R-1); a `t` word crossing `m` comparison
// columns occupies `m` cell-pulses. "Busy" counts a cell-pulse ONCE no
// matter how many words meet there, so coincidences must be subtracted —
// and the §3.2 schedule makes them exact: `a[i][c]` and `b[j][c]` meet in
// exactly one cell-pulse per (i, j, c), and every `t` word rides the
// meeting wavefront (it is always in a cell that already has its `a` word),
// contributing zero busy of its own.

/// The compare-schedule phases: `phase_b - phase_a = n_a - n_b`, both >= 0.
fn phases(n_a: usize, n_b: usize) -> (u64, u64) {
    (
        n_b.saturating_sub(n_a) as u64,
        n_a.saturating_sub(n_b) as u64,
    )
}

/// One marching [`crate::comparison::ComparisonArray2d`] run over
/// `n_a x n_b` tuples of width `m` (also the §6 join array):
/// `rows = n_a + n_b - 1` rows of `m` comparison cells.
///
/// * pulses: the last data element is injected at
///   `max(2(n_a-1) + phase_a, 2(n_b-1) + phase_b) + m - 1` and is consumed
///   `rows - 1` pulses later; quiescence is detected one pulse after that.
/// * busy: `(n_a + n_b) * m` data words occupy `rows` cell-pulses each;
///   each of the `n_a * n_b * m` element meetings coincides two of them.
pub(crate) fn compare_run_stats(n_a: usize, n_b: usize, m: usize) -> ExecStats {
    debug_assert!(n_a > 0 && n_b > 0 && m > 0);
    let rows = n_a + n_b - 1;
    let cells = rows * m;
    let (phase_a, phase_b) = phases(n_a, n_b);
    let last_inject =
        (2 * (n_a - 1) as u64 + phase_a).max(2 * (n_b - 1) as u64 + phase_b) + (m - 1) as u64;
    let pulses = last_inject + rows as u64;
    let busy = (m * (rows * (n_a + n_b) - n_a * n_b)) as u64;
    ExecStats {
        pulses,
        cells,
        busy_cell_pulses: busy,
        total_cell_pulses: pulses * cells as u64,
        array_runs: 1,
    }
}

/// One marching [`crate::intersection::IntersectionArray`] run (also the
/// §5 remove-duplicates array): the comparison array plus an accumulation
/// column, `rows x (m + 1)` cells.
///
/// On top of [`compare_run_stats`]: the `n_a` accumulator words each
/// occupy `rows` cell-pulses in the extra column (every `t` word entering
/// the accumulation column coincides with its tuple's accumulator —
/// `acc_injection(i) + meeting_row(i, j) = t_exit_pulse(i, j) + 1`), and
/// the last injection is now the accumulator of tuple `n_a - 1` (one pulse
/// after that tuple's last data element).
pub(crate) fn marching_membership_stats(n_a: usize, n_b: usize, m: usize) -> ExecStats {
    debug_assert!(n_a > 0 && n_b > 0 && m > 0);
    let rows = n_a + n_b - 1;
    let cells = rows * (m + 1);
    let (phase_a, phase_b) = phases(n_a, n_b);
    let last_inject = (2 * (n_a - 1) as u64 + phase_a + m as u64)
        .max(2 * (n_b - 1) as u64 + phase_b + (m - 1) as u64);
    let pulses = last_inject + rows as u64;
    let busy = (m * (rows * (n_a + n_b) - n_a * n_b) + n_a * rows) as u64;
    ExecStats {
        pulses,
        cells,
        busy_cell_pulses: busy,
        total_cell_pulses: pulses * cells as u64,
        array_runs: 1,
    }
}

/// One fixed-operand `t_matrix` run (§8, [`crate::fixed::FixedOperandArray`]
/// with `n_b` resident tuples): `n_b x m` cells, `A` streaming one pulse
/// per tuple.
///
/// * pulses: the last element `a[n_a-1][m-1]` is injected at
///   `n_a + m - 2` and consumed at row `n_b - 1`, `n_b - 1` pulses later.
/// * busy: each of the `n_a * m` streamed elements occupies `n_b`
///   cell-pulses; the resident operand is in cell state, not on wires, and
///   every `t` word coincides with its streamed element.
pub(crate) fn fixed_t_matrix_stats(n_a: usize, n_b: usize, m: usize) -> ExecStats {
    debug_assert!(n_a > 0 && n_b > 0 && m > 0);
    let cells = n_b * m;
    let pulses = (n_a + n_b + m - 2) as u64;
    let busy = (n_a * n_b * m) as u64;
    ExecStats {
        pulses,
        cells,
        busy_cell_pulses: busy,
        total_cell_pulses: pulses * cells as u64,
        array_runs: 1,
    }
}

/// One fixed-operand membership run (`run`/`run_masked`): as
/// [`fixed_t_matrix_stats`] plus the accumulation column — `n_a`
/// accumulator words occupying `n_b` cell-pulses each, last injection one
/// pulse later than the plain `t_matrix` layout.
pub(crate) fn fixed_membership_stats(n_a: usize, n_b: usize, m: usize) -> ExecStats {
    debug_assert!(n_a > 0 && n_b > 0 && m > 0);
    let cells = n_b * (m + 1);
    let pulses = (n_a + n_b + m - 1) as u64;
    let busy = (n_a * n_b * (m + 1)) as u64;
    ExecStats {
        pulses,
        cells,
        busy_cell_pulses: busy,
        total_cell_pulses: pulses * cells as u64,
        array_runs: 1,
    }
}

/// The distinct chunk sizes (and their multiplicities) a length-`n` axis
/// decomposes into under a per-tile bound of `max`: `n / max` full chunks
/// and at most one remainder.
fn chunks(n: usize, max: usize) -> Vec<(usize, u64)> {
    let mut v = Vec::with_capacity(2);
    if n / max > 0 {
        v.push((max, (n / max) as u64));
    }
    if !n.is_multiple_of(max) {
        v.push((n % max, 1));
    }
    v
}

/// A sequential tiled run ([`crate::tiling::t_matrix_tiled`], also the
/// parallel executor's accounting): one [`compare_run_stats`] grid run per
/// (A-chunk, B-chunk, column-group) tile, merged sequentially. Tile sizes
/// take at most two distinct values per axis, so the sum collapses to at
/// most eight weighted terms.
pub(crate) fn tiled_stats(n_a: usize, n_b: usize, m: usize, limits: ArrayLimits) -> ExecStats {
    let mut out = ExecStats::default();
    for &(ta, ca) in &chunks(n_a, limits.max_a) {
        for &(tb, cb) in &chunks(n_b, limits.max_b) {
            for &(w, cw) in &chunks(m, limits.max_cols) {
                let tile = compare_run_stats(ta, tb, w);
                let count = ca * cb * cw;
                out.pulses += tile.pulses * count;
                out.busy_cell_pulses += tile.busy_cell_pulses * count;
                out.total_cell_pulses += tile.total_cell_pulses * count;
                out.cells = out.cells.max(tile.cells);
                out.array_runs += count;
            }
        }
    }
    out
}

/// A pipelined tiled run ([`crate::tiling::t_matrix_tiled_pipelined`]):
/// every tile's streams injected back-to-back into one running
/// `rows x m` grid.
///
/// This replays the exact injection arithmetic of the simulator's feeder
/// loop — per tile, the schedule base pulse of each `A` tuple
/// (`2i + phase_a + offset + delta`) and `B` tuple (`2j + phase_b +
/// offset`) — without materialising any word. From those bases:
///
/// * pulses = (last activity) + 1, where each data word's activity ends
///   `rows - 1` pulses after its (lane-`m-1`) injection and each `t` seed's
///   `m - 1` pulses after its meeting-pulse injection;
/// * busy = `m * (rows * words - D)`: every tuple occupies `rows`
///   cell-pulses per column; `D` counts the (a, b) base pairs that meet —
///   `a` at base `s_a` and `b` at base `s_b` share a cell-pulse iff
///   `|s_a - s_b| <= rows - 1` and `s_a - s_b = rows - 1 (mod 2)` (the
///   crossing row `rho = (s_b - s_a + rows - 1) / 2` must be integral and
///   in range) — including *cross-tile* crossings, which is exactly why
///   this cannot be a per-tile sum. `t` words still ride their own tile's
///   `A` wavefront and add nothing.
pub(crate) fn pipelined_stats(n_a: usize, n_b: usize, m: usize, limits: ArrayLimits) -> ExecStats {
    debug_assert!(n_a > 0 && n_b > 0 && m > 0);
    let tile_a = limits.max_a;
    let tile_b = limits.max_b;
    let rows = (tile_a.min(n_a) + tile_b.min(n_b)).saturating_sub(1).max(1);
    let mut offset = 0u64;
    let mut tiles = 0u64;
    let mut last_activity = 0u64;
    let mut base_a: Vec<u64> = Vec::new();
    let mut base_b: Vec<u64> = Vec::new();
    for a0 in (0..n_a).step_by(tile_a) {
        let ta = (a0 + tile_a).min(n_a) - a0;
        for b0 in (0..n_b).step_by(tile_b) {
            let tb = (b0 + tile_b).min(n_b) - b0;
            let (phase_a, phase_b) = phases(ta, tb);
            let delta = (rows - (ta + tb - 1)) as u64;
            let mut last_inject = 0u64;
            for i in 0..ta as u64 {
                let base = 2 * i + phase_a + offset + delta;
                base_a.push(base);
                last_inject = last_inject.max(base + (m - 1) as u64);
                last_activity = last_activity.max(base + (m - 1) as u64 + (rows - 1) as u64);
            }
            for j in 0..tb as u64 {
                let base = 2 * j + phase_b + offset;
                base_b.push(base);
                last_inject = last_inject.max(base + (m - 1) as u64);
                last_activity = last_activity.max(base + (m - 1) as u64 + (rows - 1) as u64);
            }
            // Last t seed: pair (ta-1, tb-1) injected at its meeting pulse.
            let t_last = (ta - 1 + tb - 1) as u64 + phase_a + (ta - 1) as u64 + offset + delta;
            last_activity = last_activity.max(t_last + (m - 1) as u64);
            tiles += 1;
            offset = last_inject + 2;
        }
    }
    let pulses = last_activity + 1;

    // D: meeting (a, b) base pairs, counted by parity-split binary search.
    let mut by_parity: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    for &s in &base_b {
        by_parity[(s % 2) as usize].push(s);
    }
    debug_assert!(by_parity.iter().all(|v| v.is_sorted()));
    let span = (rows - 1) as u64;
    let mut meetings = 0u64;
    for &s_a in &base_a {
        let lane = &by_parity[((s_a + span) % 2) as usize];
        let lo = lane.partition_point(|&s| s < s_a.saturating_sub(span));
        let hi = lane.partition_point(|&s| s <= s_a + span);
        meetings += (hi - lo) as u64;
    }
    let words = (base_a.len() + base_b.len()) as u64;
    let busy = m as u64 * (rows as u64 * words - meetings);
    let cells = rows * m;
    ExecStats {
        pulses,
        cells,
        busy_cell_pulses: busy,
        total_cell_pulses: pulses * cells as u64,
        array_runs: tiles,
    }
}

/// One restricted [`crate::division::DivisionArray`] run: `k` key rows of
/// `2 + nd` cells; `n` pairs streamed, `hits` of them matching a row.
///
/// Word accounting: `x` and `y` streams occupy `n * k` cell-pulses each
/// (every pair visits every row in its column); each matched pair's gated
/// `y` crosses the `nd` store cells; the drain token occupies `k`
/// cell-pulses northbound plus `k` at the gates; the per-row AND verdict
/// crosses `k * nd` store cells. Every key-match boolean reaches the gate
/// exactly with its pair's `y`, adding nothing. The last verdict is
/// consumed at pulse `n + k + nd`.
pub(crate) fn division_stats(n: usize, k: usize, nd: usize, hits: usize) -> ExecStats {
    debug_assert!(k > 0);
    let cells = k * (2 + nd);
    let pulses = (n + k + nd + 1) as u64;
    let busy = (2 * n * k + 2 * k + k * nd + hits * nd) as u64;
    ExecStats {
        pulses,
        cells,
        busy_cell_pulses: busy,
        total_cell_pulses: pulses * cells as u64,
        array_runs: 1,
    }
}

/// One [`crate::division::DivisionArrayMulti`] run (composite keys of
/// width `kw`): `k` rows of `kw + 1 + nd` cells. As [`division_stats`]
/// with the key stream `kw` columns wide and the drain crossing the `kw`
/// key columns before the gate; reduces exactly to the restricted formula
/// at `kw = 1`.
pub(crate) fn division_multi_stats(
    n: usize,
    k: usize,
    kw: usize,
    nd: usize,
    hits: usize,
) -> ExecStats {
    debug_assert!(k > 0 && kw > 0);
    let cells = k * (kw + 1 + nd);
    let pulses = (n + k + kw + nd) as u64;
    let busy = (n * k * (kw + 1) + hits * nd + k * (kw + 1) + k * nd) as u64;
    ExecStats {
        pulses,
        cells,
        busy_cell_pulses: busy,
        total_cell_pulses: pulses * cells as u64,
        array_runs: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::ComparisonArray2d;
    use crate::division::{DivisionArray, DivisionArrayMulti};
    use crate::fixed::FixedOperandArray;
    use crate::intersection::{IntersectionArray, SetOpMode};
    use crate::tiling;

    fn relation(n: usize, m: usize, seed: i64) -> Vec<Vec<Elem>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|c| ((i as i64 * 7 + seed) % 5) + c as i64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn backend_parsing_and_labels() {
        assert_eq!(Backend::parse("sim"), Some(Backend::Sim));
        assert_eq!(Backend::parse("kernel"), Some(Backend::Kernel));
        assert_eq!(Backend::parse("columnar"), Some(Backend::Columnar));
        assert_eq!(Backend::parse("fpga"), None);
        assert_eq!(Backend::Kernel.label(), "kernel");
        assert_eq!(Backend::Columnar.label(), "columnar");
        assert_eq!(Backend::default(), Backend::Sim);
        assert_eq!(format!("{}", Backend::Kernel), "kernel");
        assert!(!Backend::Sim.is_closed_form());
        assert!(Backend::Kernel.is_closed_form());
        assert!(Backend::Columnar.is_closed_form());
    }

    #[test]
    fn t_matrix_matches_the_simulated_comparison_array() {
        let ops = [
            vec![CompareOp::Eq, CompareOp::Eq],
            vec![CompareOp::Lt, CompareOp::Eq],
            vec![CompareOp::Ge, CompareOp::Ne],
        ];
        for ops in &ops {
            for (n_a, n_b) in [(1, 1), (3, 2), (4, 7), (6, 6)] {
                let a = relation(n_a, 2, 0);
                let b = relation(n_b, 2, 3);
                let sim = ComparisonArray2d::with_ops(ops.clone())
                    .t_matrix(&a, &b, |i, j| (i + j) % 3 != 0)
                    .unwrap();
                let fast = t_matrix(&a, &b, ops, |i, j| (i + j) % 3 != 0);
                assert_eq!(fast, sim.t, "{ops:?} {n_a}x{n_b}");
            }
        }
    }

    #[test]
    fn compare_run_stats_match_the_simulator_exactly() {
        for n_a in 1..=5 {
            for n_b in 1..=5 {
                for m in 1..=3 {
                    let a = relation(n_a, m, 0);
                    let b = relation(n_b, m, 2);
                    let sim = ComparisonArray2d::equality(m)
                        .t_matrix(&a, &b, |_, _| true)
                        .unwrap();
                    assert_eq!(compare_run_stats(n_a, n_b, m), sim.stats, "{n_a}x{n_b}x{m}");
                }
            }
        }
    }

    #[test]
    fn marching_membership_stats_match_the_simulator_exactly() {
        for n_a in 1..=5 {
            for n_b in 1..=5 {
                for m in 1..=3 {
                    let a = relation(n_a, m, 0);
                    let b = relation(n_b, m, 2);
                    let sim = IntersectionArray::new(m)
                        .run_masked(&a, &b, SetOpMode::Intersect, |i, j| i > j, false)
                        .unwrap();
                    assert_eq!(
                        marching_membership_stats(n_a, n_b, m),
                        sim.stats,
                        "{n_a}x{n_b}x{m}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_stats_match_the_simulator_exactly() {
        for n_a in 1..=5 {
            for n_b in 1..=4 {
                for m in 1..=3 {
                    let a = relation(n_a, m, 0);
                    let b = relation(n_b, m, 2);
                    let arr = FixedOperandArray::preload(&b);
                    let (_, sim_t) = arr.t_matrix(&a, &vec![CompareOp::Eq; m]).unwrap();
                    assert_eq!(fixed_t_matrix_stats(n_a, n_b, m), sim_t, "{n_a}x{n_b}x{m}");
                    let sim_m = arr.run(&a, SetOpMode::Intersect).unwrap();
                    assert_eq!(
                        fixed_membership_stats(n_a, n_b, m),
                        sim_m.stats,
                        "{n_a}x{n_b}x{m}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_stats_match_the_simulator_exactly() {
        let a = relation(13, 3, 0);
        let b = relation(9, 3, 3);
        let ops = vec![CompareOp::Eq; 3];
        for limits in [
            ArrayLimits::new(4, 4, 3),
            ArrayLimits::new(5, 3, 2),
            ArrayLimits::new(1, 1, 1),
            ArrayLimits::new(100, 100, 100),
        ] {
            let sim = tiling::t_matrix_tiled(&a, &b, &ops, limits, |_, _| true).unwrap();
            assert_eq!(tiled_stats(13, 9, 3, limits), sim.stats, "{limits:?}");
        }
    }

    #[test]
    fn pipelined_stats_match_the_simulator_exactly() {
        let ops2 = vec![CompareOp::Eq; 2];
        for (n_a, n_b) in [(13, 17), (1, 1), (5, 1), (2, 9)] {
            let a = relation(n_a, 2, 0);
            let b = relation(n_b, 2, 3);
            for limits in [
                ArrayLimits::new(4, 4, 2),
                ArrayLimits::new(5, 3, 2),
                ArrayLimits::new(1, 1, 2),
                ArrayLimits::new(100, 100, 2),
            ] {
                let sim =
                    tiling::t_matrix_tiled_pipelined(&a, &b, &ops2, limits, |_, _| true).unwrap();
                assert_eq!(
                    pipelined_stats(n_a, n_b, 2, limits),
                    sim.stats,
                    "{n_a}x{n_b} {limits:?}"
                );
            }
        }
    }

    #[test]
    fn division_stats_match_the_simulator_exactly() {
        // Including keys that do not cover every pair (hits < n).
        let pairs: Vec<(Elem, Elem)> = (0..20).map(|p| (p % 6, p % 4)).collect();
        let divisor: Vec<Elem> = vec![0, 1, 2, 3];
        for keys in [vec![0, 1, 2, 3, 4, 5], vec![1, 3], vec![9]] {
            for nd in [0, 2, 4] {
                let sim = DivisionArray
                    .divide_with_keys(&pairs, &keys, &divisor[..nd], false)
                    .unwrap();
                let (flags, hits) = quotient_flags(&pairs, &keys, &divisor[..nd]);
                assert_eq!(flags, sim.quotient_flags, "keys {keys:?} nd {nd}");
                assert_eq!(
                    division_stats(pairs.len(), keys.len(), nd, hits),
                    sim.stats,
                    "keys {keys:?} nd {nd}"
                );
            }
        }
    }

    #[test]
    fn division_multi_stats_match_the_simulator_exactly() {
        for (n, kw, nd) in [(12, 2, 3), (5, 1, 2), (7, 3, 0), (4, 2, 1)] {
            let rows: Vec<Vec<Elem>> = (0..n)
                .map(|p| {
                    let mut r: Vec<Elem> = (0..kw).map(|c| ((p + c) % 3) as Elem).collect();
                    r.push((p % 4) as Elem);
                    r
                })
                .collect();
            let divisor: Vec<Elem> = (0..nd as Elem).collect();
            let sim = DivisionArrayMulti::new(kw).divide(&rows, &divisor).unwrap();
            let (flags, hits) = quotient_flags_multi(&rows, &sim.keys, kw, &divisor);
            assert_eq!(flags, sim.quotient_flags, "n {n} kw {kw} nd {nd}");
            assert_eq!(
                division_multi_stats(n, sim.keys.len(), kw, nd, hits),
                sim.stats,
                "n {n} kw {kw} nd {nd}"
            );
        }
    }

    #[test]
    fn membership_and_duplicate_bits_match_the_arrays() {
        let a = relation(11, 2, 0);
        let b = relation(7, 2, 3);
        let sim = IntersectionArray::new(2)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        assert_eq!(membership_bits(&a, &b), sim.t);
        let dupes = relation(9, 2, 1);
        let sim = IntersectionArray::new(2)
            .run_masked(&dupes, &dupes, SetOpMode::Intersect, |i, j| i > j, false)
            .unwrap();
        assert_eq!(duplicate_bits(&dupes), sim.t);
    }
}
