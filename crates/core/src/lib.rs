//! # systolic-core
//!
//! The paper's contribution: every systolic array design from Kung &
//! Lehman, *Systolic (VLSI) Arrays for Relational Database Operations*
//! (SIGMOD 1980), as cycle-accurate simulations on the `systolic-fabric`
//! substrate, plus relation-level operator front-ends.
//!
//! | Paper section | Module |
//! |---------------|--------|
//! | §3 tuple comparison (Figs 3-1..3-4) | [`comparison`] |
//! | §4 intersection / difference (Fig 4-1) | [`intersection`] |
//! | §5 remove-duplicates, union, projection | [`dedup`] |
//! | §6 join, multi-column join, theta-join (Fig 6-1) | [`join`] |
//! | §7 division (Figs 7-1, 7-2) | [`division`] |
//! | §8 fixed-operand optimisation | [`fixed`] |
//! | §8 word-to-bit-level transformation | [`bitlevel`] |
//! | §8 problem decomposition | [`tiling`] |
//! | host-parallel execution of independent tiles | [`executor`] |
//! | closed-form kernel backend (analytic stats) | [`kernel`] |
//! | §8 pattern-match chip (ref \[3\]) | [`patmatch`] |
//! | operator API over relations | [`ops`] |
//!
//! ## Quickstart
//!
//! ```
//! use systolic_core::ops::{self, Execution};
//! use systolic_relation::gen::synth_schema;
//! use systolic_relation::MultiRelation;
//!
//! let a = MultiRelation::new(synth_schema(2), vec![vec![1, 1], vec![2, 2]]).unwrap();
//! let b = MultiRelation::new(synth_schema(2), vec![vec![2, 2], vec![3, 3]]).unwrap();
//! let (c, stats) = ops::intersect(&a, &b, Execution::Marching).unwrap();
//! assert_eq!(c.rows(), &[vec![2, 2]]);
//! assert!(stats.pulses > 0); // the simulated hardware really pulsed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitlevel;
pub mod columnar;
pub mod comparison;
pub mod dedup;
pub mod division;
pub mod error;
pub mod executor;
pub mod fixed;
pub mod intersection;
pub mod join;
pub mod kernel;
pub mod matrix;
pub mod ops;
pub mod patmatch;
pub mod select;
pub mod stats;
pub mod tiling;

pub use columnar::fused_select;
pub use comparison::{ComparisonArray2d, LinearComparisonArray};
pub use dedup::RemoveDuplicatesArray;
pub use division::{DivisionArray, DivisionArrayMulti};
pub use error::{CoreError, Result};
pub use executor::HostStats;
pub use fixed::FixedOperandArray;
pub use intersection::{IntersectionArray, SetOpMode};
pub use join::{JoinArray, JoinSpec, ProgrammableJoinArray};
pub use kernel::Backend;
pub use matrix::TMatrix;
pub use ops::Execution;
pub use patmatch::PatternMatchChip;
pub use select::{Predicate, SelectionArray};
pub use stats::ExecStats;
pub use tiling::ArrayLimits;
