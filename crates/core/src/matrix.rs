//! The boolean result matrix `T` (§3.3).
//!
//! "Letter T represents a boolean matrix that contains results of logical
//! operations. The (i,j)-th entry of T ... denote\[s\] the result of a
//! comparison between the i-th tuple of a relation and the j-th tuple of
//! another."
//!
//! Storage is u64-bit-packed, row-major: row `i` occupies
//! `ceil(n_b / 64)` words, and entry `(i, j)` is bit `j % 64` of word
//! `j / 64`. This is 8x denser than one `bool` per entry and lets the
//! reductions the paper's arrays perform — the §4 accumulation OR, the §7
//! division row-AND, and the §8 column-group combination (`and_assign`) —
//! run a word at a time instead of a bit at a time. As an invariant the
//! unused high bits of each row's last word are kept zero, so whole-word
//! equality (`Eq`), population counts, and the row-AND mask test stay
//! exact.

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A dense `n_a x n_b` boolean matrix, bit-packed into u64 words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TMatrix {
    n_a: usize,
    n_b: usize,
    /// Words per row: `ceil(n_b / 64)`.
    words_per_row: usize,
    /// `n_a * words_per_row` words; bits beyond `n_b` in each row are zero.
    bits: Vec<u64>,
}

impl TMatrix {
    /// An all-false matrix.
    pub fn new(n_a: usize, n_b: usize) -> Self {
        let words_per_row = n_b.div_ceil(WORD_BITS);
        TMatrix {
            n_a,
            n_b,
            words_per_row,
            bits: vec![0; n_a * words_per_row],
        }
    }

    /// Build from a predicate.
    pub fn from_fn(n_a: usize, n_b: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = TMatrix::new(n_a, n_b);
        for i in 0..n_a {
            for j in 0..n_b {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Rows (`|A|`).
    pub fn n_a(&self) -> usize {
        self.n_a
    }

    /// Columns (`|B|`).
    pub fn n_b(&self) -> usize {
        self.n_b
    }

    /// The mask of valid bits in the last word of a row (all ones when
    /// `n_b` is a multiple of the word size).
    fn tail_mask(&self) -> u64 {
        match self.n_b % WORD_BITS {
            0 => u64::MAX,
            r => (1u64 << r) - 1,
        }
    }

    /// The packed words of row `i`.
    fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Mutable packed words of row `i`, for kernels that assemble whole
    /// rows at a time (the columnar word-plane scans). Callers must keep
    /// the structural invariant: bits at and beyond `n_b` in the last word
    /// stay zero — [`Self::tail_mask`] is the mask to apply.
    pub(crate) fn row_words_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Entry `t_{ij}`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n_a && j < self.n_b, "index out of bounds");
        let word = self.bits[i * self.words_per_row + j / WORD_BITS];
        (word >> (j % WORD_BITS)) & 1 != 0
    }

    /// Set entry `t_{ij}`.
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        assert!(i < self.n_a && j < self.n_b, "index out of bounds");
        let word = &mut self.bits[i * self.words_per_row + j / WORD_BITS];
        let mask = 1u64 << (j % WORD_BITS);
        if v {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// `t_i = OR_{1<=j<=n} t_{ij}` (equation 4.1) — what the accumulation
    /// array computes for the intersection. One word test per 64 columns.
    pub fn row_or(&self, i: usize) -> bool {
        self.row(i).iter().any(|&w| w != 0)
    }

    /// AND across row `i` — what the divisor array computes per row (§7):
    /// every full word must be all ones and the last word must equal the
    /// tail mask. Vacuously true when there are no columns.
    pub fn row_and(&self, i: usize) -> bool {
        let row = self.row(i);
        let Some((&last, full)) = row.split_last() else {
            return true; // n_b == 0
        };
        full.iter().all(|&w| w == u64::MAX) && last == self.tail_mask()
    }

    /// All row-ORs as a bit vector.
    pub fn row_ors(&self) -> Vec<bool> {
        (0..self.n_a).map(|i| self.row_or(i)).collect()
    }

    /// Number of TRUE entries (the join result size, §6.2).
    pub fn count_true(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The TRUE positions in row-major order.
    pub fn true_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.count_true());
        for i in 0..self.n_a {
            for (k, &word) in self.row(i).iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    out.push((i, k * WORD_BITS + bit));
                    w &= w - 1;
                }
            }
        }
        out
    }

    /// Pointwise AND with another matrix of the same shape — how column-
    /// group tiles are combined when a wide tuple is decomposed over a
    /// narrow array (§8). One AND per 64 entries.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn and_assign(&mut self, other: &TMatrix) {
        assert_eq!(self.n_a, other.n_a, "shape mismatch");
        assert_eq!(self.n_b, other.n_b, "shape mismatch");
        for (x, y) in self.bits.iter_mut().zip(&other.bits) {
            *x &= *y;
        }
    }

    /// Copy `block` into this matrix at offset `(i0, j0)` — assembling a
    /// full `T` from sub-problem pieces (§8: "each of these sub-problems
    /// would generate a piece of the matrix").
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn paste(&mut self, i0: usize, j0: usize, block: &TMatrix) {
        assert!(
            i0 + block.n_a <= self.n_a && j0 + block.n_b <= self.n_b,
            "block overflows"
        );
        for i in 0..block.n_a {
            for j in 0..block.n_b {
                self.set(i0 + i, j0 + j, block.get(i, j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_row_ops() {
        let mut m = TMatrix::new(2, 3);
        m.set(0, 1, true);
        assert!(m.get(0, 1));
        assert!(m.row_or(0));
        assert!(!m.row_or(1));
        assert!(!m.row_and(0));
        m.set(0, 0, true);
        m.set(0, 2, true);
        assert!(m.row_and(0));
        assert_eq!(m.count_true(), 3);
        assert_eq!(m.row_ors(), vec![true, false]);
    }

    #[test]
    fn from_fn_and_true_pairs() {
        let m = TMatrix::from_fn(3, 3, |i, j| i == j);
        assert_eq!(m.true_pairs(), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn and_assign_is_pointwise() {
        let mut a = TMatrix::from_fn(2, 2, |i, _| i == 0);
        let b = TMatrix::from_fn(2, 2, |_, j| j == 0);
        a.and_assign(&b);
        assert_eq!(a.true_pairs(), vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn and_assign_checks_shapes() {
        let mut a = TMatrix::new(2, 2);
        a.and_assign(&TMatrix::new(2, 3));
    }

    #[test]
    fn paste_assembles_blocks() {
        let mut full = TMatrix::new(4, 4);
        let block = TMatrix::from_fn(2, 2, |i, j| i == j);
        full.paste(2, 2, &block);
        assert!(full.get(2, 2));
        assert!(full.get(3, 3));
        assert!(!full.get(2, 3));
        assert_eq!(full.count_true(), 2);
    }

    #[test]
    #[should_panic(expected = "block overflows")]
    fn paste_checks_bounds() {
        let mut full = TMatrix::new(2, 2);
        full.paste(1, 1, &TMatrix::new(2, 2));
    }

    #[test]
    fn empty_rows_behave() {
        let m = TMatrix::new(1, 0);
        assert!(!m.row_or(0), "OR over empty row is false");
        assert!(m.row_and(0), "AND over empty row is vacuously true");
    }

    #[test]
    fn rows_wider_than_one_word() {
        // 130 columns = two full words plus a 2-bit tail.
        let m = TMatrix::from_fn(3, 130, |i, j| (i + j) % 7 == 0);
        for i in 0..3 {
            for j in 0..130 {
                assert_eq!(m.get(i, j), (i + j) % 7 == 0, "({i},{j})");
            }
        }
        let expect = (0..3)
            .flat_map(|i| (0..130).map(move |j| (i, j)))
            .filter(|&(i, j)| (i + j) % 7 == 0)
            .count();
        assert_eq!(m.count_true(), expect);
        assert_eq!(m.true_pairs().len(), expect);
    }

    #[test]
    fn row_and_respects_the_tail_mask() {
        // An all-true row must be detected across word boundaries, and a
        // single false bit in the tail word must break it.
        for n_b in [63, 64, 65, 128, 130] {
            let mut m = TMatrix::from_fn(1, n_b, |_, _| true);
            assert!(m.row_and(0), "n_b = {n_b}");
            m.set(0, n_b - 1, false);
            assert!(!m.row_and(0), "n_b = {n_b} with last bit cleared");
            assert_eq!(m.count_true(), n_b - 1);
        }
    }

    #[test]
    fn wide_paste_keeps_surroundings_and_structural_equality() {
        let mut full = TMatrix::new(2, 200);
        full.set(0, 0, true);
        full.set(1, 199, true);
        let block = TMatrix::from_fn(2, 70, |i, j| (i * 70 + j) % 3 == 0);
        full.paste(0, 65, &block);
        for i in 0..2 {
            for j in 65..135 {
                assert_eq!(full.get(i, j), (i * 70 + (j - 65)) % 3 == 0, "({i},{j})");
            }
        }
        assert!(full.get(0, 0) && full.get(1, 199));
        // Structural equality must hold for an identically rebuilt matrix.
        let rebuilt = TMatrix::from_fn(2, 200, |i, j| full.get(i, j));
        assert_eq!(full, rebuilt);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_checks_bounds() {
        TMatrix::new(2, 3).get(0, 3);
    }

    #[test]
    fn count_true_is_exact_at_word_boundaries() {
        // The final-partial-word invariant (tail bits zero) is what makes
        // `count_true` a plain popcount sum: pin it at every boundary shape
        // the vectorized writers must preserve — widths 63/64/65 and a
        // zero-width row.
        for n_b in [63usize, 64, 65] {
            let m = TMatrix::from_fn(2, n_b, |_, _| true);
            assert_eq!(m.count_true(), 2 * n_b, "all-true n_b={n_b}");
            let m = TMatrix::from_fn(2, n_b, |i, j| (i + j) % 2 == 0);
            let expect = (0..2)
                .flat_map(|i| (0..n_b).map(move |j| (i + j) % 2))
                .filter(|&x| x == 0)
                .count();
            assert_eq!(m.count_true(), expect, "checker n_b={n_b}");
        }
        let m = TMatrix::new(3, 0);
        assert_eq!(m.count_true(), 0, "zero-width matrix");
        assert!(m.true_pairs().is_empty());
    }

    #[test]
    fn row_words_mut_round_trips_under_the_tail_invariant() {
        // Writing whole rows through the packed accessor (as the columnar
        // scan kernels do) must be indistinguishable from bit-by-bit sets.
        for n_b in [1usize, 63, 64, 65, 130] {
            let reference = TMatrix::from_fn(2, n_b, |i, j| (i * 3 + j) % 5 != 0);
            let mut direct = TMatrix::new(2, n_b);
            for i in 0..2 {
                let tail = direct.tail_mask();
                let words = direct.row_words_mut(i);
                for (k, w) in words.iter_mut().enumerate() {
                    let mut bits = 0u64;
                    for b in 0..64 {
                        let j = k * 64 + b;
                        if j < n_b && (i * 3 + j) % 5 != 0 {
                            bits |= 1 << b;
                        }
                    }
                    *w = bits;
                }
                if let Some(last) = direct.row_words_mut(i).last_mut() {
                    *last &= tail;
                }
            }
            assert_eq!(direct, reference, "n_b={n_b}");
            assert_eq!(direct.count_true(), reference.count_true());
        }
    }
}
