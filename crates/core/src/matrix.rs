//! The boolean result matrix `T` (§3.3).
//!
//! "Letter T represents a boolean matrix that contains results of logical
//! operations. The (i,j)-th entry of T ... denote\[s\] the result of a
//! comparison between the i-th tuple of a relation and the j-th tuple of
//! another."

/// A dense `n_a x n_b` boolean matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TMatrix {
    n_a: usize,
    n_b: usize,
    bits: Vec<bool>,
}

impl TMatrix {
    /// An all-false matrix.
    pub fn new(n_a: usize, n_b: usize) -> Self {
        TMatrix {
            n_a,
            n_b,
            bits: vec![false; n_a * n_b],
        }
    }

    /// Build from a predicate.
    pub fn from_fn(n_a: usize, n_b: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = TMatrix::new(n_a, n_b);
        for i in 0..n_a {
            for j in 0..n_b {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Rows (`|A|`).
    pub fn n_a(&self) -> usize {
        self.n_a
    }

    /// Columns (`|B|`).
    pub fn n_b(&self) -> usize {
        self.n_b
    }

    /// Entry `t_{ij}`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.n_b + j]
    }

    /// Set entry `t_{ij}`.
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        self.bits[i * self.n_b + j] = v;
    }

    /// `t_i = OR_{1<=j<=n} t_{ij}` (equation 4.1) — what the accumulation
    /// array computes for the intersection.
    pub fn row_or(&self, i: usize) -> bool {
        (0..self.n_b).any(|j| self.get(i, j))
    }

    /// AND across row `i` — what the divisor array computes per row (§7).
    pub fn row_and(&self, i: usize) -> bool {
        (0..self.n_b).all(|j| self.get(i, j))
    }

    /// All row-ORs as a bit vector.
    pub fn row_ors(&self) -> Vec<bool> {
        (0..self.n_a).map(|i| self.row_or(i)).collect()
    }

    /// Number of TRUE entries (the join result size, §6.2).
    pub fn count_true(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// The TRUE positions in row-major order.
    pub fn true_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.count_true());
        for i in 0..self.n_a {
            for j in 0..self.n_b {
                if self.get(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Pointwise AND with another matrix of the same shape — how column-
    /// group tiles are combined when a wide tuple is decomposed over a
    /// narrow array (§8).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn and_assign(&mut self, other: &TMatrix) {
        assert_eq!(self.n_a, other.n_a, "shape mismatch");
        assert_eq!(self.n_b, other.n_b, "shape mismatch");
        for (x, y) in self.bits.iter_mut().zip(&other.bits) {
            *x &= *y;
        }
    }

    /// Copy `block` into this matrix at offset `(i0, j0)` — assembling a
    /// full `T` from sub-problem pieces (§8: "each of these sub-problems
    /// would generate a piece of the matrix").
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn paste(&mut self, i0: usize, j0: usize, block: &TMatrix) {
        assert!(
            i0 + block.n_a <= self.n_a && j0 + block.n_b <= self.n_b,
            "block overflows"
        );
        for i in 0..block.n_a {
            for j in 0..block.n_b {
                self.set(i0 + i, j0 + j, block.get(i, j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_row_ops() {
        let mut m = TMatrix::new(2, 3);
        m.set(0, 1, true);
        assert!(m.get(0, 1));
        assert!(m.row_or(0));
        assert!(!m.row_or(1));
        assert!(!m.row_and(0));
        m.set(0, 0, true);
        m.set(0, 2, true);
        assert!(m.row_and(0));
        assert_eq!(m.count_true(), 3);
        assert_eq!(m.row_ors(), vec![true, false]);
    }

    #[test]
    fn from_fn_and_true_pairs() {
        let m = TMatrix::from_fn(3, 3, |i, j| i == j);
        assert_eq!(m.true_pairs(), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn and_assign_is_pointwise() {
        let mut a = TMatrix::from_fn(2, 2, |i, _| i == 0);
        let b = TMatrix::from_fn(2, 2, |_, j| j == 0);
        a.and_assign(&b);
        assert_eq!(a.true_pairs(), vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn and_assign_checks_shapes() {
        let mut a = TMatrix::new(2, 2);
        a.and_assign(&TMatrix::new(2, 3));
    }

    #[test]
    fn paste_assembles_blocks() {
        let mut full = TMatrix::new(4, 4);
        let block = TMatrix::from_fn(2, 2, |i, j| i == j);
        full.paste(2, 2, &block);
        assert!(full.get(2, 2));
        assert!(full.get(3, 3));
        assert!(!full.get(2, 3));
        assert_eq!(full.count_true(), 2);
    }

    #[test]
    #[should_panic(expected = "block overflows")]
    fn paste_checks_bounds() {
        let mut full = TMatrix::new(2, 2);
        full.paste(1, 1, &TMatrix::new(2, 2));
    }

    #[test]
    fn empty_rows_behave() {
        let m = TMatrix::new(1, 0);
        assert!(!m.row_or(0), "OR over empty row is false");
        assert!(m.row_and(0), "AND over empty row is vacuously true");
    }
}
