//! Problem decomposition onto a fixed-size array (§8).
//!
//! "While such an array would be large enough for many applications, it is
//! also possible to use the array to solve problems that will not fit
//! entirely on it. This calls for the technique of decomposing problems. ...
//! In the intersection problem, consider the matrix, T, of results. For a
//! large problem, one can simply partition this matrix into sub-problems
//! small enough to fit on the array; each of these sub-problems would
//! generate a piece of the matrix."
//!
//! A physical array of bounded size is reused sequentially over tiles of
//! `A`-rows x `B`-rows x column groups; partial results are combined outside
//! the array (§9: "results from subrelations must be stored outside the
//! systolic arrays before they are finally combined") — AND across column
//! groups, then OR across `B` tiles for membership-style operations.

use systolic_fabric::{CompareOp, Elem};

use crate::comparison::ComparisonArray2d;
use crate::error::Result;
use crate::intersection::SetOpMode;
use crate::matrix::TMatrix;
use crate::stats::ExecStats;

/// The physical capacity of a fixed systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLimits {
    /// Maximum `A`-tuples per tile (bounds the rows fed from the top).
    pub max_a: usize,
    /// Maximum `B`-tuples per tile (bounds the rows fed from the bottom).
    pub max_b: usize,
    /// Maximum processor columns (bounds the tuple width per pass).
    pub max_cols: usize,
}

impl ArrayLimits {
    /// Build limits; every bound must be at least 1.
    pub fn new(max_a: usize, max_b: usize, max_cols: usize) -> Self {
        assert!(
            max_a > 0 && max_b > 0 && max_cols > 0,
            "limits must be positive"
        );
        ArrayLimits {
            max_a,
            max_b,
            max_cols,
        }
    }

    /// Physical processor count of the array these limits describe
    /// (comparison columns only).
    pub fn cells(&self) -> usize {
        (self.max_a + self.max_b - 1) * self.max_cols
    }
}

/// Outcome of a tiled run.
#[derive(Debug, Clone)]
pub struct TiledOutcome {
    /// The assembled full matrix `T`.
    pub t: TMatrix,
    /// Sequentially merged statistics over all tile runs.
    pub stats: ExecStats,
}

/// Compute the full `T` matrix with an array bounded by `limits`, tiling
/// over `A`-chunks, `B`-chunks and column groups. `initial` supplies the
/// west-edge seed per *global* pair index; when the tuple width exceeds
/// `max_cols`, per-group results are ANDed, so the seed is applied to the
/// first column group only (ANDing it once is ANDing it at all).
pub fn t_matrix_tiled(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    ops: &[CompareOp],
    limits: ArrayLimits,
    mut initial: impl FnMut(usize, usize) -> bool,
) -> Result<TiledOutcome> {
    let m = ops.len();
    assert!(m > 0, "tuple width must be positive");
    let mut t = TMatrix::new(a.len(), b.len());
    let mut stats = ExecStats::default();
    let col_groups: Vec<(usize, usize)> = (0..m)
        .step_by(limits.max_cols)
        .map(|start| (start, (start + limits.max_cols).min(m)))
        .collect();
    for a0 in (0..a.len()).step_by(limits.max_a) {
        let a1 = (a0 + limits.max_a).min(a.len());
        for b0 in (0..b.len()).step_by(limits.max_b) {
            let b1 = (b0 + limits.max_b).min(b.len());
            let mut block: Option<TMatrix> = None;
            for (group_idx, &(c0, c1)) in col_groups.iter().enumerate() {
                let sub_a: Vec<Vec<Elem>> =
                    a[a0..a1].iter().map(|row| row[c0..c1].to_vec()).collect();
                let sub_b: Vec<Vec<Elem>> =
                    b[b0..b1].iter().map(|row| row[c0..c1].to_vec()).collect();
                let arr = ComparisonArray2d::with_ops(ops[c0..c1].to_vec());
                let out = arr.t_matrix(&sub_a, &sub_b, |i, j| {
                    if group_idx == 0 {
                        initial(a0 + i, b0 + j)
                    } else {
                        true
                    }
                })?;
                stats.merge_sequential(&out.stats);
                block = Some(match block {
                    None => out.t,
                    Some(mut acc) => {
                        // Tuple equality over all columns = AND over groups.
                        acc.and_assign(&out.t);
                        acc
                    }
                });
            }
            t.paste(a0, b0, &block.expect("at least one column group"));
        }
    }
    Ok(TiledOutcome { t, stats })
}

/// Compute the full `T` matrix on a bounded array with *pipelined* tiles:
/// instead of letting the grid drain between sub-problems (as
/// [`t_matrix_tiled`] does, one `run_until_quiescent` per tile), successive
/// tiles' input streams are injected back-to-back into the *same running
/// grid*, separated only by the two-pulse tuple spacing the §3.2 schedule
/// already requires. This is the "extensive pipelining" of §1 applied
/// across sub-problems: the fill/drain cost is paid once per *problem*
/// instead of once per *tile*, roughly halving total pulses for large tile
/// counts.
///
/// Column groups are not supported here (each would need its own pass);
/// `limits.max_cols` must cover the full tuple width.
pub fn t_matrix_tiled_pipelined(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    ops: &[CompareOp],
    limits: ArrayLimits,
    initial: impl FnMut(usize, usize) -> bool,
) -> Result<TiledOutcome> {
    pipelined_run(a, b, ops, limits, initial, 0)
}

/// [`t_matrix_tiled_pipelined`] with a pulse budget shrunk by `trim` — only
/// used by tests to prove the budget is *exact* (trim 1 must fail, trim 0
/// must succeed).
fn pipelined_run(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    ops: &[CompareOp],
    limits: ArrayLimits,
    mut initial: impl FnMut(usize, usize) -> bool,
    trim: u64,
) -> Result<TiledOutcome> {
    use std::collections::HashMap;
    use systolic_fabric::{CompareSchedule, Grid, ScheduleFeeder, Word};

    let m = ops.len();
    assert!(m > 0, "tuple width must be positive");
    assert!(
        limits.max_cols >= m,
        "pipelined tiling needs the full tuple width per pass"
    );
    let tile_a = limits.max_a;
    let tile_b = limits.max_b;
    // The physical grid is sized for the largest tile.
    let rows = (tile_a.min(a.len()) + tile_b.min(b.len()))
        .saturating_sub(1)
        .max(1);
    let mut grid: Grid<crate::comparison::CompareCell> =
        Grid::new(rows, m, |_, c| crate::comparison::CompareCell::new(ops[c]));

    let mut north = ScheduleFeeder::new();
    let mut south = ScheduleFeeder::new();
    let mut west = ScheduleFeeder::new();
    // (lane, pulse) -> (global i, global j) for decoding every tile's exits.
    let mut exit_map: HashMap<(usize, u64), (usize, usize)> = HashMap::new();
    let mut offset = 0u64;
    let mut tiles = 0u64;
    // The last pulse at which any word is still inside the grid. Tracking it
    // per injection yields an *exact* run budget instead of a padded guess:
    // an A or B word injected at pulse p is processed by one row per pulse
    // and leaves the plane after row `rows - 1`, i.e. at pulse
    // p + rows - 1; a t word injected on the west edge at pulse p crosses
    // one comparison column per pulse and exits east at pulse p + m - 1.
    let mut last_activity = 0u64;
    for a0 in (0..a.len()).step_by(tile_a) {
        let a1 = (a0 + tile_a).min(a.len());
        for b0 in (0..b.len()).step_by(tile_b) {
            let b1 = (b0 + tile_b).min(b.len());
            let sched = CompareSchedule::new(a1 - a0, b1 - b0, m);
            debug_assert!(sched.rows() <= rows);
            // Edge tiles are smaller than the physical grid: the schedule's
            // row arithmetic assumes the B stream enters sched.rows() - 1
            // rows below the top, but it physically enters at row rows - 1.
            // Delaying the A stream (and the t seeds, and the exit pulses)
            // by the difference restores the meeting geometry.
            let delta = (rows - sched.rows()) as u64;
            let mut last_inject = 0u64;
            for (i, row) in a[a0..a1].iter().enumerate() {
                for (c, &e) in row.iter().enumerate() {
                    let p = sched.a_injection(i, c) + offset + delta;
                    north.push(p, c, Word::Elem(e));
                    last_inject = last_inject.max(p);
                    last_activity = last_activity.max(p + rows as u64 - 1);
                }
            }
            for (j, row) in b[b0..b1].iter().enumerate() {
                for (c, &e) in row.iter().enumerate() {
                    let p = sched.b_injection(j, c) + offset;
                    south.push(p, c, Word::Elem(e));
                    last_inject = last_inject.max(p);
                    last_activity = last_activity.max(p + rows as u64 - 1);
                }
            }
            for i in 0..(a1 - a0) {
                for j in 0..(b1 - b0) {
                    let (lane, pulse) = sched.t_injection(i, j);
                    west.push(
                        pulse + offset + delta,
                        lane,
                        Word::Bool(initial(a0 + i, b0 + j)),
                    );
                    last_activity = last_activity.max(pulse + offset + delta + m as u64 - 1);
                    let exit = (
                        sched.meeting_row(i, j),
                        sched.t_exit_pulse(i, j) + offset + delta,
                    );
                    let prev = exit_map.insert(exit, (a0 + i, b0 + j));
                    debug_assert!(prev.is_none(), "tile exit collision at {exit:?}");
                }
            }
            tiles += 1;
            // The next tile streams in right behind this one: its first
            // injection lands two pulses (one tuple slot) after our last.
            offset = last_inject + 2;
        }
    }
    grid.set_north_feeder(north);
    grid.set_south_feeder(south);
    grid.set_west_feeder(west);
    // Exact budget: the last in-flight word is consumed during the step at
    // pulse `last_activity`, so the grid is quiescent exactly at pulse
    // `last_activity + 1` and not one pulse sooner (a word is still in a
    // wire plane — or still owed by a feeder — at every pulse up to and
    // including `last_activity`). The tightness test below proves both
    // directions: `trim == 1` must fail with `NotQuiescent`.
    let budget = last_activity + 1;
    grid.run_until_quiescent(budget.saturating_sub(trim))?;

    let mut t = TMatrix::new(a.len(), b.len());
    let mut seen = 0usize;
    for em in grid.east_emissions().emissions() {
        match exit_map.get(&(em.lane, em.pulse)) {
            Some(&(i, j)) => {
                let v = em.word.as_bool().ok_or_else(|| {
                    crate::error::CoreError::ScheduleViolation {
                        detail: format!("non-boolean result {:?}", em.word),
                    }
                })?;
                t.set(i, j, v);
                seen += 1;
            }
            // With tiles streaming back-to-back, words of adjacent tiles
            // cross inside the grid and compare as they pass; those
            // don't-care outputs exit at off-schedule pulses and the
            // controller discards them (exactly as a §9 controller gates
            // result capture by schedule). The completeness check below
            // still guarantees every *scheduled* result arrived.
            None if em.word.as_bool().is_some() => {}
            None => {
                return Err(crate::error::CoreError::ScheduleViolation {
                    detail: format!(
                        "unexpected non-boolean emission {:?} at row {}, pulse {}",
                        em.word, em.lane, em.pulse
                    ),
                })
            }
        }
    }
    if seen != a.len() * b.len() {
        return Err(crate::error::CoreError::ScheduleViolation {
            detail: format!("expected {} results, saw {seen}", a.len() * b.len()),
        });
    }
    let mut stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
    stats.array_runs = tiles;
    Ok(TiledOutcome { t, stats })
}

/// Membership outcome of a tiled intersection/difference: one keep-flag per
/// tuple of `A`, computed by ORing partial results across `B`-tiles outside
/// the array.
pub fn membership_tiled(
    a: &[Vec<Elem>],
    b: &[Vec<Elem>],
    mode: SetOpMode,
    limits: ArrayLimits,
    initial: impl FnMut(usize, usize) -> bool,
) -> Result<(Vec<bool>, ExecStats)> {
    let m = a.first().map(|r| r.len()).unwrap_or(1);
    let ops = vec![CompareOp::Eq; m];
    let out = t_matrix_tiled(a, b, &ops, limits, initial)?;
    let t = out.t.row_ors();
    let keep = match mode {
        SetOpMode::Intersect => t,
        SetOpMode::Difference => t.into_iter().map(|x| !x).collect(),
    };
    Ok((keep, out.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection::IntersectionArray;

    fn relation(n: usize, m: usize, seed: i64) -> Vec<Vec<Elem>> {
        // Deterministic pseudo-data with collisions across seeds.
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|c| ((i as i64 * 7 + seed) % 11) + c as i64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tiled_matrix_equals_whole_array_matrix() {
        let a = relation(13, 3, 0);
        let b = relation(9, 3, 3);
        let ops = vec![CompareOp::Eq; 3];
        let whole = ComparisonArray2d::equality(3)
            .t_matrix(&a, &b, |_, _| true)
            .unwrap();
        for limits in [
            ArrayLimits::new(4, 4, 3),
            ArrayLimits::new(5, 3, 2),
            ArrayLimits::new(1, 1, 1),
            ArrayLimits::new(100, 100, 100),
        ] {
            let tiled = t_matrix_tiled(&a, &b, &ops, limits, |_, _| true).unwrap();
            assert_eq!(tiled.t, whole.t, "limits {limits:?}");
        }
    }

    #[test]
    fn tiled_membership_equals_whole_array_membership() {
        let a = relation(12, 2, 0);
        let b = relation(10, 2, 5);
        let whole = IntersectionArray::new(2)
            .run(&a, &b, SetOpMode::Intersect)
            .unwrap();
        let (keep, _) = membership_tiled(
            &a,
            &b,
            SetOpMode::Intersect,
            ArrayLimits::new(4, 3, 2),
            |_, _| true,
        )
        .unwrap();
        assert_eq!(keep, whole.keep);
        let whole_d = IntersectionArray::new(2)
            .run(&a, &b, SetOpMode::Difference)
            .unwrap();
        let (keep_d, _) = membership_tiled(
            &a,
            &b,
            SetOpMode::Difference,
            ArrayLimits::new(4, 3, 2),
            |_, _| true,
        )
        .unwrap();
        assert_eq!(keep_d, whole_d.keep);
    }

    #[test]
    fn masked_tiling_preserves_triangle_suppression() {
        // Remove-duplicates semantics must survive decomposition.
        let rows: Vec<Vec<Elem>> = vec![vec![4], vec![4], vec![5], vec![4], vec![5]];
        let (dup, _) = membership_tiled(
            &rows,
            &rows,
            SetOpMode::Intersect,
            ArrayLimits::new(2, 2, 1),
            |i, j| i > j,
        )
        .unwrap();
        // dup[i] TRUE iff an earlier equal tuple exists.
        assert_eq!(dup, vec![false, true, false, true, true]);
    }

    #[test]
    fn column_groups_are_anded() {
        // Rows equal in the first column group but not the second must not
        // count as equal.
        let a = vec![vec![1, 2, 3, 9]];
        let b = vec![vec![1, 2, 3, 8]];
        let ops = vec![CompareOp::Eq; 4];
        let out = t_matrix_tiled(&a, &b, &ops, ArrayLimits::new(4, 4, 2), |_, _| true).unwrap();
        assert!(!out.t.get(0, 0));
    }

    #[test]
    fn tile_count_and_physical_size_are_reported() {
        let a = relation(8, 2, 0);
        let b = relation(8, 2, 1);
        let limits = ArrayLimits::new(4, 4, 2);
        let ops = vec![CompareOp::Eq; 2];
        let out = t_matrix_tiled(&a, &b, &ops, limits, |_, _| true).unwrap();
        assert_eq!(out.stats.array_runs, 4, "2x2 tile grid");
        // The physical array is never larger than the limits allow.
        assert!(out.stats.cells <= limits.cells() + limits.max_a + limits.max_b);
    }

    #[test]
    fn decomposition_costs_more_total_pulses() {
        // Sequential reuse of a small array trades time for hardware.
        let a = relation(16, 2, 0);
        let b = relation(16, 2, 2);
        let ops = vec![CompareOp::Eq; 2];
        let whole =
            t_matrix_tiled(&a, &b, &ops, ArrayLimits::new(100, 100, 2), |_, _| true).unwrap();
        let tiled = t_matrix_tiled(&a, &b, &ops, ArrayLimits::new(4, 4, 2), |_, _| true).unwrap();
        assert!(tiled.stats.pulses > whole.stats.pulses);
        assert!(tiled.stats.cells < whole.stats.cells);
        assert_eq!(tiled.t, whole.t);
    }

    #[test]
    fn pipelined_tiling_matches_sequential_tiling() {
        let a = relation(13, 2, 0);
        let b = relation(17, 2, 3);
        let ops = vec![CompareOp::Eq; 2];
        let whole = ComparisonArray2d::equality(2)
            .t_matrix(&a, &b, |_, _| true)
            .unwrap();
        for limits in [
            ArrayLimits::new(4, 4, 2),
            ArrayLimits::new(5, 3, 2),
            ArrayLimits::new(1, 1, 2),
            ArrayLimits::new(100, 100, 2),
        ] {
            let piped = t_matrix_tiled_pipelined(&a, &b, &ops, limits, |_, _| true).unwrap();
            assert_eq!(piped.t, whole.t, "limits {limits:?}");
        }
    }

    #[test]
    fn pipelined_tiling_is_faster_than_sequential_tiling() {
        let a = relation(32, 2, 0);
        let b = relation(32, 2, 5);
        let ops = vec![CompareOp::Eq; 2];
        let limits = ArrayLimits::new(4, 4, 2);
        let sequential = t_matrix_tiled(&a, &b, &ops, limits, |_, _| true).unwrap();
        let piped = t_matrix_tiled_pipelined(&a, &b, &ops, limits, |_, _| true).unwrap();
        assert_eq!(sequential.t, piped.t);
        assert_eq!(sequential.stats.array_runs, piped.stats.array_runs);
        assert!(
            piped.stats.pulses * 3 < sequential.stats.pulses * 2,
            "pipelined {} vs sequential {} pulses",
            piped.stats.pulses,
            sequential.stats.pulses
        );
    }

    #[test]
    fn pipelined_tiling_preserves_masks() {
        let rows: Vec<Vec<Elem>> = vec![vec![4], vec![4], vec![5], vec![4], vec![5]];
        let ops = vec![CompareOp::Eq];
        let out =
            t_matrix_tiled_pipelined(&rows, &rows, &ops, ArrayLimits::new(2, 2, 1), |i, j| i > j)
                .unwrap();
        let expect = TMatrix::from_fn(5, 5, |i, j| i > j && rows[i] == rows[j]);
        assert_eq!(out.t, expect);
    }

    #[test]
    fn pipelined_pulse_budget_is_exact() {
        // The derived budget is tight in both directions: the full budget
        // drains the grid, one pulse less leaves a word in flight.
        let ops2 = vec![CompareOp::Eq; 2];
        let ops1 = vec![CompareOp::Eq];
        let narrow: Vec<Vec<Elem>> = relation(5, 1, 0);
        #[allow(clippy::type_complexity)]
        let cases: Vec<(Vec<Vec<Elem>>, Vec<Vec<Elem>>, Vec<CompareOp>, ArrayLimits)> = vec![
            (
                relation(13, 2, 0),
                relation(17, 2, 3),
                ops2.clone(),
                ArrayLimits::new(4, 4, 2),
            ),
            (
                relation(13, 2, 0),
                relation(17, 2, 3),
                ops2.clone(),
                ArrayLimits::new(100, 100, 2),
            ),
            (
                relation(1, 2, 0),
                relation(1, 2, 1),
                ops2,
                ArrayLimits::new(1, 1, 2),
            ),
            (narrow.clone(), narrow, ops1, ArrayLimits::new(2, 2, 1)),
        ];
        for (a, b, ops, limits) in cases {
            let exact = pipelined_run(&a, &b, &ops, limits, |_, _| true, 0);
            assert!(exact.is_ok(), "budget must suffice for limits {limits:?}");
            let short = pipelined_run(&a, &b, &ops, limits, |_, _| true, 1);
            assert!(
                matches!(short, Err(crate::error::CoreError::Fabric(_))),
                "budget - 1 must time out for limits {limits:?}, got {short:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "full tuple width")]
    fn pipelined_tiling_rejects_column_splitting() {
        let a = relation(4, 3, 0);
        let ops = vec![CompareOp::Eq; 3];
        let _ = t_matrix_tiled_pipelined(&a, &a, &ops, ArrayLimits::new(2, 2, 2), |_, _| true);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limits_rejected() {
        ArrayLimits::new(0, 1, 1);
    }
}
