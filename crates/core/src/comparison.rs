//! Arrays for tuple comparison (§3, Figures 3-1 through 3-4).
//!
//! The basic building block of most arrays in the paper: a linear array of
//! `m` comparison processors tests two tuples for equality by ANDing the
//! element-wise comparison results as they propagate east (§3.1); stacking
//! `n_A + n_B - 1` such rows and marching `A` south and `B` north pipelines
//! *all* `|A| x |B|` tuple comparisons and produces the boolean matrix `T`
//! (§3.2, §3.3).

use systolic_fabric::{
    Cell, CellIo, CompareOp, CompareSchedule, Elem, Grid, ScheduleFeeder, TraceFrame, Word,
};

use crate::error::{CoreError, Result};
use crate::matrix::TMatrix;
use crate::stats::ExecStats;

/// The individual comparison processor of Figure 3-2:
/// `t_OUT = t_IN AND (a_IN = b_IN)`, with `a` and `b` passed through.
///
/// The comparator is parameterised by a [`CompareOp`] to support the
/// non-equi-join of §6.3.2 ("processors in the array would simply perform
/// that comparison"); the default is equality.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompareCell {
    /// The comparison this processor applies.
    pub op: CompareOp,
}

impl CompareCell {
    /// A comparator applying `op`.
    pub fn new(op: CompareOp) -> Self {
        CompareCell { op }
    }
}

impl Cell for CompareCell {
    fn pulse(&mut self, io: &mut CellIo) {
        io.pass_through();
        match (io.a_in.as_elem(), io.b_in.as_elem()) {
            (Some(a), Some(b)) => {
                let cmp = self.op.eval(a, b);
                io.t_out = match io.t_in {
                    // The AND of Figure 3-2. A FALSE input poisons the
                    // result no matter what the comparison says (§3.1:
                    // "if the initial input is FALSE, then the output ...
                    // is guaranteed to be false").
                    Word::Bool(t) => Word::Bool(t && cmp),
                    // No partial result yet: treat as the TRUE seed.
                    _ => Word::Bool(cmp),
                };
            }
            // No meeting this pulse: pass any in-flight t along unchanged.
            _ => io.t_out = io.t_in,
        }
    }
}

/// Outcome of a single-tuple-pair comparison on the linear array.
#[derive(Debug, Clone)]
pub struct LinearOutcome {
    /// The equality verdict emitted by the rightmost processor.
    pub result: bool,
    /// Run statistics.
    pub stats: ExecStats,
    /// Per-pulse wire snapshots, if tracing was requested.
    pub frames: Vec<TraceFrame>,
}

/// The linear comparison array of Figure 3-1: `m` processors compare one
/// tuple pair in `m` pulses.
///
/// ```
/// use systolic_core::LinearComparisonArray;
/// let arr = LinearComparisonArray::new(3);
/// assert!(arr.compare(&[1, 2, 3], &[1, 2, 3], true).unwrap().result);
/// assert!(!arr.compare(&[1, 2, 3], &[1, 9, 3], true).unwrap().result);
/// // §3.1: a FALSE initial input poisons the output.
/// assert!(!arr.compare(&[1, 2, 3], &[1, 2, 3], false).unwrap().result);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LinearComparisonArray {
    /// Tuple width (number of processors).
    pub m: usize,
    /// Comparator applied at every position (equality for tuple equality).
    pub op: CompareOp,
}

impl LinearComparisonArray {
    /// An equality-comparison array of width `m`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "tuple width must be positive");
        LinearComparisonArray {
            m,
            op: CompareOp::Eq,
        }
    }

    /// Compare two tuples; `initial` is the boolean fed to the leftmost
    /// processor (TRUE for a plain equality test).
    pub fn compare(&self, a: &[Elem], b: &[Elem], initial: bool) -> Result<LinearOutcome> {
        self.run(a, b, initial, false)
    }

    /// As [`Self::compare`], optionally recording wire snapshots for
    /// rendering (Figure 3-1 as an animation).
    pub fn run(&self, a: &[Elem], b: &[Elem], initial: bool, trace: bool) -> Result<LinearOutcome> {
        assert_eq!(a.len(), self.m, "tuple a has wrong width");
        assert_eq!(b.len(), self.m, "tuple b has wrong width");
        let op = self.op;
        let mut grid: Grid<CompareCell> = Grid::new(1, self.m, |_, _| CompareCell::new(op));
        if trace {
            grid.enable_tracing();
        }
        // Staggered inputs (the "slanted" tuples of Figure 3-1): element k
        // of both tuples enters lane k at pulse k, so that a_k and b_k meet
        // the k-th processor at pulse k, together with the running AND.
        grid.set_north_feeder(ScheduleFeeder::from_entries(
            a.iter()
                .enumerate()
                .map(|(k, &e)| (k as u64, k, Word::Elem(e))),
        ));
        grid.set_south_feeder(ScheduleFeeder::from_entries(
            b.iter()
                .enumerate()
                .map(|(k, &e)| (k as u64, k, Word::Elem(e))),
        ));
        grid.set_west_feeder(ScheduleFeeder::from_entries([(0, 0, Word::Bool(initial))]));
        grid.run_until_quiescent(4 * self.m as u64 + 8)?;
        // The verdict exits east from the rightmost processor at pulse m-1.
        let result = grid
            .east_emissions()
            .at(self.m as u64 - 1, 0)
            .and_then(Word::as_bool)
            .ok_or_else(|| CoreError::ScheduleViolation {
                detail: format!("linear array produced no verdict at pulse {}", self.m - 1),
            })?;
        let stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
        Ok(LinearOutcome {
            result,
            stats,
            frames: grid.trace_frames().to_vec(),
        })
    }
}

/// Outcome of a two-dimensional comparison-array run.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// The boolean matrix `T` (§3.3).
    pub t: TMatrix,
    /// Run statistics.
    pub stats: ExecStats,
    /// Per-pulse wire snapshots, if tracing was requested.
    pub frames: Vec<TraceFrame>,
}

/// The two-dimensional (orthogonal) comparison array of Figure 3-3.
///
/// Per-column comparators allow the multi-column join of §6.3.1, where
/// "each processor column is responsible for comparing a_i and b_j in some
/// particular column pair".
///
/// ```
/// use systolic_core::ComparisonArray2d;
/// let a = vec![vec![1, 2], vec![3, 4]];
/// let b = vec![vec![3, 4], vec![5, 6], vec![1, 2]];
/// let out = ComparisonArray2d::equality(2).t_matrix(&a, &b, |_, _| true).unwrap();
/// assert!(out.t.get(0, 2) && out.t.get(1, 0));
/// assert_eq!(out.t.count_true(), 2);
/// assert_eq!(out.stats.cells, (2 + 3 - 1) * 2); // n_A + n_B - 1 rows of m cells
/// ```
#[derive(Debug, Clone)]
pub struct ComparisonArray2d {
    ops: Vec<CompareOp>,
}

impl ComparisonArray2d {
    /// An equality array for tuples of width `m` (intersection-style use).
    pub fn equality(m: usize) -> Self {
        assert!(m > 0, "tuple width must be positive");
        ComparisonArray2d {
            ops: vec![CompareOp::Eq; m],
        }
    }

    /// An array with one comparator per column (theta-join use).
    pub fn with_ops(ops: Vec<CompareOp>) -> Self {
        assert!(!ops.is_empty(), "tuple width must be positive");
        ComparisonArray2d { ops }
    }

    /// Tuple width.
    pub fn m(&self) -> usize {
        self.ops.len()
    }

    /// Produce the matrix `T` for relations `a` (fed from the top) and `b`
    /// (fed from the bottom). `initial(i, j)` supplies the `t` value
    /// injected at the west edge for pair `(i, j)` — TRUE everywhere for a
    /// plain comparison, FALSE on `i <= j` for remove-duplicates (§5).
    pub fn t_matrix(
        &self,
        a: &[Vec<Elem>],
        b: &[Vec<Elem>],
        initial: impl FnMut(usize, usize) -> bool,
    ) -> Result<MatrixOutcome> {
        self.run(a, b, initial, false)
    }

    /// As [`Self::t_matrix`], optionally recording wire snapshots.
    pub fn run(
        &self,
        a: &[Vec<Elem>],
        b: &[Vec<Elem>],
        initial: impl FnMut(usize, usize) -> bool,
        trace: bool,
    ) -> Result<MatrixOutcome> {
        let m = self.m();
        let sched = CompareSchedule::new(a.len(), b.len(), m);
        let ops = &self.ops;
        let mut grid: Grid<CompareCell> =
            Grid::new(sched.rows(), m, |_, c| CompareCell::new(ops[c]));
        if trace {
            grid.enable_tracing();
        }
        grid.set_north_feeder(sched.a_feeder(a));
        grid.set_south_feeder(sched.b_feeder(b));
        grid.set_west_feeder(sched.t_feeder(initial));
        grid.run_until_quiescent(sched.pulse_bound())?;

        let mut t = TMatrix::new(a.len(), b.len());
        let mut seen = 0usize;
        for em in grid.east_emissions().emissions() {
            let (i, j) = sched.pair_at_exit(em.lane, em.pulse).ok_or_else(|| {
                CoreError::ScheduleViolation {
                    detail: format!(
                        "unexpected east emission {:?} at row {}, pulse {}",
                        em.word, em.lane, em.pulse
                    ),
                }
            })?;
            let v = em
                .word
                .as_bool()
                .ok_or_else(|| CoreError::ScheduleViolation {
                    detail: format!("non-boolean result {:?} for pair ({i},{j})", em.word),
                })?;
            t.set(i, j, v);
            seen += 1;
        }
        if seen != a.len() * b.len() {
            return Err(CoreError::ScheduleViolation {
                detail: format!("expected {} results, saw {seen}", a.len() * b.len()),
            });
        }
        let stats = ExecStats::from_grid(grid.stats(), grid.cell_count());
        Ok(MatrixOutcome {
            t,
            stats,
            frames: grid.trace_frames().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_array_tests_tuple_equality() {
        let arr = LinearComparisonArray::new(3);
        assert!(arr.compare(&[1, 2, 3], &[1, 2, 3], true).unwrap().result);
        assert!(!arr.compare(&[1, 2, 3], &[1, 9, 3], true).unwrap().result);
        assert!(!arr.compare(&[1, 2, 3], &[9, 2, 3], true).unwrap().result);
        assert!(!arr.compare(&[1, 2, 3], &[1, 2, 9], true).unwrap().result);
    }

    #[test]
    fn false_input_poisons_the_output() {
        // §3.1: "if the initial input is FALSE, then the output at the right
        // side of the array is guaranteed to be false."
        let arr = LinearComparisonArray::new(4);
        assert!(
            !arr.compare(&[5, 5, 5, 5], &[5, 5, 5, 5], false)
                .unwrap()
                .result
        );
    }

    #[test]
    fn verdict_takes_exactly_m_pulses_to_form() {
        // The result is computed by the rightmost processor at pulse m-1;
        // the grid then needs the remaining in-flight words to drain.
        let arr = LinearComparisonArray::new(5);
        let out = arr
            .compare(&[1, 2, 3, 4, 5], &[1, 2, 3, 4, 5], true)
            .unwrap();
        assert!(out.result);
        // Last element injected at pulse m-1 is consumed that same pulse by
        // the single-row grid, so the run is exactly m pulses long.
        assert_eq!(out.stats.pulses, 5);
        assert_eq!(out.stats.cells, 5);
    }

    #[test]
    fn single_element_tuples() {
        let arr = LinearComparisonArray::new(1);
        assert!(arr.compare(&[7], &[7], true).unwrap().result);
        assert!(!arr.compare(&[7], &[8], true).unwrap().result);
    }

    #[test]
    fn two_dimensional_array_produces_the_full_t_matrix() {
        // The 3x3 example of Figures 3-3/3-4.
        let a = vec![vec![1, 2, 3], vec![4, 5, 6], vec![1, 2, 3]];
        let b = vec![vec![4, 5, 6], vec![7, 8, 9], vec![1, 2, 3]];
        let out = ComparisonArray2d::equality(3)
            .t_matrix(&a, &b, |_, _| true)
            .unwrap();
        let expect = TMatrix::from_fn(3, 3, |i, j| a[i] == b[j]);
        assert_eq!(out.t, expect);
        assert_eq!(
            out.stats.cells,
            (3 + 3 - 1) * 3,
            "n_A+n_B-1 rows of m cells"
        );
    }

    #[test]
    fn asymmetric_cardinalities() {
        let a: Vec<Vec<Elem>> = (0..5).map(|i| vec![i, i]).collect();
        let b: Vec<Vec<Elem>> = (3..10).map(|j| vec![j, j]).collect();
        let out = ComparisonArray2d::equality(2)
            .t_matrix(&a, &b, |_, _| true)
            .unwrap();
        let expect = TMatrix::from_fn(5, 7, |i, j| a[i] == b[j]);
        assert_eq!(out.t, expect);
    }

    #[test]
    fn initial_false_mask_suppresses_selected_pairs() {
        // The §5 masking: pairs with i <= j are forced FALSE even when the
        // tuples are equal.
        let a = vec![vec![1], vec![1], vec![1]];
        let out = ComparisonArray2d::equality(1)
            .t_matrix(&a, &a, |i, j| i > j)
            .unwrap();
        let expect = TMatrix::from_fn(3, 3, |i, j| i > j);
        assert_eq!(out.t, expect);
    }

    #[test]
    fn per_column_comparators_support_theta_semantics() {
        // Column 0 tested with <, column 1 with equality.
        let a = vec![vec![1, 7], vec![5, 7]];
        let b = vec![vec![3, 7], vec![0, 7]];
        let arr = ComparisonArray2d::with_ops(vec![CompareOp::Lt, CompareOp::Eq]);
        let out = arr.t_matrix(&a, &b, |_, _| true).unwrap();
        let expect = TMatrix::from_fn(2, 2, |i, j| a[i][0] < b[j][0] && a[i][1] == b[j][1]);
        assert_eq!(out.t, expect);
    }

    #[test]
    fn latency_grows_additively_with_cardinality() {
        // §1 property 3: the pipeline sustains a high data rate; total run
        // time is O(n_A + n_B + m), not O(n_A * n_B * m).
        let make = |n: usize| -> Vec<Vec<Elem>> { (0..n as i64).map(|i| vec![i, i]).collect() };
        let small = ComparisonArray2d::equality(2)
            .t_matrix(&make(8), &make(8), |_, _| true)
            .unwrap();
        let large = ComparisonArray2d::equality(2)
            .t_matrix(&make(32), &make(32), |_, _| true)
            .unwrap();
        // 4x the tuples -> ~4x the pulses (not 16x).
        let ratio = large.stats.pulses as f64 / small.stats.pulses as f64;
        assert!(ratio < 6.0, "pulse ratio {ratio} should be ~4, not ~16");
    }

    #[test]
    fn single_tuple_relations_reduce_to_the_linear_array() {
        let out = ComparisonArray2d::equality(3)
            .t_matrix(&[vec![1, 2, 3]], &[vec![1, 2, 3]], |_, _| true)
            .unwrap();
        assert!(out.t.get(0, 0));
        assert_eq!(out.stats.cells, 3);
    }

    #[test]
    fn tracing_captures_data_in_flight() {
        let arr = LinearComparisonArray::new(3);
        let out = arr.run(&[1, 2, 3], &[1, 2, 3], true, true).unwrap();
        assert!(!out.frames.is_empty());
        assert!(out.frames.iter().any(|f| !f.is_idle()));
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn width_mismatch_panics() {
        LinearComparisonArray::new(2)
            .compare(&[1], &[1, 2], true)
            .unwrap();
    }
}
