//! Relation-level operator front-ends.
//!
//! This is the public API a downstream user calls: each function takes
//! relations from `systolic-relation`, checks the paper's preconditions
//! (union-compatibility etc.), chooses an array per the requested
//! [`Execution`] strategy, streams the rows through the simulated hardware,
//! and assembles the result relation from the bits/matrix the array emits —
//! exactly the division of labour the paper describes (the array produces
//! `t` bits or `T`; "it is then a simple matter to use the t_i's to
//! generate C from A", §4.2).

use systolic_fabric::{CompareOp, Elem};
use systolic_relation::{MultiRelation, RelationError, Row, Schema};

use crate::dedup::RemoveDuplicatesArray;
use crate::division::DivisionArray;
use crate::error::Result;
use crate::fixed::FixedOperandArray;
use crate::intersection::{IntersectionArray, SetOpMode};
use crate::join::{JoinArray, JoinSpec};
use crate::kernel::{self, Backend};
use crate::stats::ExecStats;
use crate::tiling::{self, ArrayLimits};

/// How to realise an operation in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// The §3–§7 designs: both relations march through an unbounded array.
    #[default]
    Marching,
    /// The §8 optimisation: one relation resident, the other streaming.
    FixedOperand,
    /// The §8 decomposition: a fixed-size physical array reused over tiles,
    /// draining between tiles.
    Tiled(ArrayLimits),
    /// As [`Execution::Tiled`], with successive tiles streamed back-to-back
    /// through the running array (the E19 pipelining). Falls back to
    /// [`Execution::Tiled`] when `limits.max_cols` cannot cover the
    /// operation's streamed tuple width (pipelining cannot split columns).
    TiledPipelined(ArrayLimits),
    /// As [`Execution::Tiled`], with the independent tile runs fanned over
    /// host worker threads (see [`crate::executor`]). The result relation
    /// and the simulated-hardware [`ExecStats`] are bit-identical to
    /// [`Execution::Tiled`]; only host wall-clock time changes. `threads: 0`
    /// means "auto" (the `SYSTOLIC_THREADS` environment variable, else the
    /// host's available parallelism — see
    /// [`crate::executor::resolve_threads`]).
    Parallel {
        /// Physical capacity of the simulated array, as for `Tiled`.
        limits: ArrayLimits,
        /// Host worker threads (`0` = auto).
        threads: usize,
    },
}

/// Result of an operator run: the output relation and the hardware cost.
pub type OpResult = (MultiRelation, ExecStats);

/// The analytic [`ExecStats`] a membership-style run (intersection,
/// difference, dedup — the arrays with an accumulation column, except for
/// the pipelined/tiled paths which use the plain comparison grid) would
/// have accumulated under each execution strategy.
fn kernel_membership_stats(exec: Execution, n_a: usize, n_b: usize, m: usize) -> ExecStats {
    match exec {
        Execution::Marching => kernel::marching_membership_stats(n_a, n_b, m),
        Execution::FixedOperand => kernel::fixed_membership_stats(n_a, n_b, m),
        Execution::TiledPipelined(limits) if limits.max_cols >= m => {
            kernel::pipelined_stats(n_a, n_b, m, limits)
        }
        Execution::Tiled(limits)
        | Execution::TiledPipelined(limits)
        | Execution::Parallel { limits, .. } => kernel::tiled_stats(n_a, n_b, m, limits),
    }
}

/// Analytic [`ExecStats`] for [`intersect`]/[`difference`] on inputs of
/// `n_a`/`n_b` rows and arity `m`, **without the data**. Every operator
/// below charges hardware cost as a pure function of input shape (the
/// data-dependent exception is division, which has no price function), so
/// a scheduler that knows only cardinalities can reproduce the exact
/// [`ExecStats`] an actual run would produce — including the empty-input
/// short-circuits, which charge nothing.
pub fn price_membership(exec: Execution, n_a: usize, n_b: usize, m: usize) -> ExecStats {
    if n_a == 0 || n_b == 0 {
        return ExecStats::default();
    }
    kernel_membership_stats(exec, n_a, n_b, m)
}

/// Analytic [`ExecStats`] for [`dedup`] on `n` rows of arity `m`.
pub fn price_dedup(exec: Execution, n: usize, m: usize) -> ExecStats {
    if n == 0 {
        return ExecStats::default();
    }
    kernel_membership_stats(exec, n, n, m)
}

/// Analytic [`ExecStats`] for [`union`]: dedup over the concatenation.
pub fn price_union(exec: Execution, n_a: usize, n_b: usize, m: usize) -> ExecStats {
    price_dedup(exec, n_a + n_b, m)
}

/// Analytic [`ExecStats`] for [`project`] to `n_cols` columns: the strip is
/// free (it happens "while the tuples are retrieved"), the dedup is priced
/// at the stripped arity.
pub fn price_project(exec: Execution, n: usize, n_cols: usize) -> ExecStats {
    price_dedup(exec, n, n_cols)
}

/// Analytic [`ExecStats`] for [`select`] with `n_preds` predicates over `n`
/// rows. Selection always uses its dedicated one-row array, so no `exec`.
pub fn price_select(n: usize, n_preds: usize) -> ExecStats {
    if n == 0 {
        return ExecStats::default();
    }
    kernel::fixed_t_matrix_stats(n, 1, n_preds)
}

/// Analytic [`ExecStats`] for [`join`] over `n_specs` column pairs.
pub fn price_join(exec: Execution, n_a: usize, n_b: usize, n_specs: usize) -> ExecStats {
    if n_a == 0 || n_b == 0 {
        return ExecStats::default();
    }
    match exec {
        Execution::Marching => kernel::compare_run_stats(n_a, n_b, n_specs),
        Execution::FixedOperand => kernel::fixed_t_matrix_stats(n_a, n_b, n_specs),
        Execution::TiledPipelined(limits) if limits.max_cols >= n_specs => {
            kernel::pipelined_stats(n_a, n_b, n_specs, limits)
        }
        Execution::Tiled(limits)
        | Execution::TiledPipelined(limits)
        | Execution::Parallel { limits, .. } => kernel::tiled_stats(n_a, n_b, n_specs, limits),
    }
}

fn membership(
    a: &MultiRelation,
    b: &MultiRelation,
    mode: SetOpMode,
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    a.schema().require_union_compatible(b.schema())?;
    if a.is_empty() {
        return Ok((
            MultiRelation::empty(a.schema().clone()),
            ExecStats::default(),
        ));
    }
    if b.is_empty() {
        // Intersection with nothing is nothing; difference with nothing is A.
        let out = match mode {
            SetOpMode::Intersect => MultiRelation::empty(a.schema().clone()),
            SetOpMode::Difference => a.clone(),
        };
        return Ok((out, ExecStats::default()));
    }
    if backend.is_closed_form() {
        let hits = if backend == Backend::Columnar {
            crate::columnar::membership_bits(a.rows(), b.rows(), &b.columnar())
        } else {
            kernel::membership_bits(a.rows(), b.rows())
        };
        let keep: Vec<bool> = match mode {
            SetOpMode::Intersect => hits,
            SetOpMode::Difference => hits.into_iter().map(|x| !x).collect(),
        };
        let stats = kernel_membership_stats(exec, a.len(), b.len(), a.arity());
        return Ok((a.filter_by_index(|i| keep[i]), stats));
    }
    let (keep, stats) = match exec {
        Execution::Marching => {
            let out = IntersectionArray::new(a.arity()).run(a.rows(), b.rows(), mode)?;
            (out.keep, out.stats)
        }
        Execution::FixedOperand => {
            let out = FixedOperandArray::preload(b.rows()).run(a.rows(), mode)?;
            (out.keep, out.stats)
        }
        Execution::Tiled(limits) => {
            tiling::membership_tiled(a.rows(), b.rows(), mode, limits, |_, _| true)?
        }
        Execution::TiledPipelined(limits) if limits.max_cols >= a.arity() => {
            let ops_eq = vec![CompareOp::Eq; a.arity()];
            let out =
                tiling::t_matrix_tiled_pipelined(a.rows(), b.rows(), &ops_eq, limits, |_, _| true)?;
            let t = out.t.row_ors();
            let keep = match mode {
                SetOpMode::Intersect => t,
                SetOpMode::Difference => t.into_iter().map(|x| !x).collect(),
            };
            (keep, out.stats)
        }
        Execution::TiledPipelined(limits) => {
            // Column splitting required: fall back to drain-per-tile.
            tiling::membership_tiled(a.rows(), b.rows(), mode, limits, |_, _| true)?
        }
        Execution::Parallel { limits, threads } => crate::executor::membership_tiled_parallel(
            a.rows(),
            b.rows(),
            mode,
            limits,
            threads,
            |_, _| true,
        )?,
    };
    Ok((a.filter_by_index(|i| keep[i]), stats))
}

/// `C = A ∩ B` (§4). Requires union-compatibility.
pub fn intersect(a: &MultiRelation, b: &MultiRelation, exec: Execution) -> Result<OpResult> {
    membership(a, b, SetOpMode::Intersect, exec, Backend::Sim)
}

/// [`intersect`] on an explicit [`Backend`].
pub fn intersect_with(
    a: &MultiRelation,
    b: &MultiRelation,
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    membership(a, b, SetOpMode::Intersect, exec, backend)
}

/// `C = A - B` (§4.3). Requires union-compatibility.
pub fn difference(a: &MultiRelation, b: &MultiRelation, exec: Execution) -> Result<OpResult> {
    membership(a, b, SetOpMode::Difference, exec, Backend::Sim)
}

/// [`difference`] on an explicit [`Backend`].
pub fn difference_with(
    a: &MultiRelation,
    b: &MultiRelation,
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    membership(a, b, SetOpMode::Difference, exec, backend)
}

/// Remove-duplicates (§5): turn a multi-relation into a relation, keeping
/// each tuple's first occurrence.
pub fn dedup(a: &MultiRelation, exec: Execution) -> Result<OpResult> {
    dedup_with(a, exec, Backend::Sim)
}

/// [`dedup`] on an explicit [`Backend`].
pub fn dedup_with(a: &MultiRelation, exec: Execution, backend: Backend) -> Result<OpResult> {
    if a.is_empty() {
        return Ok((a.clone(), ExecStats::default()));
    }
    if backend.is_closed_form() {
        // The §5 array compares A to itself with the strict-lower-triangle
        // seed: a row is dropped iff an earlier equal row exists.
        let dup = if backend == Backend::Columnar {
            crate::columnar::duplicate_bits(a.rows(), &a.columnar())
        } else {
            kernel::duplicate_bits(a.rows())
        };
        let stats = kernel_membership_stats(exec, a.len(), a.len(), a.arity());
        return Ok((a.filter_by_index(|i| !dup[i]), stats));
    }
    let (dup_flags, stats) = match exec {
        Execution::Marching => {
            let out = RemoveDuplicatesArray::new(a.arity()).run(a.rows())?;
            // RemoveDuplicatesArray already returns keep flags.
            return Ok((a.filter_by_index(|i| out.keep[i]), out.stats));
        }
        Execution::FixedOperand => {
            let out = FixedOperandArray::preload(a.rows()).run_masked(
                a.rows(),
                SetOpMode::Difference,
                |i, j| i > j,
            )?;
            return Ok((a.filter_by_index(|i| out.keep[i]), out.stats));
        }
        Execution::Tiled(limits) => {
            tiling::membership_tiled(a.rows(), a.rows(), SetOpMode::Intersect, limits, |i, j| {
                i > j
            })?
        }
        Execution::TiledPipelined(limits) if limits.max_cols >= a.arity() => {
            let ops_eq = vec![CompareOp::Eq; a.arity()];
            let out =
                tiling::t_matrix_tiled_pipelined(a.rows(), a.rows(), &ops_eq, limits, |i, j| {
                    i > j
                })?;
            (out.t.row_ors(), out.stats)
        }
        Execution::TiledPipelined(limits) => {
            tiling::membership_tiled(a.rows(), a.rows(), SetOpMode::Intersect, limits, |i, j| {
                i > j
            })?
        }
        Execution::Parallel { limits, threads } => crate::executor::membership_tiled_parallel(
            a.rows(),
            a.rows(),
            SetOpMode::Intersect,
            limits,
            threads,
            |i, j| i > j,
        )?,
    };
    // Tiled path returns "has an earlier duplicate" flags in intersect mode.
    Ok((a.filter_by_index(|i| !dup_flags[i]), stats))
}

/// `C = A ∪ B` (§5): remove-duplicates over the concatenation `A + B`.
pub fn union(a: &MultiRelation, b: &MultiRelation, exec: Execution) -> Result<OpResult> {
    union_with(a, b, exec, Backend::Sim)
}

/// [`union`] on an explicit [`Backend`].
pub fn union_with(
    a: &MultiRelation,
    b: &MultiRelation,
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    let concat = a.concat(b)?;
    dedup_with(&concat, exec, backend)
}

/// Projection (§5): strip columns while the tuples are retrieved, then
/// remove duplicates with the array.
pub fn project(a: &MultiRelation, cols: &[usize], exec: Execution) -> Result<OpResult> {
    project_with(a, cols, exec, Backend::Sim)
}

/// [`project`] on an explicit [`Backend`].
pub fn project_with(
    a: &MultiRelation,
    cols: &[usize],
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    let stripped = a.project(cols)?;
    dedup_with(&stripped, exec, backend)
}

/// Join (§6): equi or theta, over one or more column pairs. For pure
/// equi-joins `B`'s copies of the join columns are dropped from the result
/// schema; any theta comparator keeps all columns.
pub fn join(
    a: &MultiRelation,
    b: &MultiRelation,
    specs: &[JoinSpec],
    exec: Execution,
) -> Result<OpResult> {
    join_with(a, b, specs, exec, Backend::Sim)
}

/// [`join`] on an explicit [`Backend`].
pub fn join_with(
    a: &MultiRelation,
    b: &MultiRelation,
    specs: &[JoinSpec],
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    if specs.is_empty() {
        return Err(RelationError::NotUnionCompatible {
            detail: "join requires at least one column pair".into(),
        }
        .into());
    }
    let pure_equi = specs.iter().all(|s| s.op == CompareOp::Eq);
    let schema: Schema = if pure_equi {
        let pairs: Vec<(usize, usize)> = specs.iter().map(|s| (s.col_a, s.col_b)).collect();
        a.schema().join(b.schema(), &pairs)?
    } else {
        for s in specs {
            a.schema().column(s.col_a)?;
            b.schema().column(s.col_b)?;
        }
        a.schema().join(b.schema(), &[])?
    };
    if a.is_empty() || b.is_empty() {
        return Ok((MultiRelation::empty(schema), ExecStats::default()));
    }
    let arr = JoinArray::new(specs.to_vec());
    if backend.is_closed_form() {
        let ops: Vec<CompareOp> = specs.iter().map(|s| s.op).collect();
        // The matrix is independent of the tiling (tiles only partition the
        // pair space); only the host fan-out differs under `Parallel`.
        let t = if backend == Backend::Columnar {
            // Scan B's cached word planes column by column — no key
            // projections are materialized at all.
            let cols_a: Vec<usize> = specs.iter().map(|s| s.col_a).collect();
            let cols_b: Vec<usize> = specs.iter().map(|s| s.col_b).collect();
            let packed = b.columnar();
            if let Execution::Parallel { threads, .. } = exec {
                crate::executor::columnar_t_matrix_parallel(
                    a.rows(),
                    &cols_a,
                    &packed,
                    &cols_b,
                    &ops,
                    threads,
                )
            } else {
                crate::columnar::t_matrix(a.rows(), &cols_a, &packed, &cols_b, &ops)
            }
        } else {
            let a_keys: Vec<Row> = a
                .rows()
                .iter()
                .map(|row| specs.iter().map(|s| row[s.col_a]).collect())
                .collect();
            let b_keys: Vec<Row> = b
                .rows()
                .iter()
                .map(|row| specs.iter().map(|s| row[s.col_b]).collect())
                .collect();
            if let Execution::Parallel { threads, .. } = exec {
                crate::executor::kernel_t_matrix_parallel(&a_keys, &b_keys, &ops, threads)
            } else {
                kernel::t_matrix(&a_keys, &b_keys, &ops, |_, _| true)
            }
        };
        let stats = match exec {
            Execution::Marching => kernel::compare_run_stats(a.len(), b.len(), ops.len()),
            Execution::FixedOperand => kernel::fixed_t_matrix_stats(a.len(), b.len(), ops.len()),
            Execution::TiledPipelined(limits) if limits.max_cols >= ops.len() => {
                kernel::pipelined_stats(a.len(), b.len(), ops.len(), limits)
            }
            Execution::Tiled(limits)
            | Execution::TiledPipelined(limits)
            | Execution::Parallel { limits, .. } => {
                kernel::tiled_stats(a.len(), b.len(), ops.len(), limits)
            }
        };
        let rows = arr.assemble(a.rows(), b.rows(), &t);
        return Ok((MultiRelation::new(schema, rows)?, stats));
    }
    let (t, stats) = match exec {
        Execution::Marching => {
            let out = arr.t_matrix(a.rows(), b.rows())?;
            (out.t, out.stats)
        }
        Execution::FixedOperand => {
            let b_keys: Vec<Row> = b
                .rows()
                .iter()
                .map(|row| specs.iter().map(|s| row[s.col_b]).collect())
                .collect();
            let a_keys: Vec<Row> = a
                .rows()
                .iter()
                .map(|row| specs.iter().map(|s| row[s.col_a]).collect())
                .collect();
            let ops: Vec<CompareOp> = specs.iter().map(|s| s.op).collect();
            FixedOperandArray::preload(&b_keys).t_matrix(&a_keys, &ops)?
        }
        Execution::Tiled(limits)
        | Execution::TiledPipelined(limits)
        | Execution::Parallel { limits, .. } => {
            let a_keys: Vec<Row> = a
                .rows()
                .iter()
                .map(|row| specs.iter().map(|s| row[s.col_a]).collect())
                .collect();
            let b_keys: Vec<Row> = b
                .rows()
                .iter()
                .map(|row| specs.iter().map(|s| row[s.col_b]).collect())
                .collect();
            let ops: Vec<CompareOp> = specs.iter().map(|s| s.op).collect();
            let pipelined =
                matches!(exec, Execution::TiledPipelined(_)) && limits.max_cols >= ops.len();
            let out = if pipelined {
                tiling::t_matrix_tiled_pipelined(&a_keys, &b_keys, &ops, limits, |_, _| true)?
            } else if let Execution::Parallel { threads, .. } = exec {
                crate::executor::t_matrix_tiled_parallel(
                    &a_keys,
                    &b_keys,
                    &ops,
                    limits,
                    threads,
                    |_, _| true,
                )?
            } else {
                tiling::t_matrix_tiled(&a_keys, &b_keys, &ops, limits, |_, _| true)?
            };
            (out.t, out.stats)
        }
    };
    let rows = arr.assemble(a.rows(), b.rows(), &t);
    Ok((MultiRelation::new(schema, rows)?, stats))
}

/// Selection (restriction): keep the tuples of `a` satisfying every
/// predicate. The predicates are resident in a one-row §8-style array and
/// the relation streams through (see [`crate::select`]); `exec` is accepted
/// for interface uniformity but selection always uses its dedicated array.
pub fn select(
    a: &MultiRelation,
    predicates: &[crate::select::Predicate],
    exec: Execution,
) -> Result<OpResult> {
    select_with(a, predicates, exec, Backend::Sim)
}

/// [`select`] on an explicit [`Backend`].
pub fn select_with(
    a: &MultiRelation,
    predicates: &[crate::select::Predicate],
    _exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    if predicates.is_empty() {
        return Err(RelationError::EmptyProjection.into());
    }
    for p in predicates {
        a.schema().column(p.col)?;
    }
    if a.is_empty() {
        return Ok((a.clone(), ExecStats::default()));
    }
    if backend.is_closed_form() {
        let keep: Vec<bool> = if backend == Backend::Columnar {
            crate::columnar::select_bits(&a.columnar(), predicates)
        } else {
            a.rows()
                .iter()
                .map(|row| predicates.iter().all(|p| p.eval(row)))
                .collect()
        };
        // The selection array is a one-row fixed-operand array: the
        // predicate constants resident, the relation streaming through.
        let stats = kernel::fixed_t_matrix_stats(a.len(), 1, predicates.len());
        return Ok((a.filter_by_index(|i| keep[i]), stats));
    }
    let arr = crate::select::SelectionArray::new(predicates.to_vec());
    let (keep, stats) = arr.run(a.rows())?;
    Ok((a.filter_by_index(|i| keep[i]), stats))
}

/// Relational division (§7), restricted case: binary dividend `A`, unary
/// divisor `B`. `key` is the quotient column of `A` (the paper's `A1`),
/// `ca` the column compared against `B`'s column `cb`.
///
/// The distinct dividend keys are identified with the remove-duplicates
/// array first (as the paper suggests), then pre-loaded into the division
/// array; the two runs' statistics are merged sequentially.
pub fn divide_binary(
    a: &MultiRelation,
    key: usize,
    ca: usize,
    b: &MultiRelation,
    cb: usize,
    exec: Execution,
) -> Result<OpResult> {
    divide_binary_with(a, key, ca, b, cb, exec, Backend::Sim)
}

/// [`divide_binary`] on an explicit [`Backend`].
pub fn divide_binary_with(
    a: &MultiRelation,
    key: usize,
    ca: usize,
    b: &MultiRelation,
    cb: usize,
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    a.schema().column(key)?;
    a.schema().column(ca)?;
    b.schema().column(cb)?;
    let schema = a.schema().project(&[key])?;
    if a.is_empty() {
        return Ok((MultiRelation::empty(schema), ExecStats::default()));
    }
    // Step 1: distinct keys via the remove-duplicates machinery.
    let key_col = a.project(&[key])?;
    let (distinct, mut stats) = dedup_with(&key_col, exec, backend)?;
    let keys: Vec<Elem> = distinct.rows().iter().map(|r| r[0]).collect();
    // Step 2: the division array proper.
    let pairs: Vec<(Elem, Elem)> = a.rows().iter().map(|r| (r[key], r[ca])).collect();
    let divisor: Vec<Elem> = b.rows().iter().map(|r| r[cb]).collect();
    let rows: Vec<Row> = if backend.is_closed_form() {
        let (flags, hits) = if backend == Backend::Columnar {
            crate::columnar::quotient_flags(&pairs, &keys, &divisor)
        } else {
            kernel::quotient_flags(&pairs, &keys, &divisor)
        };
        stats.merge_sequential(&kernel::division_stats(
            pairs.len(),
            keys.len(),
            divisor.len(),
            hits,
        ));
        keys.iter()
            .zip(&flags)
            .filter(|&(_, &f)| f)
            .map(|(&k, _)| vec![k])
            .collect()
    } else {
        let out = DivisionArray.divide_with_keys(&pairs, &keys, &divisor, false)?;
        stats.merge_sequential(&out.stats);
        out.quotient.iter().map(|&x| vec![x]).collect()
    };
    Ok((MultiRelation::new(schema, rows)?, stats))
}

/// General relational division `C = A ÷ B` over column lists (§7: "the
/// extension from this to the general case is straightforward").
///
/// Multi-column keys and values are dictionary-encoded into composite
/// integers host-side (the same §2.3 trick that turns any domain into
/// integers), then the binary/unary division array is applied.
pub fn divide(
    a: &MultiRelation,
    ca: &[usize],
    b: &MultiRelation,
    cb: &[usize],
    exec: Execution,
) -> Result<OpResult> {
    divide_with(a, ca, b, cb, exec, Backend::Sim)
}

/// [`divide`] on an explicit [`Backend`].
pub fn divide_with(
    a: &MultiRelation,
    ca: &[usize],
    b: &MultiRelation,
    cb: &[usize],
    exec: Execution,
    backend: Backend,
) -> Result<OpResult> {
    if ca.len() != cb.len() || ca.is_empty() {
        return Err(RelationError::NotUnionCompatible {
            detail: format!(
                "division column lists have lengths {} vs {}",
                ca.len(),
                cb.len()
            ),
        }
        .into());
    }
    for &c in ca {
        a.schema().column(c)?;
    }
    for &c in cb {
        b.schema().column(c)?;
    }
    let key_cols: Vec<usize> = (0..a.arity()).filter(|k| !ca.contains(k)).collect();
    if key_cols.is_empty() {
        return Err(RelationError::EmptyProjection.into());
    }
    let schema = a.schema().project(&key_cols)?;
    if a.is_empty() {
        return Ok((MultiRelation::empty(schema), ExecStats::default()));
    }
    // Single compared column: the multi-key division array (§7 general
    // case) compares the composite key entirely in hardware.
    if ca.len() == 1 {
        let rows: Vec<Row> = a
            .rows()
            .iter()
            .map(|row| {
                let mut r: Row = key_cols.iter().map(|&c| row[c]).collect();
                r.push(row[ca[0]]);
                r
            })
            .collect();
        let divisor: Vec<Elem> = b.rows().iter().map(|r| r[cb[0]]).collect();
        if backend.is_closed_form() {
            let kw = key_cols.len();
            // First-occurrence distinct composite keys, as the array's
            // pre-load step identifies them.
            let mut keys: Vec<Row> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for row in &rows {
                if seen.insert(row[..kw].to_vec()) {
                    keys.push(row[..kw].to_vec());
                }
            }
            let (flags, hits) = if backend == Backend::Columnar {
                let packed = systolic_relation::ColumnarRelation::from_rows(&keys, kw);
                crate::columnar::quotient_flags_multi(&rows, &keys, &packed, kw, &divisor)
            } else {
                kernel::quotient_flags_multi(&rows, &keys, kw, &divisor)
            };
            let stats =
                kernel::division_multi_stats(rows.len(), keys.len(), kw, divisor.len(), hits);
            let quotient: Vec<Row> = keys
                .into_iter()
                .zip(&flags)
                .filter(|&(_, &f)| f)
                .map(|(k, _)| k)
                .collect();
            return Ok((MultiRelation::new(schema, quotient)?, stats));
        }
        let out =
            crate::division::DivisionArrayMulti::new(key_cols.len()).divide(&rows, &divisor)?;
        return Ok((MultiRelation::new(schema, out.quotient)?, out.stats));
    }
    // Composite encoding: every distinct key-projection / value-projection
    // row becomes one integer.
    let mut encode = CompositeEncoder::default();
    let enc_rows: Vec<Row> = a
        .rows()
        .iter()
        .map(|row| {
            let k: Row = key_cols.iter().map(|&c| row[c]).collect();
            let v: Row = ca.iter().map(|&c| row[c]).collect();
            vec![encode.key(&k), encode.value(&v)]
        })
        .collect();
    let enc_divisor: Vec<Row> = b
        .rows()
        .iter()
        .map(|row| {
            let v: Row = cb.iter().map(|&c| row[c]).collect();
            vec![encode.value(&v)]
        })
        .collect();
    let enc_a = MultiRelation::new(
        Schema::uniform(2, systolic_relation::DomainId(usize::MAX)),
        enc_rows,
    )?;
    let enc_b = MultiRelation::new(
        Schema::uniform(1, systolic_relation::DomainId(usize::MAX)),
        enc_divisor,
    )?;
    let (quotient, stats) = divide_binary_with(&enc_a, 0, 1, &enc_b, 0, exec, backend)?;
    let rows: Vec<Row> = quotient
        .rows()
        .iter()
        .map(|r| encode.decode_key(r[0]).to_vec())
        .collect();
    Ok((MultiRelation::new(schema, rows)?, stats))
}

/// Interning encoder mapping projection rows to composite integer codes.
#[derive(Default)]
struct CompositeEncoder {
    keys: Vec<Row>,
    key_index: std::collections::HashMap<Row, Elem>,
    values: std::collections::HashMap<Row, Elem>,
}

impl CompositeEncoder {
    fn key(&mut self, row: &[Elem]) -> Elem {
        if let Some(&code) = self.key_index.get(row) {
            return code;
        }
        let code = self.keys.len() as Elem;
        self.keys.push(row.to_vec());
        self.key_index.insert(row.to_vec(), code);
        code
    }

    fn value(&mut self, row: &[Elem]) -> Elem {
        let next = self.values.len() as Elem;
        *self.values.entry(row.to_vec()).or_insert(next)
    }

    fn decode_key(&self, code: Elem) -> &[Elem] {
        &self.keys[code as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use systolic_baseline::{nested_loop, OpCounter};
    use systolic_relation::gen::{self, synth_schema};

    const EXECS: [Execution; 6] = [
        Execution::Marching,
        Execution::FixedOperand,
        Execution::Tiled(ArrayLimits {
            max_a: 4,
            max_b: 3,
            max_cols: 2,
        }),
        Execution::TiledPipelined(ArrayLimits {
            max_a: 4,
            max_b: 3,
            max_cols: 3,
        }),
        Execution::Parallel {
            limits: ArrayLimits {
                max_a: 4,
                max_b: 3,
                max_cols: 2,
            },
            threads: 1,
        },
        Execution::Parallel {
            limits: ArrayLimits {
                max_a: 4,
                max_b: 3,
                max_cols: 2,
            },
            threads: 4,
        },
    ];

    fn multi(m: usize, rows: &[&[Elem]]) -> MultiRelation {
        MultiRelation::new(synth_schema(m), rows.iter().map(|r| r.to_vec()).collect()).unwrap()
    }

    #[test]
    fn set_ops_agree_with_reference_under_every_execution() {
        let mut rng = StdRng::seed_from_u64(555);
        for _ in 0..5 {
            let (a, b) = gen::pair_with_overlap(&mut rng, 11, 9, 2, 0.4);
            let (a, b) = (a.into_multi(), b.into_multi());
            let expect_i = nested_loop::intersect(&a, &b, &mut OpCounter::new()).unwrap();
            let expect_d = nested_loop::difference(&a, &b, &mut OpCounter::new()).unwrap();
            let expect_u = nested_loop::union(&a, &b, &mut OpCounter::new()).unwrap();
            for exec in EXECS {
                let (got, _) = intersect(&a, &b, exec).unwrap();
                assert!(got.set_eq(&expect_i), "{exec:?} intersection");
                let (got, _) = difference(&a, &b, exec).unwrap();
                assert!(got.set_eq(&expect_d), "{exec:?} difference");
                let (got, _) = union(&a, &b, exec).unwrap();
                assert!(got.set_eq(&expect_u), "{exec:?} union");
            }
        }
    }

    #[test]
    fn dedup_and_project_agree_with_reference_under_every_execution() {
        let mut rng = StdRng::seed_from_u64(556);
        let m = gen::with_duplicates(&mut rng, 7, 3, 3);
        let expect = nested_loop::dedup(&m, &mut OpCounter::new());
        let expect_p = nested_loop::project(&m, &[0, 2], &mut OpCounter::new()).unwrap();
        for exec in EXECS {
            let (got, _) = dedup(&m, exec).unwrap();
            assert_eq!(got.rows(), expect.rows(), "{exec:?} dedup order");
            let (got, _) = project(&m, &[0, 2], exec).unwrap();
            assert!(got.set_eq(&expect_p), "{exec:?} projection");
        }
    }

    #[test]
    fn join_agrees_with_reference_under_every_execution() {
        let mut rng = StdRng::seed_from_u64(557);
        let (a, b, ka, kb) = gen::join_pair(&mut rng, 9, 8, 3, 2, 4, 0.0);
        let expect = nested_loop::equi_join(&a, &b, &[(ka, kb)], &mut OpCounter::new()).unwrap();
        for exec in EXECS {
            let (got, _) = join(&a, &b, &[JoinSpec::eq(ka, kb)], exec).unwrap();
            assert!(got.set_eq(&expect), "{exec:?} join");
            assert_eq!(got.len(), expect.len(), "{exec:?} multiplicity");
        }
    }

    #[test]
    fn theta_join_keeps_all_columns() {
        let a = multi(1, &[&[5], &[1]]);
        let b = multi(1, &[&[3]]);
        let (got, _) = join(
            &a,
            &b,
            &[JoinSpec::theta(0, 0, CompareOp::Gt)],
            Execution::Marching,
        )
        .unwrap();
        assert_eq!(got.rows(), &[vec![5, 3]]);
        let expect =
            nested_loop::theta_join(&a, &b, &[(0, 0, CompareOp::Gt)], &mut OpCounter::new())
                .unwrap();
        assert!(got.set_eq(&expect));
    }

    #[test]
    fn division_agrees_with_reference_under_every_execution() {
        let mut rng = StdRng::seed_from_u64(558);
        let (a, b, expected) = gen::division_instance(&mut rng, 8, 3, 3);
        for exec in EXECS {
            let (got, _) = divide_binary(&a, 0, 1, &b, 0, exec).unwrap();
            let mut keys: Vec<Elem> = got.rows().iter().map(|r| r[0]).collect();
            keys.sort_unstable();
            assert_eq!(keys, expected, "{exec:?} division");
        }
    }

    #[test]
    fn general_division_with_composite_columns() {
        // A(x1, x2, y): quotient over (x1, x2) pairs.
        let a = multi(
            3,
            &[
                &[1, 1, 10],
                &[1, 1, 11],
                &[2, 2, 10],
                &[1, 2, 10],
                &[1, 2, 11],
            ],
        );
        let b = multi(1, &[&[10], &[11]]);
        let (got, _) = divide(&a, &[2], &b, &[0], Execution::Marching).unwrap();
        let expect = nested_loop::divide(&a, &[2], &b, &[0], &mut OpCounter::new()).unwrap();
        assert!(got.set_eq(&expect));
        assert_eq!(got.arity(), 2);
        assert!(got.contains(&[1, 1]));
        assert!(got.contains(&[1, 2]));
        assert!(!got.contains(&[2, 2]));
    }

    #[test]
    fn empty_relations_short_circuit() {
        let a = multi(1, &[&[1]]);
        let empty = MultiRelation::empty(synth_schema(1));
        let (r, s) = intersect(&a, &empty, Execution::Marching).unwrap();
        assert!(r.is_empty());
        assert_eq!(s.pulses, 0, "no array built for an empty operand");
        let (r, _) = difference(&a, &empty, Execution::Marching).unwrap();
        assert_eq!(r.rows(), a.rows());
        let (r, _) = intersect(&empty, &a, Execution::Marching).unwrap();
        assert!(r.is_empty());
        let (r, _) = dedup(&empty, Execution::Marching).unwrap();
        assert!(r.is_empty());
        let (r, _) = join(&empty, &a, &[JoinSpec::eq(0, 0)], Execution::Marching).unwrap();
        assert!(r.is_empty());
        let (r, _) = divide_binary(&empty, 0, 0, &a, 0, Execution::Marching).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn union_result_is_a_set() {
        let a = multi(1, &[&[1], &[2]]);
        let b = multi(1, &[&[2], &[2], &[3]]);
        let (r, _) = union(&a, &b, Execution::Marching).unwrap();
        assert!(r.is_set());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn join_without_specs_is_an_error() {
        let a = multi(1, &[&[1]]);
        assert!(join(&a, &a, &[], Execution::Marching).is_err());
    }

    #[test]
    fn select_filters_and_validates_columns() {
        use crate::select::Predicate;
        let a = multi(2, &[&[1, 10], &[2, 20], &[3, 30]]);
        let (kept, stats) = select(
            &a,
            &[Predicate::new(1, CompareOp::Gt, 10)],
            Execution::Marching,
        )
        .unwrap();
        assert_eq!(kept.rows(), &[vec![2, 20], vec![3, 30]]);
        assert!(stats.pulses > 0);
        // Out-of-range column and empty predicate list are errors.
        assert!(select(
            &a,
            &[Predicate::new(9, CompareOp::Eq, 0)],
            Execution::Marching
        )
        .is_err());
        assert!(select(&a, &[], Execution::Marching).is_err());
        // Empty input short-circuits.
        let empty = MultiRelation::empty(synth_schema(2));
        let (out, s) = select(
            &empty,
            &[Predicate::new(0, CompareOp::Eq, 1)],
            Execution::Marching,
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(s.pulses, 0);
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_tiled() {
        // Same result rows AND same simulated-hardware stats, any thread
        // count: host parallelism must be invisible to everything the paper
        // measures.
        let mut rng = StdRng::seed_from_u64(559);
        let (a, b) = gen::pair_with_overlap(&mut rng, 14, 11, 2, 0.4);
        let (a, b) = (a.into_multi(), b.into_multi());
        let limits = ArrayLimits::new(4, 3, 2);
        let (seq, seq_stats) = intersect(&a, &b, Execution::Tiled(limits)).unwrap();
        let (seq_j, seq_j_stats) =
            join(&a, &b, &[JoinSpec::eq(0, 0)], Execution::Tiled(limits)).unwrap();
        for threads in [1, 4] {
            let exec = Execution::Parallel { limits, threads };
            let (par, par_stats) = intersect(&a, &b, exec).unwrap();
            assert_eq!(par.rows(), seq.rows(), "{threads} threads");
            assert_eq!(par_stats, seq_stats, "{threads} threads");
            let (par_j, par_j_stats) = join(&a, &b, &[JoinSpec::eq(0, 0)], exec).unwrap();
            assert_eq!(par_j.rows(), seq_j.rows(), "{threads} threads join");
            assert_eq!(par_j_stats, seq_j_stats, "{threads} threads join");
        }
    }

    #[test]
    fn closed_form_backends_are_bit_identical_across_every_execution() {
        // The tentpole invariant at the ops layer: same result rows, same
        // ExecStats, for every operator under every execution strategy —
        // for BOTH closed-form backends (row kernels and columnar scans).
        let mut rng = StdRng::seed_from_u64(600);
        let (a, b) = gen::pair_with_overlap(&mut rng, 13, 10, 2, 0.4);
        let (a, b) = (a.into_multi(), b.into_multi());
        let dupes = gen::with_duplicates(&mut rng, 9, 3, 3);
        let (da, db, _) = gen::division_instance(&mut rng, 8, 3, 3);
        for backend in [Backend::Kernel, Backend::Columnar] {
            for exec in EXECS {
                let sim = intersect(&a, &b, exec).unwrap();
                let fast = intersect_with(&a, &b, exec, backend).unwrap();
                assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} {exec:?} intersect");
                assert_eq!(fast.1, sim.1, "{backend} {exec:?} intersect stats");
                let sim = difference(&a, &b, exec).unwrap();
                let fast = difference_with(&a, &b, exec, backend).unwrap();
                assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} {exec:?} difference");
                assert_eq!(fast.1, sim.1, "{backend} {exec:?} difference stats");
                let sim = union(&a, &b, exec).unwrap();
                let fast = union_with(&a, &b, exec, backend).unwrap();
                assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} {exec:?} union");
                assert_eq!(fast.1, sim.1, "{backend} {exec:?} union stats");
                let sim = dedup(&dupes, exec).unwrap();
                let fast = dedup_with(&dupes, exec, backend).unwrap();
                assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} {exec:?} dedup");
                assert_eq!(fast.1, sim.1, "{backend} {exec:?} dedup stats");
                let sim = project(&dupes, &[0, 2], exec).unwrap();
                let fast = project_with(&dupes, &[0, 2], exec, backend).unwrap();
                assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} {exec:?} project");
                assert_eq!(fast.1, sim.1, "{backend} {exec:?} project stats");
                let specs = [JoinSpec::eq(0, 0), JoinSpec::theta(1, 1, CompareOp::Le)];
                let sim = join(&a, &b, &specs, exec).unwrap();
                let fast = join_with(&a, &b, &specs, exec, backend).unwrap();
                assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} {exec:?} join");
                assert_eq!(fast.1, sim.1, "{backend} {exec:?} join stats");
                let sim = divide_binary(&da, 0, 1, &db, 0, exec).unwrap();
                let fast = divide_binary_with(&da, 0, 1, &db, 0, exec, backend).unwrap();
                assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} {exec:?} divide");
                assert_eq!(fast.1, sim.1, "{backend} {exec:?} divide stats");
            }
            // Selection and general (multi-column) division ignore the
            // strategy.
            use crate::select::Predicate;
            let preds = [
                Predicate::new(0, CompareOp::Gt, 2),
                Predicate::new(1, CompareOp::Ne, 5),
            ];
            let sim = select(&a, &preds, Execution::Marching).unwrap();
            let fast = select_with(&a, &preds, Execution::Marching, backend).unwrap();
            assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} select rows");
            assert_eq!(fast.1, sim.1, "{backend} select stats");
            let wide = multi(
                3,
                &[
                    &[1, 1, 10],
                    &[1, 1, 11],
                    &[2, 2, 10],
                    &[1, 2, 10],
                    &[1, 2, 11],
                ],
            );
            let wdiv = multi(1, &[&[10], &[11]]);
            let sim = divide(&wide, &[2], &wdiv, &[0], Execution::Marching).unwrap();
            let fast = divide_with(&wide, &[2], &wdiv, &[0], Execution::Marching, backend).unwrap();
            assert_eq!(fast.0.rows(), sim.0.rows(), "{backend} multi-divide rows");
            assert_eq!(fast.1, sim.1, "{backend} multi-divide stats");
        }
    }

    #[test]
    fn prices_match_actual_run_stats_across_every_execution() {
        // The re-pricing invariant: for every shape-pure operator, the
        // price_* functions reproduce the exact ExecStats an actual run
        // produces — including the empty-input short-circuits.
        use crate::select::Predicate;
        let mut rng = StdRng::seed_from_u64(601);
        let (a, b) = gen::pair_with_overlap(&mut rng, 13, 10, 2, 0.4);
        let (a, b) = (a.into_multi(), b.into_multi());
        let dupes = gen::with_duplicates(&mut rng, 9, 3, 3);
        let empty = MultiRelation::empty(synth_schema(2));
        for exec in EXECS {
            let (n_a, n_b, m) = (a.len(), b.len(), a.arity());
            let got = intersect(&a, &b, exec).unwrap().1;
            assert_eq!(
                price_membership(exec, n_a, n_b, m),
                got,
                "{exec:?} intersect"
            );
            let got = difference(&a, &b, exec).unwrap().1;
            assert_eq!(
                price_membership(exec, n_a, n_b, m),
                got,
                "{exec:?} difference"
            );
            let got = union(&a, &b, exec).unwrap().1;
            assert_eq!(price_union(exec, n_a, n_b, m), got, "{exec:?} union");
            let got = dedup(&dupes, exec).unwrap().1;
            assert_eq!(
                price_dedup(exec, dupes.len(), dupes.arity()),
                got,
                "{exec:?} dedup"
            );
            let got = project(&dupes, &[0, 2], exec).unwrap().1;
            assert_eq!(price_project(exec, dupes.len(), 2), got, "{exec:?} project");
            let specs = [JoinSpec::eq(0, 0)];
            let got = join(&a, &b, &specs, exec).unwrap().1;
            assert_eq!(price_join(exec, n_a, n_b, 1), got, "{exec:?} join");
            // Empty inputs charge nothing, in price and in run alike.
            let got = intersect(&empty, &b, exec).unwrap().1;
            assert_eq!(price_membership(exec, 0, n_b, m), got, "{exec:?} empty");
            assert_eq!(price_membership(exec, 0, n_b, m), ExecStats::default());
            let got = join(&a, &empty, &specs, exec).unwrap().1;
            assert_eq!(price_join(exec, n_a, 0, 1), got, "{exec:?} empty join");
        }
        let preds = [Predicate::new(0, CompareOp::Gt, 2)];
        let got = select(&a, &preds, Execution::Marching).unwrap().1;
        assert_eq!(price_select(a.len(), 1), got, "select");
        let got = select(&empty, &preds, Execution::Marching).unwrap().1;
        assert_eq!(price_select(0, 1), got, "empty select");
    }

    #[test]
    fn stats_report_hardware_shape() {
        let a = multi(2, &[&[1, 1], &[2, 2], &[3, 3]]);
        let b = multi(2, &[&[2, 2]]);
        let (_, s) = intersect(&a, &b, Execution::Marching).unwrap();
        // (3 + 1 - 1) rows x (2 + 1) columns.
        assert_eq!(s.cells, 9);
        assert!(s.pulses > 0);
        assert!(s.utilisation() > 0.0);
    }
}
