//! Arrays for removal of duplicate tuples (§5), and the union and
//! projection operations built on them.
//!
//! "Instead of comparing relation A to relation B, we compare relation A to
//! itself, by feeding it into both the top and bottom of the array. ... For
//! those t_{ij} on the main diagonal and in the upper triangle (i <= j), we
//! set t_init to FALSE. ... To produce A', we eliminate from A any row where
//! the resulting t_i is TRUE, and keep the rest."

use systolic_fabric::Elem;

use crate::error::Result;
use crate::intersection::{IntersectionArray, MembershipOutcome, SetOpMode};

/// The remove-duplicates array: the intersection/difference hardware with a
/// triangle-masked `t` input ("the main 'hardware' — the comparison array —
/// is sufficiently general that it need not be changed at all", §4.3).
#[derive(Debug, Clone, Copy)]
pub struct RemoveDuplicatesArray {
    /// Tuple width.
    pub m: usize,
}

impl RemoveDuplicatesArray {
    /// A remove-duplicates array for tuples of width `m`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "tuple width must be positive");
        RemoveDuplicatesArray { m }
    }

    /// Run over a multi-relation's rows. In the returned outcome, `keep[i]`
    /// is TRUE iff `a_i` is the *first* occurrence of its tuple (the §5
    /// strategy: "remove all tuples that are preceded by another tuple that
    /// equals it").
    pub fn run(&self, rows: &[Vec<Elem>]) -> Result<MembershipOutcome> {
        // Difference mode: keep rows whose accumulated t_i (= OR of the
        // strictly-lower-triangle comparisons) is FALSE — "this is the
        // opposite of the intersection operation".
        IntersectionArray::new(self.m).run_masked(
            rows,
            rows,
            SetOpMode::Difference,
            |i, j| i > j,
            false,
        )
    }

    /// Run over the concatenation `A + B` — the union operation (§5:
    /// `C = remove-duplicates(A + B)`). Returns keep-flags over the
    /// concatenated row sequence.
    pub fn run_union(&self, a: &[Vec<Elem>], b: &[Vec<Elem>]) -> Result<MembershipOutcome> {
        let mut rows: Vec<Vec<Elem>> = Vec::with_capacity(a.len() + b.len());
        rows.extend(a.iter().cloned());
        rows.extend(b.iter().cloned());
        self.run(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[&[Elem]]) -> Vec<Vec<Elem>> {
        vals.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn keeps_first_occurrence_of_each_tuple() {
        // The §5 example: if a_6, a_10 and a_13 are equal, remove a_10 and
        // a_13, keeping a_6.
        let input = rows(&[&[5], &[7], &[5], &[9], &[5], &[7]]);
        let out = RemoveDuplicatesArray::new(1).run(&input).unwrap();
        assert_eq!(out.keep, vec![true, true, false, true, false, false]);
    }

    #[test]
    fn duplicate_free_input_is_untouched() {
        let input = rows(&[&[1, 2], &[3, 4], &[5, 6]]);
        let out = RemoveDuplicatesArray::new(2).run(&input).unwrap();
        assert!(out.keep.iter().all(|&k| k));
    }

    #[test]
    fn all_equal_input_keeps_exactly_one() {
        let four: &[Elem] = &[4, 4];
        let input = rows(&[four; 7]);
        let out = RemoveDuplicatesArray::new(2).run(&input).unwrap();
        assert_eq!(out.keep.iter().filter(|&&k| k).count(), 1);
        assert!(out.keep[0], "the kept occurrence is the first");
    }

    #[test]
    fn union_keeps_shared_tuples_once() {
        let a = rows(&[&[1], &[2]]);
        let b = rows(&[&[2], &[3]]);
        let out = RemoveDuplicatesArray::new(1).run_union(&a, &b).unwrap();
        // Concatenation order: 1, 2, 2, 3 — the second 2 is removed.
        assert_eq!(out.keep, vec![true, true, false, true]);
    }

    #[test]
    fn union_with_internal_duplicates_in_b() {
        let a = rows(&[&[1]]);
        let b = rows(&[&[4], &[4], &[1]]);
        let out = RemoveDuplicatesArray::new(1).run_union(&a, &b).unwrap();
        assert_eq!(out.keep, vec![true, true, false, false]);
    }

    #[test]
    fn agrees_with_reference_dedup_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use systolic_baseline::{nested_loop, OpCounter};
        use systolic_relation::gen;
        let mut rng = StdRng::seed_from_u64(31337);
        for _ in 0..8 {
            let multi = gen::with_duplicates(&mut rng, 8, 3, 2);
            let out = RemoveDuplicatesArray::new(2).run(multi.rows()).unwrap();
            let expect = nested_loop::dedup(&multi, &mut OpCounter::new());
            let kept = multi.filter_by_index(|i| out.keep[i]);
            assert_eq!(kept.rows(), expect.rows(), "same rows in the same order");
        }
    }

    #[test]
    fn singleton_input() {
        let out = RemoveDuplicatesArray::new(1).run(&rows(&[&[42]])).unwrap();
        assert_eq!(out.keep, vec![true]);
    }
}
