//! Per-server metric instruments and the `METRICS` exposition.
//!
//! Request-level series live in a registry owned by the server instance (so
//! two servers in one process — common in tests — don't mix request
//! metrics), while substrate series (grid, executor, machine) accumulate in
//! the process-global registry. The `METRICS` wire verb renders both.

use std::sync::Arc;

use systolic_telemetry::metrics::{
    Counter, Gauge, Histogram, Registry, LATENCY_BOUNDS_NS, SIZE_BOUNDS,
};

/// Instruments for one server instance.
pub(crate) struct ServerMetrics {
    registry: Registry,
    /// End-to-end request latency (receive -> response written), host ns.
    pub(crate) latency: Arc<Histogram>,
    /// Queries admitted per merged batch.
    pub(crate) batch_size: Arc<Histogram>,
    /// Connections waiting for a worker right now.
    pub(crate) queue_depth: Arc<Gauge>,
    /// High-water mark of the connection queue.
    pub(crate) queue_depth_hwm: Arc<Gauge>,
    /// Queries answered (including failed ones).
    pub(crate) queries: Arc<Counter>,
    /// Tables loaded.
    pub(crate) loads: Arc<Counter>,
    /// Merged batch schedules admitted.
    pub(crate) batches: Arc<Counter>,
    /// Connections refused with `ERR overloaded`.
    pub(crate) refused: Arc<Counter>,
    /// Requests that hit the per-request timeout.
    pub(crate) timeouts: Arc<Counter>,
    /// Queries slower than the configured slow-query threshold.
    pub(crate) slow_queries: Arc<Counter>,
    /// Queries answered via the shard router (fan-out + merge + re-price).
    pub(crate) sharded: Arc<Counter>,
    /// Queries the router declined or failed, served by the local system.
    pub(crate) shard_fallback: Arc<Counter>,
    /// Queries whose optimized plan was served from the plan cache.
    pub(crate) plan_cache_hits: Arc<Counter>,
    /// Queries that went through the full plan compiler.
    pub(crate) plan_cache_misses: Arc<Counter>,
    /// Batched queries answered by sharing an identical query's slot
    /// (batch-window common-subexpression elimination).
    pub(crate) cse_hits: Arc<Counter>,
    /// Columnar word-plane packs performed process-wide, synced from the
    /// relation crate's counter at exposition time (ingest-time packs and
    /// lazy packs both count; a low number relative to loads means the
    /// zero-detour path is doing its job).
    pub(crate) columnar_builds: Arc<Gauge>,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        let latency = registry.histogram(
            "sdb_request_latency_ns",
            "End-to-end request latency in host nanoseconds.",
            LATENCY_BOUNDS_NS,
        );
        let batch_size = registry.histogram(
            "sdb_batch_size",
            "Queries admitted per merged batch schedule.",
            SIZE_BOUNDS,
        );
        let queue_depth = registry.gauge(
            "sdb_queue_depth",
            "Accepted connections currently waiting for a worker.",
        );
        let queue_depth_hwm = registry.gauge(
            "sdb_queue_depth_hwm",
            "High-water mark of the connection wait queue.",
        );
        let queries = registry.counter("sdb_server_queries_total", "Queries answered.");
        let loads = registry.counter("sdb_server_loads_total", "Tables loaded.");
        let batches = registry.counter(
            "sdb_server_batches_total",
            "Merged multi-query schedules admitted.",
        );
        let refused = registry.counter(
            "sdb_server_refused_total",
            "Connections refused with ERR overloaded.",
        );
        let timeouts = registry.counter(
            "sdb_server_timeouts_total",
            "Requests that hit the per-request timeout.",
        );
        let slow_queries = registry.counter(
            "sdb_server_slow_queries_total",
            "Queries slower than the slow-query threshold.",
        );
        let sharded = registry.counter(
            "sdb_server_sharded_total",
            "Queries answered via the shard router.",
        );
        let shard_fallback = registry.counter(
            "sdb_server_shard_fallback_total",
            "Queries the shard router declined, served by the local system.",
        );
        let plan_cache_hits = registry.counter(
            "sdb_plan_cache_hits_total",
            "Queries whose optimized plan came from the plan cache.",
        );
        let plan_cache_misses = registry.counter(
            "sdb_plan_cache_misses_total",
            "Queries compiled by the cost-based planner (cache misses).",
        );
        let cse_hits = registry.counter(
            "sdb_batch_cse_hits_total",
            "Batched queries that shared an identical query's slot.",
        );
        let columnar_builds = registry.gauge(
            "sdb_columnar_builds",
            "Columnar word-plane packs performed by this process (ingest-time and lazy).",
        );
        ServerMetrics {
            registry,
            latency,
            batch_size,
            queue_depth,
            queue_depth_hwm,
            queries,
            loads,
            batches,
            refused,
            timeouts,
            slow_queries,
            sharded,
            shard_fallback,
            plan_cache_hits,
            plan_cache_misses,
            cse_hits,
            columnar_builds,
        }
    }

    /// The backend identity series, `sdb_server_backend_info{backend=...}`:
    /// set to 1 at startup so a scraper can tell whether this server runs
    /// the pulse simulator or the closed-form kernel. RESULT frames are
    /// bit-identical either way; only host speed differs.
    pub(crate) fn backend_info(&self, backend: &str) -> Arc<Counter> {
        self.registry.counter_with(
            "sdb_server_backend_info",
            "1 for the operator backend this server was started with.",
            &[("backend", backend)],
        )
    }

    /// The per-operator simulated-pulse counter (`op` is the §8 operator
    /// label: `intersect`, `join`, ...). Cheap enough for the scheduler
    /// thread; workers never call this.
    pub(crate) fn op_pulses(&self, op: &str) -> Arc<Counter> {
        self.registry.counter_with(
            "sdb_op_pulses_total",
            "Simulated array pulses per relational operator (§8).",
            &[("op", op)],
        )
    }

    /// The per-rule planner rewrite counter
    /// (`sdb_planner_rewrites_total{rule=...}`): how many sites each
    /// algebraic rewrite rule fired on across compiled queries.
    pub(crate) fn rewrite_hits(&self, rule: &str) -> Arc<Counter> {
        self.registry.counter_with(
            "sdb_planner_rewrites_total",
            "Accepted planner rewrite sites per rule.",
            &[("rule", rule)],
        )
    }

    /// Render this server's exposition followed by the process-global one.
    pub(crate) fn exposition(&self) -> String {
        // The relation crate cannot depend on the telemetry registry, so
        // its pack counter is bridged into the exposition here.
        self.columnar_builds
            .set(systolic_relation::columnar::build_count() as f64);
        let mut text = self.registry.render();
        text.push_str(&systolic_telemetry::metrics::global().render());
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_validates_and_contains_both_registries() {
        let m = ServerMetrics::new();
        m.queries.inc();
        m.latency.observe(1_000_000);
        m.batch_size.observe(3);
        m.op_pulses("intersect").add(42);
        // Make sure at least one global series exists.
        systolic_telemetry::metrics::global()
            .counter("sdb_machine_runs_total", "")
            .add(0);
        let text = m.exposition();
        let exp = systolic_telemetry::prom::validate(&text).expect("exposition parses");
        assert_eq!(exp.value("sdb_server_queries_total", ""), Some(1.0));
        assert_eq!(
            exp.value("sdb_op_pulses_total", "{op=\"intersect\"}"),
            Some(42.0)
        );
        assert!(exp.types.contains_key("sdb_request_latency_ns"));
        assert!(exp.types.contains_key("sdb_machine_runs_total"));
    }

    #[test]
    fn two_servers_keep_request_metrics_apart() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.queries.add(5);
        assert_eq!(b.queries.get(), 0);
    }
}
