//! End-to-end query profiles and the flight recorder.
//!
//! A profile lines up the three layers that each claim the same numbers:
//! the analyzer's §8 predictions (tile counts, pulse budgets, row bounds),
//! the machine's actual accounting (pulses, device occupancy, makespan on
//! the simulated clock), and the server's host-side costs (queue wait,
//! lock wait, WAL fsync, buffer-pool traffic). Predicted-vs-actual drift
//! is a first-class field so a budget regression is one comparison away.
//!
//! The two clocks never mix: `steps[].start_ns`/`end_ns` and everything
//! under `actual` are simulated pulse-clock quantities; everything under
//! `host` is wall time. The flight recorder retains the last N profiles in
//! a ring so post-hoc diagnosis (`PROFILES`, the slow-query log, the
//! shutdown Chrome trace) needs no reproduction.

use std::collections::VecDeque;
use std::sync::Mutex;

use systolic_analyzer::Analysis;
use systolic_machine::{Action, Plan};
use systolic_telemetry::batch::SpanData;
use systolic_telemetry::chrome::{ArgValue, ChromeTrace, PID_HOST, PID_SIMULATED};
use systolic_telemetry::json;
use systolic_telemetry::metrics::QuantileSummary;

use crate::locks;
use crate::scheduler::QueryReply;

/// One plan step's predicted-vs-actual row in a [`QueryProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StepProfile {
    /// Step index (position in the compiled plan).
    pub id: usize,
    /// Operator label (`scan(emp)`, `join[1]`, ...).
    pub label: String,
    /// Name the step's result is staged under.
    pub output: String,
    /// Analyzer row bound for this step's output (0 when unaligned).
    pub predicted_rows: u64,
    /// Analyzer §8 tile count (0 for loads/stores).
    pub predicted_tiles: u64,
    /// Analyzer pulse budget (upper estimate; 0 for loads/stores).
    pub predicted_pulses: u64,
    /// Rows the step actually produced.
    pub actual_rows: u64,
    /// Pulses the step actually consumed.
    pub actual_pulses: u64,
    /// Resource that ran the step (`setop0`, `join1`, `mem2`, `disk0`).
    pub device: String,
    /// Step start on the simulated clock, in nanoseconds.
    pub start_ns: u64,
    /// Step end on the simulated clock, in nanoseconds.
    pub end_ns: u64,
}

/// A complete end-to-end query profile (one `PROFILE` frame's payload, one
/// flight-recorder slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QueryProfile {
    /// The query text.
    pub query: String,
    /// Trace id of the serving request span (0 when tracing is off).
    pub trace_id: u64,
    /// Executing backend label (`sim` or `kernel`).
    pub backend: String,
    /// The `ERR` frame, for queries that failed instead of producing
    /// numbers — error profiles still land in the flight recorder.
    pub error: Option<String>,
    /// Analyzer total pulse budget (sound upper bound on `actual_pulses`).
    pub predicted_pulse_budget: u64,
    /// Analyzer total §8 tile count.
    pub predicted_tiles: u64,
    /// Analyzer staged-bytes bound.
    pub predicted_staged_bytes_bound: u64,
    /// Analyzer row bound for the result.
    pub predicted_rows_bound: u64,
    /// Pulses actually consumed (equals the `RESULT` frame's `pulses=`).
    pub actual_pulses: u64,
    /// Physical array invocations.
    pub actual_array_runs: u64,
    /// Simulated makespan in nanoseconds.
    pub actual_makespan_ns: u64,
    /// Bytes delivered by the simulated disks.
    pub actual_disk_bytes: u64,
    /// Maximum simultaneous devices.
    pub actual_concurrency: u64,
    /// Result rows actually produced.
    pub actual_rows: u64,
    /// `predicted_pulse_budget - actual_pulses`; negative means the
    /// analyzer's bound was unsound — the one number a budget regression
    /// cannot hide behind.
    pub drift_pulses: i64,
    /// Host ns the job waited between submission and admission.
    pub queue_wait_ns: u64,
    /// Host ns spent acquiring relation locks.
    pub lock_wait_ns: u64,
    /// Host ns spent write-ahead-logging (0 when read-only or in-memory).
    pub wal_fsync_ns: u64,
    /// Buffer-pool hits over the run (batch-scoped best effort).
    pub pool_hits: u64,
    /// Buffer-pool misses over the same interval.
    pub pool_misses: u64,
    /// Host wall ns for the run that produced the answer.
    pub host_wall_ns: u64,
    /// Server-wide request-latency quantiles at profile time.
    pub latency: QuantileSummary,
    /// Per-plan-step predicted-vs-actual rows.
    pub steps: Vec<StepProfile>,
}

impl QueryProfile {
    /// A profile for a query that failed: the error frame plus identity
    /// fields, all numbers zero.
    pub fn error(query: &str, trace_id: u64, backend: &str, err_frame: &str) -> QueryProfile {
        QueryProfile {
            query: query.to_string(),
            trace_id,
            backend: backend.to_string(),
            error: Some(err_frame.to_string()),
            predicted_pulse_budget: 0,
            predicted_tiles: 0,
            predicted_staged_bytes_bound: 0,
            predicted_rows_bound: 0,
            actual_pulses: 0,
            actual_array_runs: 0,
            actual_makespan_ns: 0,
            actual_disk_bytes: 0,
            actual_concurrency: 0,
            actual_rows: 0,
            drift_pulses: 0,
            queue_wait_ns: 0,
            lock_wait_ns: 0,
            wal_fsync_ns: 0,
            pool_hits: 0,
            pool_misses: 0,
            host_wall_ns: 0,
            latency: QuantileSummary::default(),
            steps: Vec::new(),
        }
    }

    /// Single-line JSON rendering (the `PROFILE` frame payload before
    /// escaping; also one `PROFILES` dump line).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"query\":");
        json::write_str(&mut out, &self.query);
        let _ = write!(out, ",\"trace_id\":{},\"backend\":", self.trace_id);
        json::write_str(&mut out, &self.backend);
        if let Some(err) = &self.error {
            out.push_str(",\"error\":");
            json::write_str(&mut out, err);
        }
        let _ = write!(
            out,
            ",\"predicted\":{{\"pulse_budget\":{},\"tiles\":{},\"staged_bytes_bound\":{},\
             \"rows_bound\":{}}}",
            self.predicted_pulse_budget,
            self.predicted_tiles,
            self.predicted_staged_bytes_bound,
            self.predicted_rows_bound,
        );
        let _ = write!(
            out,
            ",\"actual\":{{\"pulses\":{},\"array_runs\":{},\"makespan_ns\":{},\"disk_bytes\":{},\
             \"concurrency\":{},\"rows\":{}}}",
            self.actual_pulses,
            self.actual_array_runs,
            self.actual_makespan_ns,
            self.actual_disk_bytes,
            self.actual_concurrency,
            self.actual_rows,
        );
        let _ = write!(out, ",\"drift_pulses\":{}", self.drift_pulses);
        let _ = write!(
            out,
            ",\"host\":{{\"queue_wait_ns\":{},\"lock_wait_ns\":{},\"wal_fsync_ns\":{},\
             \"pool_hits\":{},\"pool_misses\":{},\"host_wall_ns\":{}}}",
            self.queue_wait_ns,
            self.lock_wait_ns,
            self.wal_fsync_ns,
            self.pool_hits,
            self.pool_misses,
            self.host_wall_ns,
        );
        let _ = write!(
            out,
            ",\"latency\":{{\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"count\":{}}}",
            self.latency.p50, self.latency.p95, self.latency.p99, self.latency.count,
        );
        out.push_str(",\"steps\":[");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"label\":", s.id);
            json::write_str(&mut out, &s.label);
            out.push_str(",\"output\":");
            json::write_str(&mut out, &s.output);
            out.push_str(",\"device\":");
            json::write_str(&mut out, &s.device);
            let _ = write!(
                out,
                ",\"predicted_rows\":{},\"predicted_tiles\":{},\"predicted_pulses\":{},\
                 \"actual_rows\":{},\"actual_pulses\":{},\"start_ns\":{},\"end_ns\":{}}}",
                s.predicted_rows,
                s.predicted_tiles,
                s.predicted_pulses,
                s.actual_rows,
                s.actual_pulses,
                s.start_ns,
                s.end_ns,
            );
        }
        out.push_str("]}");
        out
    }
}

/// Build a successful query's profile by aligning three views of the same
/// run: the analyzer report (`analysis.nodes[alignment[step.id]]`), the
/// compiled plan (labels, outputs), and the scheduler reply (stats, the
/// solo-accounted timeline, host waits).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build(
    query: &str,
    trace_id: u64,
    backend: &str,
    analysis: Option<&Analysis>,
    alignment: &[usize],
    plan: &Plan,
    reply: &QueryReply,
    rows: u64,
    lock_wait_ns: u64,
    latency: QuantileSummary,
) -> QueryProfile {
    let events = reply.timeline.events();
    let steps = plan
        .steps
        .iter()
        .map(|step| {
            let node = analysis.and_then(|a| alignment.get(step.id).and_then(|&n| a.nodes.get(n)));
            // Each step has a unique timeline signature: ops are the pulsed
            // `"<op> -> <output>"` event on their device, loads the
            // `"receive <output>"` staging event, stores the
            // `"write <name>"` disk event.
            let (label, wanted) = match &step.action {
                Action::Load { relation, .. } => (
                    format!("scan({relation})"),
                    format!("receive {}", step.output),
                ),
                Action::Op { op, .. } => (op.label(), format!(" -> {}", step.output)),
                Action::Store { as_name, .. } => {
                    (format!("store({as_name})"), format!("write {as_name}"))
                }
            };
            let event = events.iter().find(|e| match &step.action {
                Action::Op { .. } => e.label.ends_with(&wanted),
                _ => e.label == wanted,
            });
            StepProfile {
                id: step.id,
                label,
                output: step.output.clone(),
                predicted_rows: node.map_or(0, |n| n.rows_bound),
                predicted_tiles: node.map_or(0, |n| n.tiles),
                predicted_pulses: node.map_or(0, |n| n.pulse_budget),
                actual_rows: reply.step_rows.get(step.id).copied().unwrap_or(0),
                actual_pulses: event.map_or(0, |e| e.pulses),
                device: event.map_or_else(String::new, |e| e.resource.clone()),
                start_ns: event.map_or(0, |e| e.start_ns),
                end_ns: event.map_or(0, |e| e.end_ns),
            }
        })
        .collect();
    let predicted_pulse_budget = analysis.map_or(0, |a| a.pulse_budget);
    QueryProfile {
        query: query.to_string(),
        trace_id,
        backend: backend.to_string(),
        error: None,
        predicted_pulse_budget,
        predicted_tiles: analysis.map_or(0, |a| a.tiles),
        predicted_staged_bytes_bound: analysis.map_or(0, |a| a.staged_bytes_bound),
        predicted_rows_bound: analysis.map_or(0, |a| a.nodes.first().map_or(0, |n| n.rows_bound)),
        actual_pulses: reply.stats.total_pulses,
        actual_array_runs: reply.stats.array_runs,
        actual_makespan_ns: reply.stats.makespan_ns,
        actual_disk_bytes: reply.stats.bytes_from_disk,
        actual_concurrency: reply.stats.max_device_concurrency as u64,
        actual_rows: rows,
        drift_pulses: predicted_pulse_budget as i64 - reply.stats.total_pulses as i64,
        queue_wait_ns: reply.queue_wait_ns,
        lock_wait_ns,
        wal_fsync_ns: reply.wal_fsync_ns,
        pool_hits: reply.pool_hits,
        pool_misses: reply.pool_misses,
        host_wall_ns: reply.host_wall_ns,
        latency,
        steps,
    }
}

/// The always-on ring buffer of recent query profiles.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<QueryProfile>>,
}

impl FlightRecorder {
    /// A recorder retaining up to `capacity` profiles (0 disables it).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
        }
    }

    /// Retain a profile, evicting the oldest beyond capacity.
    pub fn record(&self, profile: QueryProfile) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = locks::lock(&self.ring);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(profile);
    }

    /// JSON lines of every retained profile, newest first (the `PROFILES`
    /// dump order: the query under investigation is almost always recent).
    pub fn dump_json(&self) -> Vec<String> {
        locks::lock(&self.ring)
            .iter()
            .rev()
            .map(QueryProfile::to_json)
            .collect()
    }

    /// Copies of the retained profiles, oldest first.
    pub fn profiles(&self) -> Vec<QueryProfile> {
        locks::lock(&self.ring).iter().cloned().collect()
    }
}

/// Build the server's shutdown Chrome trace on the two-clock pid
/// convention: pid 1 carries the retained profiles' per-step simulated
/// schedule, pid 2 carries every host span — the server's own and the
/// trailer batches shards returned — deduplicated by (trace, span) id so
/// in-process shards (which share the process collector) don't double
/// their spans.
pub(crate) fn server_trace(spans: &[SpanData], profiles: &[QueryProfile]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.set_process_name(PID_SIMULATED, "simulated machine (pulse time)");
    trace.set_process_name(PID_HOST, "server host (wall time)");
    let mut devices: Vec<&str> = profiles
        .iter()
        .flat_map(|p| p.steps.iter().map(|s| s.device.as_str()))
        .filter(|d| !d.is_empty())
        .collect();
    devices.sort_unstable();
    devices.dedup();
    for (tid, device) in devices.iter().enumerate() {
        trace.set_thread_name(PID_SIMULATED, tid as u32 + 1, device);
    }
    for p in profiles {
        for s in &p.steps {
            let Some(tid) = devices.iter().position(|d| *d == s.device) else {
                continue;
            };
            trace.complete(
                PID_SIMULATED,
                tid as u32 + 1,
                &format!("{} -> {}", s.label, s.output),
                s.start_ns,
                s.end_ns.saturating_sub(s.start_ns),
                vec![
                    ("trace_id".to_string(), ArgValue::U64(p.trace_id)),
                    ("pulses".to_string(), ArgValue::U64(s.actual_pulses)),
                ],
            );
        }
    }
    let mut seen = std::collections::HashSet::new();
    let mut threads: Vec<&str> = spans.iter().map(|s| s.thread.as_str()).collect();
    threads.sort_unstable();
    threads.dedup();
    for (tid, thread) in threads.iter().enumerate() {
        trace.set_thread_name(PID_HOST, tid as u32 + 1, thread);
    }
    for span in spans {
        if !seen.insert((span.trace_id, span.span_id)) {
            continue;
        }
        let tid = threads.iter().position(|t| *t == span.thread).unwrap_or(0) as u32 + 1;
        let mut args = vec![
            ("trace_id".to_string(), ArgValue::U64(span.trace_id)),
            ("span_id".to_string(), ArgValue::U64(span.span_id)),
        ];
        if let Some(parent) = span.parent_id {
            args.push(("parent_id".to_string(), ArgValue::U64(parent)));
        }
        for (k, v) in &span.args {
            args.push((k.clone(), ArgValue::Str(v.clone())));
        }
        trace.complete(
            PID_HOST,
            tid,
            &span.name,
            span.start_ns,
            span.end_ns.saturating_sub(span.start_ns),
            args,
        );
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_telemetry::json::Json;

    fn sample_profile() -> QueryProfile {
        QueryProfile {
            query: "scan(emp)".to_string(),
            trace_id: 9,
            backend: "sim".to_string(),
            error: None,
            predicted_pulse_budget: 120,
            predicted_tiles: 4,
            predicted_staged_bytes_bound: 4096,
            predicted_rows_bound: 100,
            actual_pulses: 96,
            actual_array_runs: 2,
            actual_makespan_ns: 5000,
            actual_disk_bytes: 800,
            actual_concurrency: 1,
            actual_rows: 90,
            drift_pulses: 24,
            queue_wait_ns: 10,
            lock_wait_ns: 20,
            wal_fsync_ns: 0,
            pool_hits: 3,
            pool_misses: 1,
            host_wall_ns: 7000,
            latency: QuantileSummary {
                p50: 1,
                p95: 2,
                p99: 3,
                count: 4,
            },
            steps: vec![StepProfile {
                id: 0,
                label: "scan(emp)".to_string(),
                output: "emp@mem".to_string(),
                predicted_rows: 100,
                predicted_tiles: 4,
                predicted_pulses: 120,
                actual_rows: 90,
                actual_pulses: 96,
                device: "mem0".to_string(),
                start_ns: 0,
                end_ns: 900,
            }],
        }
    }

    #[test]
    fn profile_json_is_one_parseable_line() {
        let p = sample_profile();
        let text = p.to_json();
        assert!(!text.contains('\n'));
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("query").and_then(Json::as_str), Some("scan(emp)"));
        assert_eq!(doc.get("trace_id").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get("error"), None);
        let predicted = doc.get("predicted").unwrap();
        assert_eq!(
            predicted.get("pulse_budget").and_then(Json::as_u64),
            Some(120)
        );
        let actual = doc.get("actual").unwrap();
        assert_eq!(actual.get("pulses").and_then(Json::as_u64), Some(96));
        assert_eq!(doc.get("drift_pulses").and_then(Json::as_f64), Some(24.0));
        let host = doc.get("host").unwrap();
        assert_eq!(host.get("lock_wait_ns").and_then(Json::as_u64), Some(20));
        let steps = doc.get("steps").and_then(Json::as_array).unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].get("device").and_then(Json::as_str), Some("mem0"));
    }

    #[test]
    fn error_profiles_carry_the_frame() {
        let p = QueryProfile::error("scan(ghost)", 3, "sim", "ERR machine boom");
        let doc = json::parse(&p.to_json()).unwrap();
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("ERR machine boom")
        );
        assert_eq!(doc.get("trace_id").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn recorder_evicts_oldest_and_dumps_newest_first() {
        let recorder = FlightRecorder::new(2);
        for i in 0..3 {
            let mut p = sample_profile();
            p.query = format!("q{i}");
            recorder.record(p);
        }
        let dump = recorder.dump_json();
        assert_eq!(dump.len(), 2);
        assert!(dump[0].contains("\"q2\""), "{}", dump[0]);
        assert!(dump[1].contains("\"q1\""), "{}", dump[1]);
        let zero = FlightRecorder::new(0);
        zero.record(sample_profile());
        assert!(zero.dump_json().is_empty());
    }

    #[test]
    fn server_traces_dedup_spans_and_track_devices() {
        let span = SpanData {
            name: "server.request".to_string(),
            trace_id: 9,
            span_id: 1,
            parent_id: None,
            start_ns: 0,
            end_ns: 100,
            thread: "worker-0".to_string(),
            args: vec![("query".to_string(), "scan(emp)".to_string())],
        };
        let trace = server_trace(&[span.clone(), span], &[sample_profile()]);
        let doc = json::parse(&trace.to_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let completes: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        // One host span (duplicate removed) + one simulated step.
        assert_eq!(completes.len(), 2);
        let pids: Vec<u64> = completes
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert!(pids.contains(&(PID_SIMULATED as u64)));
        assert!(pids.contains(&(PID_HOST as u64)));
    }
}
