//! A small blocking client for the wire protocol — used by `sdb --connect`,
//! the end-to-end tests, and the throughput benchmark.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use systolic_telemetry::TraceCtx;

use crate::frame::escape;
use crate::protocol::{
    parse_checkpointed_frame, parse_host_frame, parse_metrics_frame, parse_profile_frame,
    parse_profiles_frame, parse_result_frame, parse_spans_frame, queryc_request,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something the client could not interpret.
    Protocol(String),
    /// The server answered with an `ERR` frame.
    Remote {
        /// The error kind (`parse`, `machine`, `timeout`, ...).
        kind: String,
        /// Unescaped human-readable detail (multi-line for parse errors).
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Remote { kind, detail } => write!(f, "server error ({kind}): {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful query answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Result row count.
    pub rows: usize,
    /// Simulated makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Total array pulses.
    pub total_pulses: u64,
    /// Physical array invocations.
    pub array_runs: u64,
    /// Bytes delivered by the simulated disk.
    pub bytes_from_disk: u64,
    /// Maximum simultaneous devices.
    pub max_device_concurrency: usize,
    /// Result CSV.
    pub csv: String,
    /// Host wall-clock nanoseconds (nondeterministic; from the `HOST`
    /// frame).
    pub host_ns: u64,
    /// The raw `RESULT` frame, byte-for-byte — what determinism tests
    /// compare.
    pub raw: String,
}

/// A connected session.
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, stream })
    }

    fn send(&mut self, frame: &str) -> Result<(), ClientError> {
        self.stream.write_all(frame.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Interpret an `ERR` frame as a [`ClientError::Remote`].
    fn check_err(frame: &str) -> Result<(), ClientError> {
        let Some(body) = frame.strip_prefix("ERR ") else {
            return Ok(());
        };
        let (kind, detail) = body.split_once(' ').unwrap_or((body, ""));
        // Parse errors carry a structured `at=<byte>` field before the
        // detail; fold it into the kind's detail text.
        let (kind, detail) = match detail.split_once(' ') {
            Some((at, rest)) if kind == "parse" && at.starts_with("at=") => (kind, rest),
            // Analysis frames carry `SA00N [at=<s>..<e>]` before the detail;
            // the caret rendering repeats the code, so nothing is lost.
            Some((code, rest)) if kind == "analysis" && code.starts_with("SA") => {
                match rest.split_once(' ') {
                    Some((at, tail)) if at.starts_with("at=") => (kind, tail),
                    _ => (kind, rest),
                }
            }
            _ => (kind, detail),
        };
        Err(ClientError::Remote {
            kind: kind.to_string(),
            detail: crate::frame::unescape(detail).unwrap_or_else(|_| detail.to_string()),
        })
    }

    /// Register a CSV table; `kinds` is the comma-separated type list
    /// (`int,str,bool,date`). Returns the row count.
    pub fn load_csv(&mut self, name: &str, kinds: &str, csv: &str) -> Result<usize, ClientError> {
        self.send(&format!("LOAD {name} {kinds} {}", escape(csv)))?;
        let frame = self.recv()?;
        Self::check_err(&frame)?;
        frame
            .strip_prefix(&format!("LOADED {name} rows="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("expected LOADED frame, got {frame:?}")))
    }

    /// Run a query and parse the answer.
    pub fn query(&mut self, query: &str) -> Result<QueryResult, ClientError> {
        let (raw, host) = self.raw_query_frames(query)?;
        let fields = parse_result_frame(&raw).map_err(ClientError::Protocol)?;
        let host_ns = parse_host_frame(&host).map_err(ClientError::Protocol)?;
        Ok(QueryResult {
            rows: fields.rows,
            makespan_ns: fields.makespan_ns,
            total_pulses: fields.total_pulses,
            array_runs: fields.array_runs,
            bytes_from_disk: fields.bytes_from_disk,
            max_device_concurrency: fields.max_device_concurrency,
            csv: fields.csv,
            host_ns,
            raw,
        })
    }

    /// Run a query via `QUERYC` and return the raw `RESULT` frame, the
    /// per-plan-step output cardinalities from the `CARDS` frame, and the
    /// host nanoseconds — the shard-router protocol, also usable directly.
    pub fn query_cards(&mut self, query: &str) -> Result<(String, Vec<u64>, u64), ClientError> {
        self.send_query_cards(query, None)?;
        let (result, cards, host_ns, _spans) = self.recv_query_cards(false)?;
        Ok((result, cards, host_ns))
    }

    /// Send a `QUERYC` frame without waiting for the answer (the router
    /// fans one out to every shard before reading any reply, so the shards
    /// compute concurrently). A `trace` stamp asks the shard to trail its
    /// answer with a `SPANS` batch parented under that context.
    pub(crate) fn send_query_cards(
        &mut self,
        query: &str,
        trace: Option<TraceCtx>,
    ) -> Result<(), ClientError> {
        self.send(&queryc_request(query, trace))
    }

    /// Read one `QUERYC` answer: `RESULT` + `CARDS` + `HOST`, plus the
    /// `SPANS` trailer when the request carried a trace stamp.
    pub(crate) fn recv_query_cards(
        &mut self,
        expect_spans: bool,
    ) -> Result<(String, Vec<u64>, u64, Option<String>), ClientError> {
        let result = self.recv()?;
        Self::check_err(&result)?;
        if !result.starts_with("RESULT ") {
            return Err(ClientError::Protocol(format!(
                "expected RESULT frame, got {result:?}"
            )));
        }
        let cards_line = self.recv()?;
        Self::check_err(&cards_line)?;
        let cards =
            crate::protocol::parse_cards_frame(&cards_line).map_err(ClientError::Protocol)?;
        let host = self.recv()?;
        Self::check_err(&host)?;
        let host_ns = crate::protocol::parse_host_frame(&host).map_err(ClientError::Protocol)?;
        let spans = if expect_spans {
            let frame = self.recv()?;
            Self::check_err(&frame)?;
            Some(parse_spans_frame(&frame).map_err(ClientError::Protocol)?)
        } else {
            None
        };
        Ok((result, cards, host_ns, spans))
    }

    /// Run a query via `PROFILE` and return the parsed answer plus the
    /// single-line JSON query profile the server inserted between the
    /// (byte-identical) `RESULT` frame and `HOST`.
    pub fn profile(&mut self, query: &str) -> Result<(QueryResult, String), ClientError> {
        self.send(&format!("PROFILE {query}"))?;
        let raw = self.recv()?;
        Self::check_err(&raw)?;
        if !raw.starts_with("RESULT ") {
            return Err(ClientError::Protocol(format!(
                "expected RESULT frame, got {raw:?}"
            )));
        }
        let profile_line = self.recv()?;
        Self::check_err(&profile_line)?;
        let profile = parse_profile_frame(&profile_line).map_err(ClientError::Protocol)?;
        let host = self.recv()?;
        Self::check_err(&host)?;
        let fields = parse_result_frame(&raw).map_err(ClientError::Protocol)?;
        let host_ns = parse_host_frame(&host).map_err(ClientError::Protocol)?;
        Ok((
            QueryResult {
                rows: fields.rows,
                makespan_ns: fields.makespan_ns,
                total_pulses: fields.total_pulses,
                array_runs: fields.array_runs,
                bytes_from_disk: fields.bytes_from_disk,
                max_device_concurrency: fields.max_device_concurrency,
                csv: fields.csv,
                host_ns,
                raw,
            },
            profile,
        ))
    }

    /// Dump the server's flight recorder: the retained recent query
    /// profiles as single-line JSON texts, newest first.
    pub fn profiles(&mut self) -> Result<Vec<String>, ClientError> {
        self.send("PROFILES")?;
        let frame = self.recv()?;
        Self::check_err(&frame)?;
        parse_profiles_frame(&frame).map_err(ClientError::Protocol)
    }

    /// Run a query and return the raw (`RESULT`, `HOST`) frame pair —
    /// what byte-identity checks compare.
    pub fn raw_query_frames(&mut self, query: &str) -> Result<(String, String), ClientError> {
        self.send_query(query)?;
        self.recv_query_frames()
    }

    /// Send one `QUERY` frame without waiting for the answer. Pairs with
    /// [`Client::recv_query_frames`]; together they let a test or benchmark
    /// hold requests in flight on *many* connections at once (send on every
    /// connection first, then collect), which is what the poll front end is
    /// for.
    pub fn send_query(&mut self, query: &str) -> Result<(), ClientError> {
        self.send(&format!("QUERY {query}"))
    }

    /// Read one (`RESULT`, `HOST`) answer pair for a previously sent
    /// query. An `ERR` answer is a single frame — this returns the
    /// [`ClientError::Remote`] after consuming exactly that frame, so the
    /// connection stays aligned for the next answer.
    pub fn recv_query_frames(&mut self) -> Result<(String, String), ClientError> {
        let result = self.recv()?;
        Self::check_err(&result)?;
        if !result.starts_with("RESULT ") {
            return Err(ClientError::Protocol(format!(
                "expected RESULT frame, got {result:?}"
            )));
        }
        let host = self.recv()?;
        Self::check_err(&host)?;
        Ok((result, host))
    }

    /// Send every query back-to-back without waiting for answers, then
    /// read the (`RESULT`, `HOST`) frame pairs in request order — the
    /// pipelined mode the poll front end multiplexes (the threads front
    /// end also serves pipelined frames, one at a time off its buffer).
    pub fn pipeline_queries(
        &mut self,
        queries: &[&str],
    ) -> Result<Vec<(String, String)>, ClientError> {
        let mut batch = String::new();
        for q in queries {
            batch.push_str("QUERY ");
            batch.push_str(q);
            batch.push('\n');
        }
        self.stream.write_all(batch.as_bytes())?;
        self.stream.flush()?;
        let mut out = Vec::with_capacity(queries.len());
        for _ in queries {
            let result = self.recv()?;
            Self::check_err(&result)?;
            if !result.starts_with("RESULT ") {
                return Err(ClientError::Protocol(format!(
                    "expected RESULT frame, got {result:?}"
                )));
            }
            let host = self.recv()?;
            Self::check_err(&host)?;
            out.push((result, host));
        }
        Ok(out)
    }

    /// Fetch the raw `STATS` frame.
    pub fn stats_line(&mut self) -> Result<String, ClientError> {
        self.send("STATS")?;
        let frame = self.recv()?;
        Self::check_err(&frame)?;
        Ok(frame)
    }

    /// Fetch the Prometheus-style text exposition (unescaped, multi-line).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send("METRICS")?;
        let frame = self.recv()?;
        Self::check_err(&frame)?;
        parse_metrics_frame(&frame).map_err(ClientError::Protocol)
    }

    /// Ask a durable server to checkpoint its log. Returns the number of
    /// history records snapshotted and the snapshot's byte size.
    pub fn checkpoint(&mut self) -> Result<(u64, u64), ClientError> {
        self.send("CHECKPOINT")?;
        let frame = self.recv()?;
        Self::check_err(&frame)?;
        parse_checkpointed_frame(&frame).map_err(ClientError::Protocol)
    }

    /// End the session politely.
    pub fn close(&mut self) -> Result<(), ClientError> {
        self.send("CLOSE")?;
        let frame = self.recv()?;
        Self::check_err(&frame)?;
        Ok(())
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        let frame = self.recv()?;
        Self::check_err(&frame)?;
        Ok(())
    }
}
