//! The shard router: partition base relations across N independent inner
//! servers, fan queries out over the wire protocol, merge the results, and
//! re-price the merged run so `RESULT` frames stay byte-identical to a
//! single-`System` server.
//!
//! ## Why text-level
//!
//! String columns are dictionary-encoded *per server, in interning order*
//! (§2.3), so the same value carries different codes on different shards.
//! The router therefore never touches encoded values: it partitions on the
//! *rendered* text of each row's first field (the same text `export_csv`
//! emits) and merges the shards' rendered CSV. Anything whose result could
//! depend on cross-shard encoding order — a predicate ordering string
//! codes, a projection that drops the partition column — is declined and
//! served by the local full-copy system instead.
//!
//! ## The invariant the classifier enforces
//!
//! Every base relation is hash-partitioned on its first field's text. For
//! an expression the classifier accepts, *each shard's output of every
//! sub-expression equals the global output restricted to that shard's
//! partition, in global row order*:
//!
//! - `scan` delivers rows in load order; partitioning is order-stable.
//! - Filters (`select`, logic-per-track) are per-row, so they commute with
//!   partitioning — as long as no predicate tests a string column.
//! - Set operations and `dedup` compare whole rows; equal rows share their
//!   first field, hence their shard, so per-shard membership agrees with
//!   global membership.
//! - `project` keeps the partition column first (`cols[0] == 0`), so
//!   projected duplicates still collide on one shard.
//! - `join` carries an `Eq(0,0)` condition, so matching rows share a shard
//!   and the output's first field is still the partition key.
//!
//! Under that invariant, per-plan-step output cardinalities sum across
//! shards to the global run's cardinalities — exactly what
//! [`System::price_plan`](systolic_machine::System::price_plan) needs to
//! reproduce the global `RunStats` bit-for-bit — and the router can compute
//! the expected global row sequence itself (a cheap text-level evaluation
//! over the cached base tables) to both order the merge and *verify* every
//! shard returned exactly its partition of it. Any mismatch, shard error,
//! or unsupported shape falls back to the local system, which holds a full
//! copy of every table, so routing is an optimisation, never a correctness
//! risk.

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use systolic_core::select::Predicate;
use systolic_core::JoinSpec;
use systolic_fabric::CompareOp;
use systolic_machine::{Expr, TrackFilter};
use systolic_relation::csv::{canonical_field, render_field, split_line};
use systolic_relation::DomainKind;
use systolic_telemetry::batch::parse_batch;
use systolic_telemetry::{span_in, TraceCtx};

use crate::client::{Client, ClientError};
use crate::engine::{kind_name, store_names};
use crate::locks;
use crate::protocol::{err_frame, parse_result_frame, result_frame};
use crate::scheduler::{Job, QueryReply};
use crate::server::{IoModel, ServerConfig, ServerHandle, Shared};

/// Client connection sets the fan-out rotates over, so several worker
/// threads can have shard queries in flight at once (and the shard
/// schedulers can merge them into batches).
const POOL_SETS: usize = 4;

/// One shard's `QUERYC` answer: the raw `RESULT` frame, the per-plan-step
/// output cardinalities, the (discarded) host nanoseconds, and — when the
/// request was trace-stamped — the shard's span batch.
type CardsReply = Result<(String, Vec<u64>, u64, Option<String>), ClientError>;

/// FNV-1a over the rendered text of a row's first field: the partition
/// function. Stable and platform-independent, so a given row always lands
/// on the same shard.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shard a row with this first field belongs to.
fn home_shard(field0: &str, shards: usize) -> usize {
    (fnv1a(field0) % shards as u64) as usize
}

/// A base table as the router caches it: every row's fields in load order,
/// already canonicalised to the text `export_csv` renders.
struct ShardedTable {
    rows: Vec<Vec<String>>,
    kinds: Vec<DomainKind>,
}

/// The text-level value of a sub-expression: the exact global result the
/// engine would produce, as rendered fields, in engine row order.
struct Node {
    rows: Vec<Vec<String>>,
    kinds: Vec<DomainKind>,
}

/// What [`Router::try_query`] decided.
pub(crate) enum RouteOutcome {
    /// The query is not shardable (or routing failed); run it locally.
    NotRouted,
    /// Routed: the `RESULT` frame (built from the merged shard rows) plus
    /// the full pricing reply — stats, per-step cardinalities, the priced
    /// timeline and host waits — so the caller can build cards, host, and
    /// profile frames exactly as it would from a local run.
    Answered {
        /// The complete `RESULT` frame.
        result: String,
        /// The pricing run's reply.
        reply: QueryReply,
    },
    /// Routing surfaced a client-visible failure (e.g. the pricing run
    /// timed out after the shards already ran); answer with this frame.
    Failed {
        /// The `ERR` frame to send.
        frame: String,
    },
}

/// One set of shard connections plus the addresses to rebuild it from.
struct ClientSet {
    clients: Option<Vec<Client>>,
}

pub(crate) struct Router {
    shards: usize,
    addrs: Vec<std::net::SocketAddr>,
    handles: Mutex<Vec<ServerHandle>>,
    pool: Vec<Mutex<ClientSet>>,
    next: AtomicUsize,
    tables: RwLock<HashMap<String, ShardedTable>>,
}

impl Router {
    /// Spawn `cfg.shards` inner single-shard servers on loopback and
    /// connect the fan-out pool.
    pub(crate) fn start(cfg: &ServerConfig) -> io::Result<Router> {
        let shards = cfg.shards;
        let inner_cfg = |i: usize| ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: POOL_SETS,
            max_pending: POOL_SETS,
            io: IoModel::Threads,
            shards: 1,
            machine: cfg.machine.clone(),
            request_timeout: cfg.request_timeout,
            batch_window: cfg.batch_window,
            max_batch: cfg.max_batch,
            max_request_bytes: cfg.max_request_bytes,
            // The outer server already logs slow queries; shard echoes
            // would double-count them.
            slow_query: None,
            // Each shard persists (and recovers) its own partition under
            // its own subdirectory of the outer server's data dir.
            data_dir: cfg.data_dir.as_ref().map(|d| d.join(format!("shard-{i}"))),
            pool_pages: cfg.pool_pages,
            replacer: cfg.replacer,
            // Shards never write their own trace files: the outer server's
            // collector (plus the SPANS trailers) already sees their spans.
            trace_out: None,
            // Shard-local flight recorders only need a short memory; the
            // outer server records the merged profile for every query.
            profile_history: 16,
            // The outer server already ran the plan compiler before routing;
            // shards must execute exactly the expression they were sent so
            // their step cardinalities align with the router's merge plan.
            optimize: false,
        };
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            handles.push(crate::server::spawn(inner_cfg(i))?);
        }
        let addrs: Vec<std::net::SocketAddr> = handles.iter().map(|h| h.addr).collect();
        let mut pool = Vec::with_capacity(POOL_SETS);
        for _ in 0..POOL_SETS {
            let clients = connect_set(&addrs).map_err(io::Error::other)?;
            pool.push(Mutex::new(ClientSet {
                clients: Some(clients),
            }));
        }
        Ok(Router {
            shards,
            addrs,
            handles: Mutex::new(handles),
            pool,
            next: AtomicUsize::new(0),
            tables: RwLock::new(HashMap::new()),
        })
    }

    /// Shut the inner shard servers down and wait for them to drain.
    pub(crate) fn stop(&self) {
        let handles: Vec<ServerHandle> = locks::lock(&self.handles).drain(..).collect();
        for handle in &handles {
            handle.shutdown();
        }
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Partition a freshly (and successfully) loaded table across the
    /// shards and cache its canonical rows. On any failure the table is
    /// left out of the cache — queries over it simply run locally.
    pub(crate) fn register_load(&self, name: &str, kinds: &[DomainKind], csv: &str) {
        if self.forward_load(name, kinds, csv).is_err() {
            locks::write(&self.tables).remove(name);
        }
    }

    fn forward_load(&self, name: &str, kinds: &[DomainKind], csv: &str) -> Result<(), ()> {
        let rows = canonical_rows(kinds, csv).ok_or(())?;
        let mut parts: Vec<String> = vec![String::new(); self.shards];
        for row in &rows {
            let shard = home_shard(&row[0], self.shards);
            let line: Vec<String> = row.iter().map(|f| render_field(f)).collect();
            parts[shard].push_str(&line.join(","));
            parts[shard].push('\n');
        }
        let kinds_list: Vec<&str> = kinds.iter().map(|&k| kind_name(k)).collect();
        let kinds_list = kinds_list.join(",");
        let set = &self.pool[self.next.fetch_add(1, Ordering::Relaxed) % self.pool.len()];
        let mut set = locks::lock(set);
        let clients = set.clients.as_mut().ok_or(())?;
        for (shard, part) in parts.iter().enumerate() {
            if let Err(e) = clients[shard].load_csv(name, &kinds_list, part) {
                if !matches!(e, ClientError::Remote { .. }) {
                    // The connection is in an unknown state; rebuild the set.
                    set.clients = connect_set(&self.addrs).ok();
                }
                return Err(());
            }
        }
        drop(set);
        locks::write(&self.tables).insert(
            name.to_string(),
            ShardedTable {
                rows,
                kinds: kinds.to_vec(),
            },
        );
        Ok(())
    }

    /// Rebuild the router's text-level cache for a relation replayed from
    /// the outer server's WAL. The shards recover their partitions from
    /// their *own* WALs, so nothing is forwarded here — only the cache the
    /// classifier and merge verifier consult is restored.
    pub(crate) fn register_recovered(&self, name: &str, kinds: &[DomainKind], csv: &str) {
        if let Some(rows) = canonical_rows(kinds, csv) {
            locks::write(&self.tables).insert(
                name.to_string(),
                ShardedTable {
                    rows,
                    kinds: kinds.to_vec(),
                },
            );
        }
    }

    /// Drop cached tables an expression's `store(...)` targets overwrite:
    /// stores run only on the local system, so a stored-over base table
    /// diverges from its shard partitions and must stop being routed.
    pub(crate) fn invalidate(&self, expr: &Expr) {
        let names = store_names(expr);
        if names.is_empty() {
            return;
        }
        let mut tables = locks::write(&self.tables);
        for name in names {
            tables.remove(&name);
        }
    }

    /// Try to answer a prepared query via the shards. Any ineligibility or
    /// failure returns [`RouteOutcome::NotRouted`] and the caller runs the
    /// query on the local (full-copy) system.
    pub(crate) fn try_query(
        &self,
        shared: &Shared,
        tx: &Sender<Job>,
        expr: &Expr,
        query: &str,
        trace: Option<TraceCtx>,
    ) -> RouteOutcome {
        // Classify and compute the expected global result at text level.
        let value = {
            let tables = locks::read(&self.tables);
            match eval(expr, &tables) {
                Some(v) => v,
                None => return RouteOutcome::NotRouted,
            }
        };
        // Expected per-shard line sequences: the global sequence restricted
        // to each shard's partition, in global order.
        let merged_lines: Vec<String> = value.rows.iter().map(|r| render_row(r)).collect();
        let mut expected: Vec<Vec<&str>> = vec![Vec::new(); self.shards];
        for (row, line) in value.rows.iter().zip(&merged_lines) {
            expected[home_shard(&row[0], self.shards)].push(line.as_str());
        }

        // Fan the query out and read every shard's RESULT + CARDS. When
        // tracing is live the fan-out span's context is stamped onto each
        // shard's QUERYC, and every shard answers with a SPANS trailer whose
        // spans parent under this span in the merged trace.
        let replies = {
            let span = span_in(trace, "server.shard_fanout");
            let stamp = span.ctx();
            let set = &self.pool[self.next.fetch_add(1, Ordering::Relaxed) % self.pool.len()];
            let mut set = locks::lock(set);
            let Some(clients) = set.clients.as_mut() else {
                // A previous failure tore the set down; try to rebuild for
                // next time, run locally now.
                set.clients = connect_set(&self.addrs).ok();
                return RouteOutcome::NotRouted;
            };
            let mut sent = true;
            for client in clients.iter_mut() {
                if client.send_query_cards(query, stamp).is_err() {
                    sent = false;
                    break;
                }
            }
            if !sent {
                set.clients = connect_set(&self.addrs).ok();
                return RouteOutcome::NotRouted;
            }
            // Read every pending reply even after an error, so the
            // connections stay frame-aligned for the next query.
            let replies: Vec<CardsReply> = clients
                .iter_mut()
                .map(|c| c.recv_query_cards(stamp.is_some()))
                .collect();
            if replies
                .iter()
                .any(|r| matches!(r, Err(ClientError::Io(_) | ClientError::Protocol(_))))
            {
                set.clients = connect_set(&self.addrs).ok();
            }
            replies
        };
        let mut shard_csvs = Vec::with_capacity(self.shards);
        let mut summed: Option<Vec<u64>> = None;
        for reply in replies {
            let Ok((result, cards, _host, spans)) = reply else {
                return RouteOutcome::NotRouted;
            };
            if let Some(batch) = spans {
                // Keep the shard's span batch for the server's merged trace
                // file; duplicates of locally collected spans (in-process
                // shards share the collector) are deduped at export.
                if let Ok(mut parsed) = parse_batch(&batch) {
                    locks::lock(&shared.remote_spans).append(&mut parsed);
                }
            }
            let Ok(fields) = parse_result_frame(&result) else {
                return RouteOutcome::NotRouted;
            };
            match &mut summed {
                None => summed = Some(cards),
                Some(acc) => {
                    if acc.len() != cards.len() {
                        return RouteOutcome::NotRouted;
                    }
                    for (a, c) in acc.iter_mut().zip(cards) {
                        *a += c;
                    }
                }
            }
            shard_csvs.push(fields.csv);
        }
        let Some(cards) = summed else {
            return RouteOutcome::NotRouted;
        };

        // Verify: every shard returned exactly its partition of the
        // expected sequence, and the step cardinalities agree with it.
        let Some(header) = verify_shards(&shard_csvs, &expected) else {
            return RouteOutcome::NotRouted;
        };
        if cards.last().copied() != Some(value.rows.len() as u64) {
            return RouteOutcome::NotRouted;
        }
        let mut csv = String::with_capacity(
            header.len() + 1 + merged_lines.iter().map(|l| l.len() + 1).sum::<usize>(),
        );
        csv.push_str(&header);
        csv.push('\n');
        for line in &merged_lines {
            csv.push_str(line);
            csv.push('\n');
        }

        // Re-price the merged run on the local system so the RESULT frame
        // carries the same simulated-hardware stats a single-shard run
        // would report.
        match self.price(shared, tx, expr, cards, trace) {
            PriceOutcome::Priced(reply) => {
                if reply.result.len() != value.rows.len() {
                    return RouteOutcome::NotRouted;
                }
                RouteOutcome::Answered {
                    result: result_frame(reply.result.len(), &reply.stats, &csv),
                    reply,
                }
            }
            PriceOutcome::Fallback => RouteOutcome::NotRouted,
            PriceOutcome::Failed(frame) => RouteOutcome::Failed { frame },
        }
    }

    /// Submit a [`Job::Price`] and wait, with the same timeout-fence
    /// protocol `handle_query` uses for real runs.
    fn price(
        &self,
        shared: &Shared,
        tx: &Sender<Job>,
        expr: &Expr,
        cards: Vec<u64>,
        trace: Option<TraceCtx>,
    ) -> PriceOutcome {
        let fence = Arc::new(AtomicBool::new(false));
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job::Price {
            expr: expr.clone(),
            cards,
            trace,
            fence: Arc::clone(&fence),
            reply: reply_tx,
            submitted: Instant::now(),
        };
        if tx.send(job).is_err() {
            return PriceOutcome::Fallback;
        }
        let reply = match reply_rx.recv_timeout(shared.cfg.request_timeout) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => {
                if fence.swap(true, Ordering::SeqCst) {
                    // The scheduler claimed the job: the pricing is landing
                    // (it advances the machine's memory state just like a
                    // run), so wait for the real answer.
                    match reply_rx.recv() {
                        Ok(reply) => reply,
                        Err(_) => return PriceOutcome::Fallback,
                    }
                } else {
                    shared.counters.update(|c| c.timeouts += 1);
                    shared.metrics.timeouts.inc();
                    return PriceOutcome::Failed(err_frame("timeout", "query timed out"));
                }
            }
            Err(RecvTimeoutError::Disconnected) => return PriceOutcome::Fallback,
        };
        match reply {
            Ok(reply) => PriceOutcome::Priced(reply),
            Err(_) => PriceOutcome::Fallback,
        }
    }
}

enum PriceOutcome {
    Priced(crate::scheduler::QueryReply),
    Fallback,
    Failed(String),
}

/// Reconnect one full set of shard clients.
fn connect_set(addrs: &[std::net::SocketAddr]) -> Result<Vec<Client>, ClientError> {
    addrs.iter().map(Client::connect).collect()
}

/// Split a LOAD payload into canonical field rows (the text `export_csv`
/// would render), skipping a schema header line if present and validating
/// arity. `None` means the text didn't parse — the caller degrades the
/// table to local-only.
fn canonical_rows(kinds: &[DomainKind], csv: &str) -> Option<Vec<Vec<String>>> {
    let mut out = Vec::new();
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty()).peekable();
    if let Some(first) = lines.peek() {
        let headers = split_line(first).ok()?;
        let names: Vec<String> = (0..kinds.len()).map(|k| format!("c{k}")).collect();
        if headers == names {
            lines.next();
        }
    }
    for line in lines {
        let fields = split_line(line).ok()?;
        if fields.len() != kinds.len() {
            return None;
        }
        let row: Option<Vec<String>> = fields
            .iter()
            .zip(kinds)
            .map(|(field, &kind)| canonical_field(kind, field).ok())
            .collect();
        out.push(row?);
    }
    Some(out)
}

/// Render one result row the way `export_csv` does.
fn render_row(fields: &[String]) -> String {
    let cells: Vec<String> = fields.iter().map(|f| render_field(f)).collect();
    cells.join(",")
}

/// Check every shard's CSV against its expected line sequence; returns the
/// (shared) header line on success.
fn verify_shards(shard_csvs: &[String], expected: &[Vec<&str>]) -> Option<String> {
    let mut header: Option<&str> = None;
    for (csv, want) in shard_csvs.iter().zip(expected) {
        let mut lines = csv.lines();
        let head = lines.next()?;
        match header {
            None => header = Some(head),
            Some(h) if h == head => {}
            Some(_) => return None,
        }
        let got: Vec<&str> = lines.collect();
        if got != *want {
            return None;
        }
    }
    header.map(str::to_string)
}

/// Parse a canonical field's comparable value for a non-string column.
/// Int and Date are identity-encoded and Bool encodes as 0/1 (§2.3), so
/// the parsed number equals the encoded element every server agrees on.
fn parse_val(kind: DomainKind, field: &str) -> Option<i64> {
    match kind {
        DomainKind::Int => field.parse().ok(),
        DomainKind::Date => field.strip_prefix("day#")?.parse().ok(),
        DomainKind::Bool => match field {
            "true" => Some(1),
            "false" => Some(0),
            _ => None,
        },
        DomainKind::Str => None,
    }
}

/// First-occurrence dedup, preserving order — the §5 remove-duplicates
/// semantics.
fn dedup_first(rows: Vec<Vec<String>>) -> Vec<Vec<String>> {
    let mut seen: HashSet<Vec<String>> = HashSet::with_capacity(rows.len());
    rows.into_iter()
        .filter(|r| seen.insert(r.clone()))
        .collect()
}

fn eval_filter(node: &mut Node, col: usize, op: CompareOp, value: i64) -> Option<()> {
    let kind = *node.kinds.get(col)?;
    if kind == DomainKind::Str {
        return None;
    }
    let mut ok = true;
    node.rows.retain(|row| match parse_val(kind, &row[col]) {
        Some(v) => op.eval(v, value),
        None => {
            ok = false;
            false
        }
    });
    ok.then_some(())
}

fn eval_predicates(node: &mut Node, preds: &[Predicate]) -> Option<()> {
    for p in preds {
        eval_filter(node, p.col, p.op, p.value)?;
    }
    Some(())
}

/// Whether a join condition is shard-stable and how to test it at text
/// level: string columns only support `=`/`!=` (text equality is encoding
/// equality within any one server); everything else parses numerically.
fn join_matches(spec: &JoinSpec, a: &Node, b: &Node, ra: &[String], rb: &[String]) -> Option<bool> {
    let ka = *a.kinds.get(spec.col_a)?;
    let kb = *b.kinds.get(spec.col_b)?;
    if ka == DomainKind::Str || kb == DomainKind::Str {
        if ka != kb {
            return None;
        }
        let equal = ra[spec.col_a] == rb[spec.col_b];
        return match spec.op {
            CompareOp::Eq => Some(equal),
            CompareOp::Ne => Some(!equal),
            _ => None,
        };
    }
    let va = parse_val(ka, &ra[spec.col_a])?;
    let vb = parse_val(kb, &rb[spec.col_b])?;
    Some(spec.op.eval(va, vb))
}

/// Classify and evaluate: `Some(node)` iff every operator in the tree is
/// shard-stable (see the module docs), with `node` the exact global result
/// in engine row order. `None` sends the query down the local path.
fn eval(expr: &Expr, tables: &HashMap<String, ShardedTable>) -> Option<Node> {
    match expr {
        Expr::Scan { name, filter } => {
            let table = tables.get(name)?;
            let mut node = Node {
                rows: table.rows.clone(),
                kinds: table.kinds.clone(),
            };
            if let Some(TrackFilter { col, op, value }) = filter {
                eval_filter(&mut node, *col, *op, *value)?;
            }
            Some(node)
        }
        Expr::Select(inner, preds) => {
            let mut node = eval(inner, tables)?;
            eval_predicates(&mut node, preds)?;
            Some(node)
        }
        Expr::Dedup(inner) => {
            let node = eval(inner, tables)?;
            Some(Node {
                rows: dedup_first(node.rows),
                kinds: node.kinds,
            })
        }
        Expr::Intersect(a, b) | Expr::Difference(a, b) => {
            let left = eval(a, tables)?;
            let right = eval(b, tables)?;
            let members: HashSet<&[String]> = right.rows.iter().map(Vec::as_slice).collect();
            let keep_in = matches!(expr, Expr::Intersect(..));
            let rows = left
                .rows
                .into_iter()
                .filter(|r| members.contains(r.as_slice()) == keep_in)
                .collect();
            Some(Node {
                rows,
                kinds: left.kinds,
            })
        }
        Expr::Union(a, b) => {
            let mut left = eval(a, tables)?;
            let right = eval(b, tables)?;
            left.rows.extend(right.rows);
            Some(Node {
                rows: dedup_first(left.rows),
                kinds: left.kinds,
            })
        }
        Expr::Project(inner, cols) => {
            // The partition key must survive in front: projected duplicates
            // then still collide on one shard.
            if cols.first() != Some(&0) {
                return None;
            }
            let node = eval(inner, tables)?;
            if cols.iter().any(|&c| c >= node.kinds.len()) {
                return None;
            }
            let stripped: Vec<Vec<String>> = node
                .rows
                .iter()
                .map(|row| cols.iter().map(|&c| row[c].clone()).collect())
                .collect();
            Some(Node {
                rows: dedup_first(stripped),
                kinds: cols.iter().map(|&c| node.kinds[c]).collect(),
            })
        }
        Expr::Join(a, b, specs) => {
            // An Eq(0,0) condition keeps matches within one partition and
            // makes the output's first field the partition key again.
            if !specs
                .iter()
                .any(|s| s.op == CompareOp::Eq && s.col_a == 0 && s.col_b == 0)
            {
                return None;
            }
            let left = eval(a, tables)?;
            let right = eval(b, tables)?;
            // Pure equi-joins drop B's copies of the join columns (§6).
            let pure_equi = specs.iter().all(|s| s.op == CompareOp::Eq);
            let drop_b: Vec<bool> = (0..right.kinds.len())
                .map(|k| pure_equi && specs.iter().any(|s| s.col_b == k))
                .collect();
            // Bucket B on the partition column to keep the pair walk near
            // linear; within a bucket, B rows stay in global order, so the
            // output is the engine's row-major (i, j) order.
            let mut buckets: HashMap<&str, Vec<&Vec<String>>> = HashMap::new();
            for rb in &right.rows {
                buckets.entry(rb[0].as_str()).or_default().push(rb);
            }
            let mut rows = Vec::new();
            for ra in &left.rows {
                let Some(candidates) = buckets.get(ra[0].as_str()) else {
                    continue;
                };
                for rb in candidates {
                    let mut matched = true;
                    for spec in specs {
                        match join_matches(spec, &left, &right, ra, rb) {
                            Some(true) => {}
                            Some(false) => {
                                matched = false;
                                break;
                            }
                            None => return None,
                        }
                    }
                    if matched {
                        let mut row = ra.clone();
                        row.extend(
                            rb.iter()
                                .enumerate()
                                .filter(|(k, _)| !drop_b[*k])
                                .map(|(_, f)| f.clone()),
                        );
                        rows.push(row);
                    }
                }
            }
            let mut kinds = left.kinds.clone();
            kinds.extend(
                right
                    .kinds
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| !drop_b[*k])
                    .map(|(_, &k)| k),
            );
            Some(Node { rows, kinds })
        }
        // Stores mutate the machine and division's pricing is
        // data-dependent; neither is routable.
        Expr::Store(..) | Expr::Divide { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(kinds: &[DomainKind], rows: &[&[&str]]) -> ShardedTable {
        ShardedTable {
            rows: rows
                .iter()
                .map(|r| r.iter().map(|f| f.to_string()).collect())
                .collect(),
            kinds: kinds.to_vec(),
        }
    }

    fn tables() -> HashMap<String, ShardedTable> {
        let mut t = HashMap::new();
        t.insert(
            "emp".to_string(),
            table(
                &[DomainKind::Str, DomainKind::Int],
                &[&["ada", "10"], &["grace", "20"], &["edsger", "30"]],
            ),
        );
        t.insert(
            "dept".to_string(),
            table(
                &[DomainKind::Int, DomainKind::Str],
                &[&["10", "storage"], &["20", "query"]],
            ),
        );
        t
    }

    fn rows(node: &Node) -> Vec<String> {
        node.rows.iter().map(|r| r.join("|")).collect()
    }

    #[test]
    fn partition_function_is_stable() {
        let h = home_shard("ada", 4);
        assert_eq!(home_shard("ada", 4), h);
        assert!(h < 4);
        // Known FNV-1a vector: empty input hashes to the offset basis.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn eval_handles_scans_filters_and_set_ops() {
        let t = tables();
        let expr = systolic_machine::parse("filter(scan(emp), c1 >= 20)").unwrap();
        let expr = systolic_machine::push_selections(expr);
        let node = eval(&expr, &t).unwrap();
        assert_eq!(rows(&node), vec!["grace|20", "edsger|30"]);

        let expr = systolic_machine::parse("union(scan(emp), scan(emp))").unwrap();
        let node = eval(&expr, &t).unwrap();
        assert_eq!(node.rows.len(), 3, "union dedups");

        let expr = systolic_machine::parse("difference(scan(emp), scan(emp))").unwrap();
        let node = eval(&expr, &t).unwrap();
        assert!(node.rows.is_empty());
    }

    #[test]
    fn eval_joins_in_row_major_order_and_drops_equi_columns() {
        let t = tables();
        let expr = systolic_machine::parse("join(scan(dept), scan(dept), 0 = 0)").unwrap();
        let node = eval(&expr, &t).unwrap();
        // Pure equi-join keeps A whole and drops B's join column.
        assert_eq!(rows(&node), vec!["10|storage|storage", "20|query|query"]);
        assert_eq!(
            node.kinds,
            vec![DomainKind::Int, DomainKind::Str, DomainKind::Str]
        );
    }

    #[test]
    fn eval_declines_unshardable_shapes() {
        let t = tables();
        // Predicate on a string column: dictionary codes diverge per shard.
        let expr = systolic_machine::parse("filter(scan(emp), c0 = 1)").unwrap();
        assert!(eval(&expr, &t).is_none());
        // Projection that drops the partition column.
        let expr = systolic_machine::parse("project(scan(emp), [1])").unwrap();
        assert!(eval(&expr, &t).is_none());
        // Join without an Eq(0,0) condition.
        let expr = systolic_machine::parse("join(scan(emp), scan(dept), 1 = 0)").unwrap();
        assert!(eval(&expr, &t).is_none());
        // Store and divide never route.
        let expr = systolic_machine::parse("store(scan(emp), out)").unwrap();
        assert!(eval(&expr, &t).is_none());
        // Unknown (uncached) table.
        let expr = systolic_machine::parse("scan(ghost)").unwrap();
        assert!(eval(&expr, &t).is_none());
    }

    #[test]
    fn canonical_rows_match_export_rendering() {
        let kinds = [DomainKind::Int, DomainKind::Bool, DomainKind::Date];
        let rows = canonical_rows(&kinds, "c0,c1,c2\n 7 ,1,19000\n").unwrap();
        assert_eq!(rows, vec![vec!["7", "true", "day#19000"]]);
        assert!(canonical_rows(&kinds, "1,true\n").is_none(), "arity");
        assert!(canonical_rows(&kinds, "x,true,1\n").is_none(), "bad int");
    }

    #[test]
    fn shard_verification_requires_exact_partitions() {
        let csvs = vec!["c0\n1\n3\n".to_string(), "c0\n2\n".to_string()];
        let expected = vec![vec!["1", "3"], vec!["2"]];
        assert_eq!(verify_shards(&csvs, &expected).unwrap(), "c0");
        // A missing line, an extra line, or a header mismatch all fail.
        assert!(verify_shards(&csvs, &[vec!["1"], vec!["2"]]).is_none());
        assert!(verify_shards(&csvs, &[vec!["1", "3", "9"], vec!["2"]]).is_none());
        let bad = vec!["c0\n1\n3\n".to_string(), "c9\n2\n".to_string()];
        assert!(verify_shards(&bad, &expected).is_none());
    }
}
