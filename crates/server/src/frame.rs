//! Newline-delimited wire frames.
//!
//! One request or response per line. Payloads that may contain newlines
//! (CSV text, multi-line error renderings) travel through [`escape`], which
//! maps `\` → `\\`, LF → `\n` and CR → `\r`, so a frame is always exactly
//! one line and framing can never desynchronise on data.

use std::io::{self, BufRead};

/// Escape a payload so it fits on one line.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]. Errors on a dangling or unknown escape.
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("dangling escape at end of frame".to_string()),
        }
    }
    Ok(out)
}

/// Outcome of one [`read_frame`] poll.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete line arrived (without its terminator).
    Frame(String),
    /// The read timed out before a full line arrived; any partial bytes are
    /// retained in the caller's buffer — poll again.
    TimedOut,
    /// The peer closed the connection.
    Closed,
    /// The line exceeded the size limit; framing is lost, close the
    /// connection after reporting.
    TooLong,
}

/// Read one `\n`-terminated frame, tolerating read timeouts (so callers can
/// poll a shutdown flag between attempts) and capping the frame length at
/// `max` bytes. `partial` accumulates bytes across `TimedOut` returns and
/// must be reused verbatim on the next call for the same connection.
pub fn read_frame<R: BufRead>(
    reader: &mut R,
    partial: &mut Vec<u8>,
    max: usize,
) -> io::Result<FrameRead> {
    loop {
        if partial.len() > max {
            return Ok(FrameRead::TooLong);
        }
        let (line_done, used) = {
            let available = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(FrameRead::TimedOut)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                return Ok(FrameRead::Closed);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    partial.extend_from_slice(&available[..pos]);
                    (true, pos + 1)
                }
                None => {
                    partial.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if line_done {
            if partial.len() > max {
                return Ok(FrameRead::TooLong);
            }
            let bytes = std::mem::take(partial);
            let mut line = String::from_utf8(bytes).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "frame is not valid UTF-8")
            })?;
            if line.ends_with('\r') {
                line.pop();
            }
            return Ok(FrameRead::Frame(line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "a,b\nc,d\n", "back\\slash", "\r\n\\n", "q\\nx"] {
            let esc = escape(s);
            assert!(!esc.contains('\n'), "{esc:?} must be one line");
            assert!(!esc.contains('\r'));
            assert_eq!(unescape(&esc).unwrap(), s);
        }
    }

    #[test]
    fn bad_escapes_are_rejected() {
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn frames_split_on_newlines() {
        let mut r = BufReader::new(&b"first\nsecond\r\nthird"[..]);
        let mut partial = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut partial, 1024).unwrap(),
            FrameRead::Frame(ref f) if f == "first"
        ));
        assert!(matches!(
            read_frame(&mut r, &mut partial, 1024).unwrap(),
            FrameRead::Frame(ref f) if f == "second"
        ));
        // Trailing bytes without a newline: connection closed mid-frame.
        assert!(matches!(
            read_frame(&mut r, &mut partial, 1024).unwrap(),
            FrameRead::Closed
        ));
    }

    #[test]
    fn oversized_frames_are_flagged() {
        let mut r = BufReader::new(&b"0123456789\n"[..]);
        let mut partial = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut partial, 4).unwrap(),
            FrameRead::TooLong
        ));
    }
}
