//! The TCP service: bounded worker pool, session loop, graceful shutdown.
//!
//! Plain `std::net` blocking sockets — no async runtime. The accept loop is
//! nonblocking and polls a stop flag; connections use short read timeouts
//! so every thread notices shutdown within ~100ms and drains: in-flight
//! requests are answered, idle sessions get `BYE`, new work is refused with
//! `ERR shutting_down`, and queued-but-unserved connections are still
//! picked up and told the same.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use systolic_machine::{MachineConfig, System};
use systolic_telemetry::{record_between, root_span, TraceCtx};

use crate::engine::{self, EngineError, Store};
use crate::frame::{read_frame, FrameRead};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    analysis_err_frame, err_frame, host_frame, loaded_frame, metrics_frame, parse_err_frame,
    parse_request, result_frame, Request,
};
use crate::scheduler::{self, Job};
use crate::shutdown;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4171` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads — the number of connections served simultaneously.
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker before new
    /// ones are refused with `ERR overloaded`.
    pub max_pending: usize,
    /// Configuration of the shared simulated machine.
    pub machine: MachineConfig,
    /// How long a session waits for the scheduler to answer one request
    /// before giving up with `ERR timeout`.
    pub request_timeout: Duration,
    /// How long the admission scheduler gathers concurrently-arriving
    /// queries before admitting them as one merged schedule.
    pub batch_window: Duration,
    /// Largest number of jobs admitted as one batch.
    pub max_batch: usize,
    /// Largest accepted request frame, in bytes.
    pub max_request_bytes: usize,
    /// Queries slower than this (end-to-end host time) are written to the
    /// slow-query log on stderr; `None` disables the log.
    pub slow_query: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4171".to_string(),
            workers: 32,
            max_pending: 32,
            machine: MachineConfig::default(),
            request_timeout: Duration::from_secs(30),
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            max_request_bytes: 1 << 20,
            slow_query: Some(Duration::from_secs(1)),
        }
    }
}

/// Monotonic service counters, shared between workers and the scheduler.
///
/// One mutex guards the whole set, so a concurrent `STATS` probe (or the
/// final report) always reads a consistent snapshot — it can never see,
/// say, a batch counted whose queries aren't, the torn view the old
/// independent atomics allowed.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    state: Mutex<CounterState>,
}

/// The counter fields; [`Counters::snapshot`] returns a copy of this.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct CounterState {
    pub(crate) queries: u64,
    pub(crate) loads: u64,
    pub(crate) batches: u64,
    pub(crate) max_batch: u64,
    pub(crate) refused: u64,
    pub(crate) timeouts: u64,
    pub(crate) slow_queries: u64,
    pub(crate) queue_hwm: u64,
}

impl Counters {
    /// Apply one mutation atomically with respect to snapshots.
    pub(crate) fn update(&self, f: impl FnOnce(&mut CounterState)) {
        f(&mut self.state.lock().unwrap());
    }

    /// A consistent copy of every counter.
    pub(crate) fn snapshot(&self) -> CounterState {
        *self.state.lock().unwrap()
    }
}

/// A snapshot of service counters, returned when the server exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReport {
    /// Queries answered (including failed ones).
    pub queries: u64,
    /// Tables loaded.
    pub loads: u64,
    /// Multi-query merged schedules admitted.
    pub batches: u64,
    /// Largest batch admitted.
    pub max_batch: u64,
    /// Connections refused because the pool was full.
    pub refused: u64,
    /// Requests that hit the per-request timeout.
    pub timeouts: u64,
    /// High-water mark of the connection wait queue.
    pub queue_hwm: u64,
    /// Queries slower than the slow-query threshold.
    pub slow_queries: u64,
}

struct Shared {
    store: RwLock<Store>,
    counters: Arc<Counters>,
    metrics: Arc<ServerMetrics>,
    active: AtomicUsize,
    cfg: ServerConfig,
    stop: AtomicBool,
    started: Instant,
}

impl Shared {
    fn new(cfg: ServerConfig) -> Self {
        let metrics = Arc::new(ServerMetrics::new());
        metrics.backend_info(cfg.machine.backend.label()).inc();
        Shared {
            store: RwLock::new(Store::new()),
            counters: Arc::new(Counters::default()),
            metrics,
            active: AtomicUsize::new(0),
            cfg,
            stop: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || shutdown::signalled()
    }

    fn report(&self) -> ServerReport {
        let c = self.counters.snapshot();
        ServerReport {
            queries: c.queries,
            loads: c.loads,
            batches: c.batches,
            max_batch: c.max_batch,
            refused: c.refused,
            timeouts: c.timeouts,
            queue_hwm: c.queue_hwm,
            slow_queries: c.slow_queries,
        }
    }
}

/// Accepted connections waiting for a worker.
#[derive(Default)]
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueInner {
    conns: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    /// Enqueue a connection (stamped with its arrival time, so the worker
    /// that picks it up can record the queue wait) and return the new depth.
    fn push(&self, stream: TcpStream) -> usize {
        let mut inner = self.inner.lock().unwrap();
        inner.conns.push_back((stream, Instant::now()));
        let depth = inner.conns.len();
        drop(inner);
        self.ready.notify_one();
        depth
    }

    /// Next connection plus its enqueue time, blocking; `None` once closed
    /// *and* drained, so connections queued before shutdown still get
    /// served (and refused politely).
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(entry) = inner.conns.pop_front() {
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap().conns.len()
    }
}

/// A running server spawned in the background (the programmatic API; tests
/// and the throughput bench use this).
pub struct ServerHandle {
    /// The bound address — with `addr: "127.0.0.1:0"` this is where the
    /// kernel actually put the listener.
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    join: thread::JoinHandle<io::Result<ServerReport>>,
}

impl ServerHandle {
    /// Ask the server to drain and exit (what SIGTERM does to `run`).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the server to exit and return its counter snapshot.
    pub fn join(self) -> io::Result<ServerReport> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Bind and serve in a background thread, returning immediately.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared::new(config));
    let serve_shared = Arc::clone(&shared);
    let join = thread::Builder::new()
        .name("systolic-serve".to_string())
        .spawn(move || serve_on(listener, serve_shared))?;
    Ok(ServerHandle { addr, shared, join })
}

/// Bind and serve on the calling thread until SIGINT/SIGTERM (the `sdb
/// serve` path). Prints a `listening on <addr>` line once ready and a
/// summary line on shutdown.
pub fn run(config: ServerConfig) -> io::Result<ServerReport> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    shutdown::install();
    println!("listening on {addr}");
    io::stdout().flush()?;
    let shared = Arc::new(Shared::new(config));
    let report = serve_on(listener, Arc::clone(&shared))?;
    println!(
        "shutdown: {} queries ({} batched schedules, largest {}), {} loads, \
         {} refused, {} timeouts",
        report.queries,
        report.batches,
        report.max_batch,
        report.loads,
        report.refused,
        report.timeouts,
    );
    Ok(report)
}

fn serve_on(listener: TcpListener, shared: Arc<Shared>) -> io::Result<ServerReport> {
    listener.set_nonblocking(true)?;
    let system = System::new(shared.cfg.machine.clone()).map_err(io::Error::other)?;
    let (tx, rx) = mpsc::channel::<Job>();
    let queue = Arc::new(ConnQueue::default());
    let mut accept_err: Option<io::Error> = None;
    thread::scope(|scope| {
        let window = shared.cfg.batch_window;
        let max_batch = shared.cfg.max_batch;
        let sched_counters = Arc::clone(&shared.counters);
        let sched_metrics = Arc::clone(&shared.metrics);
        scope.spawn(move || {
            scheduler::run(system, rx, window, max_batch, sched_counters, sched_metrics)
        });
        let workers = shared.cfg.workers.max(1);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            scope.spawn(move || worker_loop(&queue, &shared, &tx));
        }
        // Workers now hold the only senders the scheduler waits on: once
        // the queue closes and they exit, the scheduler's channel hangs up
        // and it exits too, so the scope join is deadlock-free.
        drop(tx);
        loop {
            if shared.stopping() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let busy = shared.active.load(Ordering::SeqCst) + queue.len();
                    if busy >= workers + shared.cfg.max_pending {
                        shared.counters.update(|c| c.refused += 1);
                        shared.metrics.refused.inc();
                        refuse(stream);
                    } else {
                        let depth = queue.push(stream) as u64;
                        shared.metrics.queue_depth.set(depth as f64);
                        shared.metrics.queue_depth_hwm.set_max(depth as f64);
                        shared
                            .counters
                            .update(|c| c.queue_hwm = c.queue_hwm.max(depth));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.stop.store(true, Ordering::SeqCst);
                    accept_err = Some(e);
                    break;
                }
            }
        }
        queue.close();
    });
    match accept_err {
        Some(e) => Err(e),
        None => Ok(shared.report()),
    }
}

fn refuse(stream: TcpStream) {
    let mut stream = stream;
    let _ = writeln!(
        stream,
        "{}",
        err_frame("overloaded", "server is at capacity")
    );
    let _ = stream.flush();
}

fn worker_loop(queue: &ConnQueue, shared: &Shared, tx: &mpsc::Sender<Job>) {
    while let Some((stream, enqueued)) = queue.pop() {
        shared.metrics.queue_depth.set(queue.len() as f64);
        record_between("server.queue_wait", None, enqueued, Instant::now());
        shared.active.fetch_add(1, Ordering::SeqCst);
        let _ = serve_conn(stream, shared, tx);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn send(stream: &mut TcpStream, frame: &str) -> io::Result<()> {
    stream.write_all(frame.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn engine_err_frame(err: &EngineError) -> String {
    match err {
        EngineError::Parse { err, query } => parse_err_frame(err, query),
        EngineError::Relation(e) => err_frame("relation", &e.to_string()),
        EngineError::Machine(e) => err_frame("machine", &e.to_string()),
        EngineError::Analysis { diags, query } => analysis_err_frame(diags, query),
    }
}

fn serve_conn(mut stream: TcpStream, shared: &Shared, tx: &mpsc::Sender<Job>) -> io::Result<()> {
    // Short read timeout: between frames every session polls the stop flag,
    // so shutdown drains idle connections instead of hanging on them.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut partial = Vec::new();
    loop {
        let line = match read_frame(&mut reader, &mut partial, shared.cfg.max_request_bytes)? {
            FrameRead::TimedOut => {
                if shared.stopping() {
                    send(&mut stream, "BYE")?;
                    return Ok(());
                }
                continue;
            }
            FrameRead::Closed => return Ok(()),
            FrameRead::TooLong => {
                // Framing is lost once we stop mid-line; report and hang up.
                let frame = err_frame(
                    "too_large",
                    &format!("frame exceeds {} bytes", shared.cfg.max_request_bytes),
                );
                send(&mut stream, &frame)?;
                return Ok(());
            }
            FrameRead::Frame(line) => line,
        };
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(msg) => {
                send(&mut stream, &err_frame("proto", &msg))?;
                continue;
            }
        };
        match request {
            Request::Close => {
                send(&mut stream, "BYE")?;
                return Ok(());
            }
            Request::Shutdown => {
                shared.stop.store(true, Ordering::SeqCst);
                send(&mut stream, "BYE")?;
                return Ok(());
            }
            Request::Stats => {
                let frame = stats_frame(shared);
                send(&mut stream, &frame)?;
            }
            Request::Metrics => {
                // Like STATS: observability stays answerable while draining.
                let frame = metrics_frame(&shared.metrics.exposition());
                send(&mut stream, &frame)?;
            }
            _ if shared.stopping() => {
                send(
                    &mut stream,
                    &err_frame("shutting_down", "server is draining; no new work"),
                )?;
            }
            Request::Load { name, kinds, csv } => {
                let frame = handle_load(shared, tx, &name, &kinds, &csv);
                send(&mut stream, &frame)?;
            }
            Request::Query(query) => {
                let started = Instant::now();
                // A fresh trace per request: concurrent clients must never
                // share a trace id even when the scheduler merges them into
                // one batch schedule.
                let mut span = root_span("server.request");
                span.arg("query", &query);
                let trace = span.ctx();
                let (result, host) = handle_query(shared, tx, &query, trace);
                send(&mut stream, &result)?;
                if let Some(host) = host {
                    send(&mut stream, &host)?;
                }
                drop(span);
                let elapsed = started.elapsed();
                shared.metrics.latency.observe(elapsed.as_nanos() as u64);
                if let Some(line) = slow_query_line(&query, elapsed, shared.cfg.slow_query) {
                    shared.counters.update(|c| c.slow_queries += 1);
                    shared.metrics.slow_queries.inc();
                    eprintln!("{line}");
                }
            }
        }
    }
}

fn stats_frame(shared: &Shared) -> String {
    let tables = shared.store.read().unwrap().table_count();
    let report = shared.report();
    let lat = &shared.metrics.latency;
    // New fields only ever get appended: clients key on names, but scripted
    // consumers of older servers may still slice by position.
    format!(
        "STATS tables={tables} queries={} loads={} batches={} max_batch={} refused={} \
         timeouts={} active={} uptime_ms={} queue_hwm={} slow={} lat_p50_ns={} \
         lat_p95_ns={} lat_p99_ns={} lat_count={} backend={}",
        report.queries,
        report.loads,
        report.batches,
        report.max_batch,
        report.refused,
        report.timeouts,
        shared.active.load(Ordering::SeqCst),
        shared.started.elapsed().as_millis(),
        report.queue_hwm,
        report.slow_queries,
        lat.quantile(0.50),
        lat.quantile(0.95),
        lat.quantile(0.99),
        lat.count(),
        shared.cfg.machine.backend.label(),
    )
}

/// The slow-query log line, if `elapsed` reaches the threshold.
fn slow_query_line(query: &str, elapsed: Duration, threshold: Option<Duration>) -> Option<String> {
    let threshold = threshold?;
    if elapsed < threshold {
        return None;
    }
    Some(format!(
        "slow-query: {:.3}ms (threshold {}ms) {query}",
        elapsed.as_secs_f64() * 1e3,
        threshold.as_millis(),
    ))
}

fn valid_table_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn handle_load(
    shared: &Shared,
    tx: &mpsc::Sender<Job>,
    name: &str,
    kinds: &[systolic_relation::DomainKind],
    csv: &str,
) -> String {
    if !valid_table_name(name) {
        return err_frame(
            "proto",
            &format!("bad table name {name:?}: letters, digits, underscores"),
        );
    }
    // Register under the write lock, then ship the encoded relation to the
    // scheduler so it lands on the machine's disk in admission order.
    let rel = {
        let mut store = shared.store.write().unwrap();
        if store.has_table(name) {
            return err_frame("conflict", &format!("table {name:?} already exists"));
        }
        match store.register(name, kinds, csv) {
            Ok(rel) => rel,
            Err(e) => return engine_err_frame(&e),
        }
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job::Load {
        name: name.to_string(),
        rel,
        reply: reply_tx,
    };
    if tx.send(job).is_err() {
        return err_frame("shutting_down", "scheduler has exited");
    }
    match reply_rx.recv_timeout(shared.cfg.request_timeout) {
        Ok(rows) => loaded_frame(name, rows),
        Err(_) => {
            shared.counters.update(|c| c.timeouts += 1);
            shared.metrics.timeouts.inc();
            err_frame("timeout", "load timed out")
        }
    }
}

/// Returns the `RESULT` (or `ERR`) frame plus, on success, the `HOST`
/// frame.
fn handle_query(
    shared: &Shared,
    tx: &mpsc::Sender<Job>,
    query: &str,
    trace: Option<TraceCtx>,
) -> (String, Option<String>) {
    // Static analysis before admission: a query that cannot execute (typo'd
    // relation, type error, capacity overflow, ...) never occupies a slot in
    // a merged batch schedule, and the client gets a stable SA00N code with
    // carets instead of a mid-run machine error.
    let expr = {
        let view = shared.store.read().unwrap().catalog_view();
        match engine::prepare_checked(query, &view, &shared.cfg.machine) {
            Ok((expr, _analysis)) => expr,
            Err(e) => return (engine_err_frame(&e), None),
        }
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    if tx
        .send(Job::Query {
            expr,
            trace,
            reply: reply_tx,
        })
        .is_err()
    {
        return (err_frame("shutting_down", "scheduler has exited"), None);
    }
    match reply_rx.recv_timeout(shared.cfg.request_timeout) {
        Ok(Ok(reply)) => {
            let csv = {
                let store = shared.store.read().unwrap();
                store.render_csv(&reply.result)
            };
            match csv {
                Ok(csv) => (
                    result_frame(reply.result.len(), &reply.stats, &csv),
                    Some(host_frame(reply.host_wall_ns)),
                ),
                Err(e) => (engine_err_frame(&e), None),
            }
        }
        Ok(Err(machine_err)) => (err_frame("machine", &machine_err.to_string()), None),
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            shared.counters.update(|c| c.timeouts += 1);
            shared.metrics.timeouts.inc();
            (err_frame("timeout", "query timed out"), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_names_are_validated() {
        assert!(valid_table_name("emp"));
        assert!(valid_table_name("_t2"));
        assert!(!valid_table_name(""));
        assert!(!valid_table_name("2fast"));
        assert!(!valid_table_name("a-b"));
        assert!(!valid_table_name("a b"));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 16, "must sustain 16 concurrent connections");
        assert!(cfg.max_batch > 1);
        assert!(cfg.max_request_bytes >= 1 << 20);
        assert!(cfg.slow_query.is_some(), "slow-query log on by default");
    }

    #[test]
    fn slow_query_log_respects_threshold_and_disable() {
        let q = "scan(emp)";
        let ms = Duration::from_millis;
        assert_eq!(slow_query_line(q, ms(999), Some(ms(1000))), None);
        assert_eq!(slow_query_line(q, ms(999), None), None);
        let line = slow_query_line(q, ms(1500), Some(ms(1000))).unwrap();
        assert!(line.starts_with("slow-query: "));
        assert!(line.contains("1500.000ms"));
        assert!(line.contains("(threshold 1000ms)"));
        assert!(line.ends_with(q));
    }

    #[test]
    fn counter_snapshots_are_consistent_under_concurrent_updates() {
        // Every update bumps queries and loads together under the one lock;
        // a snapshot must never observe them apart.
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    counters.update(|c| {
                        c.queries += 1;
                        c.loads += 1;
                    });
                }
            })
        };
        for _ in 0..1000 {
            let snap = counters.snapshot();
            assert_eq!(snap.queries, snap.loads, "torn counter snapshot");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
