//! The TCP service: bounded worker pool, session loop, graceful shutdown.
//!
//! Plain `std::net` blocking sockets — no async runtime. The accept loop is
//! nonblocking and polls a stop flag; connections use short read timeouts
//! so every thread notices shutdown within ~100ms and drains: in-flight
//! requests are answered, idle sessions get `BYE`, new work is refused with
//! `ERR shutting_down`, and queued-but-unserved connections are still
//! picked up and told the same.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use systolic_machine::{Expr, MachineConfig, Plan, System};
use systolic_storage::{LockMode, LockTable, ReplacerKind, StorageEngine, WalRecord};
use systolic_telemetry::batch::{render_batch, SpanData};
use systolic_telemetry::metrics::QuantileSummary;
use systolic_telemetry::{record_between, root_span, span_in, TraceCtx};

use crate::engine::{self, EngineError, Store};
use crate::frame::{read_frame, FrameRead};
use crate::locks;
use crate::metrics::ServerMetrics;
use crate::profile::{self, FlightRecorder, QueryProfile};
use crate::protocol::{
    analysis_err_frame, cards_frame, checkpointed_frame, err_frame, host_frame, loaded_frame,
    metrics_frame, parse_err_frame, parse_request, profile_frame, profiles_frame, result_frame,
    spans_frame, Request,
};
use crate::router::{RouteOutcome, Router};
use crate::scheduler::{self, Job};
use crate::shutdown;

/// Which connection front end the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One worker thread per active connection (the classic model): simple,
    /// but idle connections hold threads and concurrency is capped at the
    /// pool size.
    Threads,
    /// A single poll(2)-based reactor thread multiplexes every connection —
    /// thousands of idle sessions cost one pollfd each — and dispatches
    /// complete request frames to the worker pool. Connections may pipeline
    /// requests; responses come back in request order per connection.
    Poll,
}

impl IoModel {
    /// The CLI/wire name of this model.
    pub fn label(&self) -> &'static str {
        match self {
            IoModel::Threads => "threads",
            IoModel::Poll => "poll",
        }
    }

    /// Parse a CLI/wire name.
    pub fn parse(s: &str) -> Option<IoModel> {
        match s {
            "threads" => Some(IoModel::Threads),
            "poll" => Some(IoModel::Poll),
            _ => None,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4171` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads — the number of connections served simultaneously.
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker before new
    /// ones are refused with `ERR overloaded`.
    pub max_pending: usize,
    /// The connection front end: classic thread-per-connection or the
    /// poll(2) reactor.
    pub io: IoModel,
    /// Number of independent machine shards relations are partitioned
    /// across; `1` runs the classic single-`System` server.
    pub shards: usize,
    /// Configuration of the shared simulated machine.
    pub machine: MachineConfig,
    /// How long a session waits for the scheduler to answer one request
    /// before giving up with `ERR timeout`.
    pub request_timeout: Duration,
    /// How long the admission scheduler gathers concurrently-arriving
    /// queries before admitting them as one merged schedule.
    pub batch_window: Duration,
    /// Largest number of jobs admitted as one batch.
    pub max_batch: usize,
    /// Largest accepted request frame, in bytes.
    pub max_request_bytes: usize,
    /// Queries slower than this (end-to-end host time) are written to the
    /// slow-query log on stderr; `None` disables the log.
    pub slow_query: Option<Duration>,
    /// Durable storage directory. When set, every `LOAD` and every query
    /// with a `store(...)` side effect is written-ahead to a log under this
    /// directory, and startup replays the log (from the last checkpoint)
    /// before the listener starts answering — so a killed server restarted
    /// on the same directory serves byte-identical `RESULT` frames. `None`
    /// runs fully in memory, exactly as before.
    pub data_dir: Option<PathBuf>,
    /// Buffer-pool capacity of the paged relation store, in 8 KiB pages.
    pub pool_pages: usize,
    /// Page replacement policy for the buffer pool and the machine's
    /// staging-memory eviction.
    pub replacer: ReplacerKind,
    /// Chrome-trace output path. When set, the server installs the process
    /// span collector at startup and, at shutdown, writes one merged trace
    /// covering its own spans, every shard's trailer span batches, and the
    /// flight recorder's simulated per-step schedule — host time on pid 2,
    /// pulse time on pid 1, never mixed.
    pub trace_out: Option<PathBuf>,
    /// Flight-recorder capacity: how many recent query profiles the server
    /// retains for `PROFILES` and the shutdown trace (0 disables it).
    pub profile_history: usize,
    /// Route admitted queries through the cost-based plan compiler
    /// (`sdb serve --optimize on|off`). Every accepted rewrite is proven
    /// schema-preserving and never pulse-regressing by the planner, so
    /// result rows are byte-identical either way; only the pulse accounting
    /// (which prices the cheaper chosen plan) changes.
    pub optimize: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4171".to_string(),
            workers: 32,
            max_pending: 32,
            io: IoModel::Threads,
            shards: 1,
            machine: MachineConfig::default(),
            request_timeout: Duration::from_secs(30),
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            max_request_bytes: 1 << 20,
            slow_query: Some(Duration::from_secs(1)),
            data_dir: None,
            pool_pages: 256,
            replacer: ReplacerKind::Clock,
            trace_out: None,
            profile_history: 64,
            optimize: true,
        }
    }
}

/// Live durability gauges the scheduler maintains and `STATS` reads.
#[derive(Debug, Default)]
pub(crate) struct DurableStats {
    /// Current WAL file length in bytes (drops to 0 at a checkpoint).
    pub(crate) wal_bytes: AtomicU64,
    /// Logical records in the durable history (checkpoint + WAL).
    pub(crate) wal_records: AtomicU64,
    /// Checkpoints taken since startup.
    pub(crate) checkpoints: AtomicU64,
    /// Records replayed during startup recovery.
    pub(crate) recovered: AtomicU64,
}

/// Monotonic service counters, shared between workers and the scheduler.
///
/// One mutex guards the whole set, so a concurrent `STATS` probe (or the
/// final report) always reads a consistent snapshot — it can never see,
/// say, a batch counted whose queries aren't, the torn view the old
/// independent atomics allowed.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    state: Mutex<CounterState>,
}

/// The counter fields; [`Counters::snapshot`] returns a copy of this.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct CounterState {
    pub(crate) queries: u64,
    pub(crate) loads: u64,
    pub(crate) batches: u64,
    pub(crate) max_batch: u64,
    pub(crate) refused: u64,
    pub(crate) timeouts: u64,
    pub(crate) slow_queries: u64,
    pub(crate) queue_hwm: u64,
    pub(crate) sharded: u64,
    pub(crate) shard_fallback: u64,
    pub(crate) rewrites: u64,
    pub(crate) plan_cache_hits: u64,
    pub(crate) cse_hits: u64,
}

impl Counters {
    /// Apply one mutation atomically with respect to snapshots.
    pub(crate) fn update(&self, f: impl FnOnce(&mut CounterState)) {
        f(&mut locks::lock(&self.state));
    }

    /// A consistent copy of every counter.
    pub(crate) fn snapshot(&self) -> CounterState {
        *locks::lock(&self.state)
    }
}

/// A snapshot of service counters, returned when the server exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReport {
    /// Queries answered (including failed ones).
    pub queries: u64,
    /// Tables loaded.
    pub loads: u64,
    /// Multi-query merged schedules admitted.
    pub batches: u64,
    /// Largest batch admitted.
    pub max_batch: u64,
    /// Connections refused because the pool was full.
    pub refused: u64,
    /// Requests that hit the per-request timeout.
    pub timeouts: u64,
    /// High-water mark of the connection wait queue.
    pub queue_hwm: u64,
    /// Queries slower than the slow-query threshold.
    pub slow_queries: u64,
    /// Queries answered by the shard router (fan-out + merge).
    pub sharded: u64,
    /// Queries the router declined, served by the local full-copy system.
    pub shard_fallback: u64,
    /// Planner rewrites accepted across all compiled queries.
    pub rewrites: u64,
    /// Queries whose optimized plan came from the plan cache.
    pub plan_cache_hits: u64,
    /// Queries answered by sharing another identical query's slot in a
    /// merged batch (batch-window common-subexpression elimination).
    pub cse_hits: u64,
}

pub(crate) struct Shared {
    pub(crate) store: RwLock<Store>,
    pub(crate) counters: Arc<Counters>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) active: AtomicUsize,
    pub(crate) cfg: ServerConfig,
    pub(crate) stop: AtomicBool,
    pub(crate) started: Instant,
    /// The shard router, when `cfg.shards > 1`. The local system always
    /// holds a full copy of every table, so routing is an optimisation and
    /// any declined or failed route runs locally instead.
    pub(crate) router: Option<Router>,
    /// Relation-name lock table: `LOAD` and `store(...)` take exclusive
    /// locks, scans take shared ones, so a concurrent reader can never
    /// observe a partially-loaded relation.
    pub(crate) lock_table: LockTable,
    /// Durability gauges, present when `cfg.data_dir` is set.
    pub(crate) durable: Option<Arc<DurableStats>>,
    /// The always-on ring of recent query profiles (`PROFILES`, the
    /// slow-query dump, the shutdown trace's simulated track).
    pub(crate) recorder: FlightRecorder,
    /// Span batches shards returned in `SPANS` trailers, buffered for the
    /// shutdown trace merge.
    pub(crate) remote_spans: Mutex<Vec<SpanData>>,
    /// Compiled-plan cache: query text + catalog fingerprint → the chosen
    /// expression. The fingerprint covers every table's name, arity, row
    /// count, and column domains, so a `LOAD` or `store(...)` that changes
    /// what the cost model would predict silently invalidates stale entries.
    pub(crate) plan_cache: Mutex<HashMap<(String, u64), Expr>>,
}

/// Entries the plan cache holds before it is wholesale cleared. Compiling a
/// plan is microseconds, so an occasional cold restart is cheaper than
/// tracking recency.
const PLAN_CACHE_CAP: usize = 1024;

impl Shared {
    fn new(cfg: ServerConfig) -> io::Result<Self> {
        let metrics = Arc::new(ServerMetrics::new());
        metrics.backend_info(cfg.machine.backend.label()).inc();
        let router = if cfg.shards > 1 {
            Some(Router::start(&cfg)?)
        } else {
            None
        };
        let durable = cfg
            .data_dir
            .as_ref()
            .map(|_| Arc::new(DurableStats::default()));
        let recorder = FlightRecorder::new(cfg.profile_history);
        Ok(Shared {
            store: RwLock::new(Store::new()),
            counters: Arc::new(Counters::default()),
            metrics,
            active: AtomicUsize::new(0),
            cfg,
            stop: AtomicBool::new(false),
            started: Instant::now(),
            router,
            lock_table: LockTable::new(),
            durable,
            recorder,
            remote_spans: Mutex::new(Vec::new()),
            plan_cache: Mutex::new(HashMap::new()),
        })
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || shutdown::signalled()
    }

    fn report(&self) -> ServerReport {
        let c = self.counters.snapshot();
        ServerReport {
            queries: c.queries,
            loads: c.loads,
            batches: c.batches,
            max_batch: c.max_batch,
            refused: c.refused,
            timeouts: c.timeouts,
            queue_hwm: c.queue_hwm,
            slow_queries: c.slow_queries,
            sharded: c.sharded,
            shard_fallback: c.shard_fallback,
            rewrites: c.rewrites,
            plan_cache_hits: c.plan_cache_hits,
            cse_hits: c.cse_hits,
        }
    }
}

/// Accepted connections waiting for a worker.
#[derive(Default)]
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueInner {
    conns: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    /// Enqueue a connection (stamped with its arrival time, so the worker
    /// that picks it up can record the queue wait) and return the new depth.
    fn push(&self, stream: TcpStream) -> usize {
        let mut inner = locks::lock(&self.inner);
        inner.conns.push_back((stream, Instant::now()));
        let depth = inner.conns.len();
        drop(inner);
        self.ready.notify_one();
        depth
    }

    /// Next connection plus its enqueue time, blocking; `None` once closed
    /// *and* drained, so connections queued before shutdown still get
    /// served (and refused politely).
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut inner = locks::lock(&self.inner);
        loop {
            if let Some(entry) = inner.conns.pop_front() {
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = locks::wait(&self.ready, inner);
        }
    }

    fn close(&self) {
        locks::lock(&self.inner).closed = true;
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        locks::lock(&self.inner).conns.len()
    }
}

/// A running server spawned in the background (the programmatic API; tests
/// and the throughput bench use this).
pub struct ServerHandle {
    /// The bound address — with `addr: "127.0.0.1:0"` this is where the
    /// kernel actually put the listener.
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    join: thread::JoinHandle<io::Result<ServerReport>>,
}

impl ServerHandle {
    /// Ask the server to drain and exit (what SIGTERM does to `run`).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the server to exit and return its counter snapshot.
    pub fn join(self) -> io::Result<ServerReport> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Bind and serve in a background thread, returning immediately.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared::new(config)?);
    let serve_shared = Arc::clone(&shared);
    let join = thread::Builder::new()
        .name("systolic-serve".to_string())
        .spawn(move || serve_on(listener, serve_shared, || ()))?;
    Ok(ServerHandle { addr, shared, join })
}

/// Bind and serve on the calling thread until SIGINT/SIGTERM (the `sdb
/// serve` path). Prints a `listening on <addr>` line once ready — after
/// crash recovery has replayed the log, so a client connecting on that cue
/// sees the fully recovered catalog — and a summary line on shutdown.
pub fn run(config: ServerConfig) -> io::Result<ServerReport> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    shutdown::install();
    let shared = Arc::new(Shared::new(config)?);
    let report = serve_on(listener, Arc::clone(&shared), move || {
        println!("listening on {addr}");
        let _ = io::stdout().flush();
    })?;
    println!(
        "shutdown: {} queries ({} batched schedules, largest {}), {} loads, \
         {} refused, {} timeouts",
        report.queries,
        report.batches,
        report.max_batch,
        report.loads,
        report.refused,
        report.timeouts,
    );
    Ok(report)
}

fn serve_on(
    listener: TcpListener,
    shared: Arc<Shared>,
    ready: impl FnOnce(),
) -> io::Result<ServerReport> {
    listener.set_nonblocking(true)?;
    // Tracing on: install the process-global collector before any request
    // runs. In-process shard servers share it, so their spans land here
    // directly *and* arrive again via `SPANS` trailers — the shutdown merge
    // deduplicates by (trace, span) id.
    let trace_collector = shared
        .cfg
        .trace_out
        .as_ref()
        .map(|_| systolic_telemetry::install());
    let mut system = System::new(shared.cfg.machine.clone()).map_err(io::Error::other)?;
    // Crash recovery happens before `ready()` fires and before any frame is
    // answered: open the durable engine, back the machine's disks with its
    // paged store, and redo the logged history in its original order.
    let durable = match &shared.cfg.data_dir {
        Some(dir) => {
            let (engine, records, report) =
                StorageEngine::open_with(dir, shared.cfg.pool_pages, shared.cfg.replacer)
                    .map_err(io::Error::other)?;
            system.attach_storage(&engine.blobs());
            system.set_staging_replacer(shared.cfg.replacer);
            replay(&shared, &mut system, &records);
            let stats = shared
                .durable
                .as_ref()
                .expect("durable stats exist when data_dir is set");
            stats.wal_bytes.store(engine.wal_bytes(), Ordering::SeqCst);
            stats
                .wal_records
                .store(engine.wal_records() as u64, Ordering::SeqCst);
            stats.recovered.store(
                (report.checkpoint_records + report.wal_records) as u64,
                Ordering::SeqCst,
            );
            Some(scheduler::Durable {
                engine,
                stats: Arc::clone(stats),
            })
        }
        None => None,
    };
    ready();
    let (tx, rx) = mpsc::channel::<Job>();
    let mut front_err: Option<io::Error> = None;
    thread::scope(|scope| {
        let window = shared.cfg.batch_window;
        let max_batch = shared.cfg.max_batch;
        let sched_counters = Arc::clone(&shared.counters);
        let sched_metrics = Arc::clone(&shared.metrics);
        scope.spawn(move || {
            scheduler::run(
                system,
                rx,
                window,
                max_batch,
                sched_counters,
                sched_metrics,
                durable,
            )
        });
        let outcome = match shared.cfg.io {
            IoModel::Threads => threads_front_end(scope, &listener, &shared, tx),
            #[cfg(unix)]
            IoModel::Poll => crate::reactor::serve(scope, &listener, &shared, tx),
            #[cfg(not(unix))]
            IoModel::Poll => threads_front_end(scope, &listener, &shared, tx),
        };
        if let Err(e) = outcome {
            shared.stop.store(true, Ordering::SeqCst);
            front_err = Some(e);
        }
    });
    if let Some(router) = &shared.router {
        router.stop();
    }
    if let (Some(path), Some(collector)) = (&shared.cfg.trace_out, trace_collector) {
        systolic_telemetry::uninstall();
        let mut spans: Vec<SpanData> = collector.drain().iter().map(SpanData::from).collect();
        spans.append(&mut locks::lock(&shared.remote_spans));
        let trace = profile::server_trace(&spans, &shared.recorder.profiles());
        if let Err(e) = trace.write_to(path) {
            eprintln!("trace-out: failed to write {}: {e}", path.display());
        }
    }
    match front_err {
        Some(e) => Err(e),
        None => Ok(shared.report()),
    }
}

/// Redo the durable history against a fresh system: loads re-register and
/// re-intern in original order (so §2.3 dictionary codes — and therefore
/// every rendered result — come out identical to the pre-crash server), and
/// logged `store(...)` queries re-run to rebuild their disk write-backs.
/// Individual record failures are logged and skipped: a deterministic
/// failure now also failed before the crash, so skipping reproduces the
/// pre-crash state.
fn replay(shared: &Shared, system: &mut System, records: &[WalRecord]) {
    for record in records {
        match record {
            WalRecord::Load { name, kinds, csv } => {
                let parsed: Option<Vec<systolic_relation::DomainKind>> =
                    kinds.iter().map(|k| engine::kind_of(k)).collect();
                let Some(parsed) = parsed else {
                    eprintln!("recovery: load {name:?} has unknown column kinds; skipped");
                    continue;
                };
                let rel = match locks::write(&shared.store).register(name, &parsed, csv) {
                    Ok(rel) => rel,
                    Err(e) => {
                        eprintln!("recovery: load {name:?} failed to re-register: {e}");
                        continue;
                    }
                };
                system.load_base(name.clone(), rel);
                if let Some(router) = &shared.router {
                    // The shards recovered their partitions from their own
                    // logs; only the router's text-level cache needs
                    // rebuilding — without re-forwarding the rows.
                    router.register_recovered(name, &parsed, csv);
                }
            }
            WalRecord::Query { text } => {
                // Only queries with store(...) side effects are logged; the
                // run rebuilds the write-back. Errors were deterministic
                // before the crash too.
                match engine::prepare(text) {
                    Ok(expr) => {
                        if let Err(e) = system.run(&expr) {
                            eprintln!("recovery: logged query failed to re-run: {e}");
                        }
                    }
                    Err(e) => eprintln!("recovery: logged query failed to parse: {e}"),
                }
            }
            WalRecord::Checkpoint => {}
        }
    }
}

/// The classic front end: a connection queue feeding thread-per-connection
/// workers. Returns when the stop flag is raised (or with the fatal
/// listener error), after closing the queue so workers drain and exit.
fn threads_front_end<'scope>(
    scope: &'scope thread::Scope<'scope, '_>,
    listener: &TcpListener,
    shared: &Arc<Shared>,
    tx: mpsc::Sender<Job>,
) -> io::Result<()> {
    let queue = Arc::new(ConnQueue::default());
    let workers = shared.cfg.workers.max(1);
    for _ in 0..workers {
        let queue = Arc::clone(&queue);
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        scope.spawn(move || worker_loop(&queue, &shared, &tx));
    }
    // Workers now hold the only senders the scheduler waits on: once
    // the queue closes and they exit, the scheduler's channel hangs up
    // and it exits too, so the scope join is deadlock-free.
    drop(tx);
    let mut result = Ok(());
    loop {
        if shared.stopping() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let busy = shared.active.load(Ordering::SeqCst) + queue.len();
                if busy >= workers + shared.cfg.max_pending {
                    shared.counters.update(|c| c.refused += 1);
                    shared.metrics.refused.inc();
                    refuse(stream);
                } else {
                    let depth = queue.push(stream) as u64;
                    shared.metrics.queue_depth.set(depth as f64);
                    shared.metrics.queue_depth_hwm.set_max(depth as f64);
                    shared
                        .counters
                        .update(|c| c.queue_hwm = c.queue_hwm.max(depth));
                }
            }
            // Nonblocking "nothing to accept" is `WouldBlock` on Unix
            // but `TimedOut` on some platforms — treat both as idle.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                shared.stop.store(true, Ordering::SeqCst);
                result = Err(e);
                break;
            }
        }
    }
    queue.close();
    result
}

fn refuse(stream: TcpStream) {
    let mut stream = stream;
    let _ = writeln!(
        stream,
        "{}",
        err_frame("overloaded", "server is at capacity")
    );
    let _ = stream.flush();
}

fn worker_loop(queue: &ConnQueue, shared: &Shared, tx: &mpsc::Sender<Job>) {
    while let Some((stream, enqueued)) = queue.pop() {
        shared.metrics.queue_depth.set(queue.len() as f64);
        record_between("server.queue_wait", None, enqueued, Instant::now());
        shared.active.fetch_add(1, Ordering::SeqCst);
        let _ = serve_conn(stream, shared, tx);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn send(stream: &mut TcpStream, frame: &str) -> io::Result<()> {
    stream.write_all(frame.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn engine_err_frame(err: &EngineError) -> String {
    match err {
        EngineError::Parse { err, query } => parse_err_frame(err, query),
        EngineError::Relation(e) => err_frame("relation", &e.to_string()),
        EngineError::Machine(e) => err_frame("machine", &e.to_string()),
        EngineError::Analysis { diags, query } => analysis_err_frame(diags, query),
    }
}

/// The frames answering one request, and whether the connection should be
/// closed after writing them.
pub(crate) struct Reply {
    /// Response frames, in order (a `QUERY` answers with `RESULT` + `HOST`).
    pub(crate) frames: Vec<String>,
    /// Close the connection after the frames are written.
    pub(crate) close: bool,
}

impl Reply {
    fn frame(frame: String) -> Reply {
        Reply {
            frames: vec![frame],
            close: false,
        }
    }

    fn closing(frame: String) -> Reply {
        Reply {
            frames: vec![frame],
            close: true,
        }
    }
}

/// Serve one request line: the dispatcher both connection front ends (the
/// thread-per-connection loop and the poll reactor's worker pool) share, so
/// protocol semantics cannot drift between the two I/O models. Blocking is
/// allowed here — callers run it on worker threads, never on the reactor.
pub(crate) fn handle_request(shared: &Shared, tx: &mpsc::Sender<Job>, line: &str) -> Reply {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(msg) => return Reply::frame(err_frame("proto", &msg)),
    };
    match request {
        Request::Close => Reply::closing("BYE".to_string()),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            Reply::closing("BYE".to_string())
        }
        Request::Stats => Reply::frame(stats_frame(shared)),
        // Like STATS: observability stays answerable while draining.
        Request::Metrics => Reply::frame(metrics_frame(&shared.metrics.exposition())),
        Request::Profiles => Reply::frame(profiles_frame(&shared.recorder.dump_json())),
        _ if shared.stopping() => Reply::frame(err_frame(
            "shutting_down",
            "server is draining; no new work",
        )),
        Request::Load { name, kinds, csv } => {
            Reply::frame(handle_load(shared, tx, &name, &kinds, &csv))
        }
        Request::Query(query) => respond_query(shared, tx, &query, QueryMode::Plain, None),
        Request::Profile(query) => respond_query(shared, tx, &query, QueryMode::Profile, None),
        Request::QueryCards { query, trace } => {
            respond_query(shared, tx, &query, QueryMode::Cards, trace)
        }
        Request::Checkpoint => Reply::frame(handle_checkpoint(shared, tx)),
    }
}

/// How a query's answer is framed: `QUERY` (two frames), `QUERYC` (plus
/// `CARDS`, and a `SPANS` trailer when trace-stamped), or `PROFILE` (plus
/// the inline `PROFILE` frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryMode {
    /// Public `QUERY`: `RESULT` + `HOST`, byte-identical with or without
    /// profiling anywhere else in the system.
    Plain,
    /// Shard-router `QUERYC`: `RESULT` + `CARDS` + `HOST`.
    Cards,
    /// `PROFILE`: `RESULT` + `PROFILE` + `HOST`.
    Profile,
}

/// Answer a `CHECKPOINT`: ask the scheduler (the thread that owns the WAL)
/// to snapshot the history and reset the log.
fn handle_checkpoint(shared: &Shared, tx: &mpsc::Sender<Job>) -> String {
    if shared.cfg.data_dir.is_none() {
        return err_frame("not_durable", "server is running without --data-dir");
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    if tx.send(Job::Checkpoint { reply: reply_tx }).is_err() {
        return err_frame("shutting_down", "scheduler has exited");
    }
    match reply_rx.recv_timeout(shared.cfg.request_timeout) {
        Ok(Ok((records, bytes))) => checkpointed_frame(records, bytes),
        Ok(Err(detail)) => err_frame("storage", &detail),
        Err(RecvTimeoutError::Timeout) => {
            shared.counters.update(|c| c.timeouts += 1);
            shared.metrics.timeouts.inc();
            err_frame("timeout", "checkpoint timed out")
        }
        Err(RecvTimeoutError::Disconnected) => err_frame("shutting_down", "scheduler has exited"),
    }
}

/// Answer a `QUERY`/`QUERYC`/`PROFILE` under the request span, latency
/// histogram, flight recorder, and slow-query log. Both connection front
/// ends route every query (local or shard-fanned-out) through here, so the
/// slow-query log and the recorder fire identically under `--io threads`
/// and `--io poll`, sharded or not.
fn respond_query(
    shared: &Shared,
    tx: &mpsc::Sender<Job>,
    query: &str,
    mode: QueryMode,
    stamp: Option<TraceCtx>,
) -> Reply {
    let started = Instant::now();
    // A fresh trace per request: concurrent clients must never share a
    // trace id even when the scheduler merges them into one batch schedule.
    // A stamped `QUERYC` instead joins the router's trace, parented under
    // its fan-out span, so all shards' spans merge into one tree.
    let mut span = match stamp {
        Some(parent) => span_in(Some(parent), "server.request"),
        None => root_span("server.request"),
    };
    span.arg("query", query);
    let trace = span.ctx();
    let (mut frames, profile) = handle_query(shared, tx, query, trace, mode);
    drop(span);
    let elapsed = started.elapsed();
    shared.metrics.latency.observe(elapsed.as_nanos() as u64);
    let trace_id = trace.map_or(0, |c| c.trace_id);
    // Every query — not just `PROFILE` — feeds the flight recorder, and
    // failures are recorded (and dumped) too: post-hoc diagnosis must not
    // require reproduction.
    let failed = frames.first().is_some_and(|f| f.starts_with("ERR "));
    let recorded = match profile {
        Some(p) => Some(p),
        None if failed => Some(QueryProfile::error(
            query,
            trace_id,
            shared.cfg.machine.backend.label(),
            &frames[0],
        )),
        None => None,
    };
    let slow = slow_query_line(query, elapsed, shared.cfg.slow_query, trace_id);
    if let Some(p) = recorded {
        if failed || slow.is_some() {
            eprintln!("flight-recorder: {}", p.to_json());
        }
        shared.recorder.record(p);
    }
    if let Some(line) = slow {
        shared.counters.update(|c| c.slow_queries += 1);
        shared.metrics.slow_queries.inc();
        eprintln!("{line}");
    }
    // A trace-stamped shard answer grows its `SPANS` trailer after the
    // request span has closed, so the batch includes it.
    if mode == QueryMode::Cards {
        if let Some(parent) = stamp {
            let batch: Vec<SpanData> = systolic_telemetry::collector()
                .map(|c| {
                    c.trace_spans(parent.trace_id)
                        .iter()
                        .map(SpanData::from)
                        .collect()
                })
                .unwrap_or_default();
            frames.push(spans_frame(&render_batch(&batch)));
        }
    }
    Reply {
        frames,
        close: false,
    }
}

fn serve_conn(mut stream: TcpStream, shared: &Shared, tx: &mpsc::Sender<Job>) -> io::Result<()> {
    // Short read timeout: between frames every session polls the stop flag,
    // so shutdown drains idle connections instead of hanging on them.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut partial = Vec::new();
    loop {
        let line = match read_frame(&mut reader, &mut partial, shared.cfg.max_request_bytes)? {
            FrameRead::TimedOut => {
                if shared.stopping() {
                    send(&mut stream, "BYE")?;
                    return Ok(());
                }
                continue;
            }
            FrameRead::Closed => return Ok(()),
            FrameRead::TooLong => {
                // Framing is lost once we stop mid-line; report and hang up.
                let frame = err_frame(
                    "too_large",
                    &format!("frame exceeds {} bytes", shared.cfg.max_request_bytes),
                );
                send(&mut stream, &frame)?;
                return Ok(());
            }
            FrameRead::Frame(line) => line,
        };
        let reply = handle_request(shared, tx, &line);
        for frame in &reply.frames {
            send(&mut stream, frame)?;
        }
        if reply.close {
            return Ok(());
        }
    }
}

fn stats_frame(shared: &Shared) -> String {
    let tables = locks::read(&shared.store).table_count();
    let report = shared.report();
    // The one shared reading of the latency histogram: `STATS` and the
    // profile output render the same digits by construction.
    let lat = QuantileSummary::from_histogram(&shared.metrics.latency);
    let (durable, wal_records, wal_bytes, checkpoints, recovered) = match &shared.durable {
        Some(d) => (
            1,
            d.wal_records.load(Ordering::SeqCst),
            d.wal_bytes.load(Ordering::SeqCst),
            d.checkpoints.load(Ordering::SeqCst),
            d.recovered.load(Ordering::SeqCst),
        ),
        None => (0, 0, 0, 0, 0),
    };
    // New fields only ever get appended: clients key on names, but scripted
    // consumers of older servers may still slice by position.
    format!(
        "STATS tables={tables} queries={} loads={} batches={} max_batch={} refused={} \
         timeouts={} active={} uptime_ms={} queue_hwm={} slow={} lat_p50_ns={} \
         lat_p95_ns={} lat_p99_ns={} lat_count={} backend={} sharded={} \
         shard_fallback={} durable={durable} wal_records={wal_records} \
         wal_bytes={wal_bytes} checkpoints={checkpoints} recovered={recovered} \
         optimize={optimize} rewrites={} plan_cache_hits={} cse_hits={}",
        report.queries,
        report.loads,
        report.batches,
        report.max_batch,
        report.refused,
        report.timeouts,
        shared.active.load(Ordering::SeqCst),
        shared.started.elapsed().as_millis(),
        report.queue_hwm,
        report.slow_queries,
        lat.p50,
        lat.p95,
        lat.p99,
        lat.count,
        shared.cfg.machine.backend.label(),
        report.sharded,
        report.shard_fallback,
        report.rewrites,
        report.plan_cache_hits,
        report.cse_hits,
        optimize = u8::from(shared.cfg.optimize),
    )
}

/// The slow-query log line, if `elapsed` reaches the threshold. Carries the
/// request's trace id (0 when tracing is off) so log lines join against
/// Chrome traces and flight-recorder profiles.
fn slow_query_line(
    query: &str,
    elapsed: Duration,
    threshold: Option<Duration>,
    trace_id: u64,
) -> Option<String> {
    let threshold = threshold?;
    if elapsed < threshold {
        return None;
    }
    Some(format!(
        "slow-query: {:.3}ms (threshold {}ms) trace={trace_id} {query}",
        elapsed.as_secs_f64() * 1e3,
        threshold.as_millis(),
    ))
}

fn valid_table_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn handle_load(
    shared: &Shared,
    tx: &mpsc::Sender<Job>,
    name: &str,
    kinds: &[systolic_relation::DomainKind],
    csv: &str,
) -> String {
    if !valid_table_name(name) {
        return err_frame(
            "proto",
            &format!("bad table name {name:?}: letters, digits, underscores"),
        );
    }
    // Exclusive relation lock for the whole load: a concurrent query
    // scanning this name blocks until the relation is fully registered,
    // loaded, and acknowledged — it can never observe a partial load.
    let _lock = shared.lock_table.acquire(name, LockMode::Exclusive);
    // Register under the write lock, then ship the encoded relation to the
    // scheduler so it lands on the machine's disk in admission order. The
    // registration is speculative until the scheduler acknowledges the
    // load: if we time out first we win the fence, the scheduler skips the
    // job, and we unregister — catalog and machine stay in step with what
    // the client was told.
    let rel = {
        let mut store = locks::write(&shared.store);
        if store.has_table(name) {
            return err_frame("conflict", &format!("table {name:?} already exists"));
        }
        match store.register(name, kinds, csv) {
            Ok(rel) => rel,
            Err(e) => return engine_err_frame(&e),
        }
    };
    let fence = Arc::new(AtomicBool::new(false));
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job::Load {
        name: name.to_string(),
        rel,
        kinds: kinds.to_vec(),
        csv: csv.to_string(),
        fence: Arc::clone(&fence),
        reply: reply_tx,
    };
    if tx.send(job).is_err() {
        locks::write(&shared.store).unregister(name);
        return err_frame("shutting_down", "scheduler has exited");
    }
    match reply_rx.recv_timeout(shared.cfg.request_timeout) {
        Ok(rows) => loaded_shard_forwarded(shared, name, kinds, csv, rows),
        Err(RecvTimeoutError::Timeout) => {
            if fence.swap(true, Ordering::SeqCst) {
                // The scheduler claimed the fence first: the load is landing
                // (or has landed) on the machine, so wait for the real
                // acknowledgement rather than telling the client a lie.
                match reply_rx.recv() {
                    Ok(rows) => loaded_shard_forwarded(shared, name, kinds, csv, rows),
                    Err(_) => err_frame("shutting_down", "scheduler exited mid-load"),
                }
            } else {
                // We won: the scheduler will skip the job, so the relation
                // never reaches the machine. Undo the speculative catalog
                // registration to match.
                locks::write(&shared.store).unregister(name);
                shared.counters.update(|c| c.timeouts += 1);
                shared.metrics.timeouts.inc();
                err_frame("timeout", "load timed out")
            }
        }
        Err(RecvTimeoutError::Disconnected) => {
            // Scheduler died without acknowledging; the load may or may not
            // have landed, but no client was told it did — drop it.
            locks::write(&shared.store).unregister(name);
            err_frame("shutting_down", "scheduler has exited")
        }
    }
}

/// Forward a successfully-loaded table's partitions to the shards (when
/// routing), then answer `LOADED`. Forwarding failure only degrades the
/// table to local-only — the local load is the truth the client was told.
fn loaded_shard_forwarded(
    shared: &Shared,
    name: &str,
    kinds: &[systolic_relation::DomainKind],
    csv: &str,
    rows: usize,
) -> String {
    if let Some(router) = &shared.router {
        router.register_load(name, kinds, csv);
    }
    loaded_frame(name, rows)
}

/// Run the cost-based plan compiler over a checked expression, consulting
/// the plan cache first. Cache keys pair the query text with the catalog
/// fingerprint, so catalog changes (loads, `store(...)` write-backs) route
/// the next occurrence back through the compiler instead of serving a plan
/// costed against stale cardinalities.
///
/// The compiler only errs when the input does not analyze — impossible
/// here, `prepare_checked` just accepted it — but if it ever does, the
/// checked tree runs unoptimized rather than failing the query.
fn optimize_plan(
    shared: &Shared,
    query: &str,
    view: &systolic_analyzer::CatalogView,
    expr: Expr,
) -> Expr {
    let key = (
        query.to_string(),
        systolic_planner::catalog_fingerprint(view),
    );
    {
        let cache = locks::lock(&shared.plan_cache);
        if let Some(plan) = cache.get(&key) {
            shared.metrics.plan_cache_hits.inc();
            shared.counters.update(|c| c.plan_cache_hits += 1);
            return plan.clone();
        }
    }
    shared.metrics.plan_cache_misses.inc();
    match systolic_planner::optimize(&expr, view, &shared.cfg.machine) {
        Ok(choice) => {
            for event in &choice.rewrites {
                shared
                    .metrics
                    .rewrite_hits(event.rule)
                    .add(event.sites as u64);
            }
            shared
                .counters
                .update(|c| c.rewrites += choice.rewrites.len() as u64);
            let mut cache = locks::lock(&shared.plan_cache);
            if cache.len() >= PLAN_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, choice.expr.clone());
            choice.expr
        }
        Err(_) => expr,
    }
}

/// Answer one query: the `RESULT` (or `ERR`) frame, the `CARDS` frame for
/// `QUERYC`, the `PROFILE` frame for `PROFILE`, and the `HOST` frame on
/// success — plus the built [`QueryProfile`] for the flight recorder.
fn handle_query(
    shared: &Shared,
    tx: &mpsc::Sender<Job>,
    query: &str,
    trace: Option<TraceCtx>,
    mode: QueryMode,
) -> (Vec<String>, Option<QueryProfile>) {
    // Static analysis before admission: a query that cannot execute (typo'd
    // relation, type error, capacity overflow, ...) never occupies a slot in
    // a merged batch schedule, and the client gets a stable SA00N code with
    // carets instead of a mid-run machine error.
    let (expr, analysis) = {
        let view = locks::read(&shared.store).catalog_view();
        let expr = match engine::prepare_checked(query, &view, &shared.cfg.machine) {
            Ok((expr, _pre)) => expr,
            Err(e) => return (vec![engine_err_frame(&e)], None),
        };
        // Cost-based compilation between checking and admission: the chosen
        // plan replaces the checked one, so everything downstream — the
        // re-analysis below, `Plan::compile`, the scheduler, PROFILE's
        // drift accounting — sees only the optimized tree.
        let expr = if shared.cfg.optimize {
            optimize_plan(shared, query, &view, expr)
        } else {
            expr
        };
        // The profile's per-step predictions come from re-analyzing the
        // *rewritten* tree — the shape `Plan::compile` actually runs —
        // under the same catalog read, before execution can register
        // `store(...)` targets and change what the analyzer would say.
        let analysis = systolic_analyzer::analyze(&expr, &view, &shared.cfg.machine, &[]).ok();
        (expr, analysis)
    };
    let alignment = systolic_analyzer::plan_alignment(&expr);
    let plan = Plan::compile(&expr);
    // Relation locks for the whole request: shared on every scanned name,
    // exclusive on every `store(...)` target. All-or-nothing acquisition
    // (sorted, no hold-and-wait) keeps concurrent sessions deadlock-free,
    // and a reader can never interleave with a load or store of its input.
    let mut wants: Vec<(String, LockMode)> = engine::scan_names(&expr)
        .into_iter()
        .map(|n| (n, LockMode::Shared))
        .collect();
    wants.extend(
        engine::store_names(&expr)
            .into_iter()
            .map(|n| (n, LockMode::Exclusive)),
    );
    let lock_started = Instant::now();
    let _lock = shared.lock_table.acquire_all(wants);
    let lock_wait_ns = lock_started.elapsed().as_nanos() as u64;
    let finish = |result: String, reply: &scheduler::QueryReply, rows: u64| {
        let built = profile::build(
            query,
            trace.map_or(0, |c| c.trace_id),
            shared.cfg.machine.backend.label(),
            analysis.as_ref(),
            &alignment,
            &plan,
            reply,
            rows,
            lock_wait_ns,
            QuantileSummary::from_histogram(&shared.metrics.latency),
        );
        let mut frames = vec![result];
        match mode {
            QueryMode::Plain => {}
            QueryMode::Cards => frames.push(cards_frame(&reply.step_rows)),
            QueryMode::Profile => frames.push(profile_frame(&built.to_json())),
        }
        frames.push(host_frame(reply.host_wall_ns));
        (frames, Some(built))
    };
    if let Some(router) = &shared.router {
        match router.try_query(shared, tx, &expr, query, trace) {
            RouteOutcome::Answered { result, reply } => {
                shared.metrics.sharded.inc();
                shared.counters.update(|c| c.sharded += 1);
                // The routed result frame was built from the merged rows;
                // the router verified `step_rows.last()` equals its count.
                let rows = reply.step_rows.last().copied().unwrap_or(0);
                return finish(result, &reply, rows);
            }
            RouteOutcome::Failed { frame } => return (vec![frame], None),
            RouteOutcome::NotRouted => {
                shared.metrics.shard_fallback.inc();
                shared.counters.update(|c| c.shard_fallback += 1);
                // The local run may overwrite a routed base table via
                // `store(...)`; stop routing such tables first.
                router.invalidate(&expr);
            }
        }
    }
    let fence = Arc::new(AtomicBool::new(false));
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    if tx
        .send(Job::Query {
            expr,
            text: query.to_string(),
            trace,
            fence: Arc::clone(&fence),
            reply: reply_tx,
            submitted: Instant::now(),
        })
        .is_err()
    {
        return (
            vec![err_frame("shutting_down", "scheduler has exited")],
            None,
        );
    }
    let reply = match reply_rx.recv_timeout(shared.cfg.request_timeout) {
        Ok(reply) => reply,
        Err(RecvTimeoutError::Timeout) => {
            if fence.swap(true, Ordering::SeqCst) {
                // The scheduler claimed the fence first: the query is
                // running and its side effects (e.g. `store(...)`) will
                // land, so block for the real answer — `ERR timeout` here
                // would let the catalog diverge from what the client heard.
                match reply_rx.recv() {
                    Ok(reply) => reply,
                    Err(_) => {
                        return (
                            vec![err_frame("shutting_down", "scheduler exited mid-query")],
                            None,
                        )
                    }
                }
            } else {
                // We won: the scheduler will skip the query entirely — no
                // run, no side effects — so `ERR timeout` is the truth.
                shared.counters.update(|c| c.timeouts += 1);
                shared.metrics.timeouts.inc();
                return (vec![err_frame("timeout", "query timed out")], None);
            }
        }
        Err(RecvTimeoutError::Disconnected) => {
            return (
                vec![err_frame("shutting_down", "scheduler has exited")],
                None,
            )
        }
    };
    match reply {
        Ok(reply) => {
            let csv = {
                let store = locks::read(&shared.store);
                store.render_csv(&reply.result)
            };
            match csv {
                Ok(csv) => {
                    let result = result_frame(reply.result.len(), &reply.stats, &csv);
                    finish(result, &reply, reply.result.len() as u64)
                }
                Err(e) => (vec![engine_err_frame(&e)], None),
            }
        }
        Err(machine_err) => (vec![err_frame("machine", &machine_err.to_string())], None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_names_are_validated() {
        assert!(valid_table_name("emp"));
        assert!(valid_table_name("_t2"));
        assert!(!valid_table_name(""));
        assert!(!valid_table_name("2fast"));
        assert!(!valid_table_name("a-b"));
        assert!(!valid_table_name("a b"));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 16, "must sustain 16 concurrent connections");
        assert!(cfg.max_batch > 1);
        assert!(cfg.max_request_bytes >= 1 << 20);
        assert!(cfg.slow_query.is_some(), "slow-query log on by default");
    }

    #[test]
    fn slow_query_log_respects_threshold_and_disable() {
        let q = "scan(emp)";
        let ms = Duration::from_millis;
        assert_eq!(slow_query_line(q, ms(999), Some(ms(1000)), 0), None);
        assert_eq!(slow_query_line(q, ms(999), None, 7), None);
        let line = slow_query_line(q, ms(1500), Some(ms(1000)), 42).unwrap();
        assert!(line.starts_with("slow-query: "));
        assert!(line.contains("1500.000ms"));
        assert!(line.contains("(threshold 1000ms)"));
        assert!(line.contains("trace=42"), "{line}");
        assert!(line.ends_with(q));
    }

    #[test]
    fn counter_snapshots_are_consistent_under_concurrent_updates() {
        // Every update bumps queries and loads together under the one lock;
        // a snapshot must never observe them apart.
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    counters.update(|c| {
                        c.queries += 1;
                        c.loads += 1;
                    });
                }
            })
        };
        for _ in 0..1000 {
            let snap = counters.snapshot();
            assert_eq!(snap.queries, snap.loads, "torn counter snapshot");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
