//! The poll(2) event-driven connection front end.
//!
//! One reactor thread owns every connection: it multiplexes the listener,
//! a wake pipe, and all client sockets through a single poll(2) call, so an
//! idle connection costs one `pollfd` — not a parked worker thread. Complete
//! request frames are handed to a small worker pool (which may block on the
//! admission scheduler); finished responses come back through a completion
//! list plus a wake byte, and the reactor writes them out strictly in
//! per-connection request order, so clients may *pipeline* many frames and
//! still read answers in the order they asked.
//!
//! Nonblocking I/O is handled in full: reads accumulate partial frames
//! across polls, writes park unsent bytes and re-arm `POLLOUT`, and both
//! treat `WouldBlock`/`TimedOut` (the two kinds a nonblocking socket
//! surfaces across platforms) as "try again later".
//!
//! Overload is shed per *request* rather than per connection: when more
//! requests are queued than `workers + max_pending`, new frames are answered
//! `ERR overloaded` locally (still in pipeline order) instead of waiting.
//!
//! Shutdown drains like the threads model: in-flight requests are answered,
//! idle connections get `BYE`, new work is refused `ERR shutting_down` by
//! the shared dispatcher, and a grace period bounds how long a slow reader
//! can hold the server open.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::locks;
use crate::protocol::err_frame;
use crate::scheduler::Job;
use crate::server::{handle_request, Reply, Shared};

/// Thin poll(2) binding. This module and [`crate::shutdown`] are the
/// crate's only `unsafe_code` exceptions (the crate root carries
/// `#![deny(unsafe_code)]`): multiplexing readiness across thousands of
/// sockets without an async runtime requires the one libc call `std`
/// doesn't wrap.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    /// Readable data (or a peer close, on some platforms) is available.
    pub(super) const POLLIN: i16 = 0x001;
    /// Writing would not block.
    pub(super) const POLLOUT: i16 = 0x004;
    /// Error condition (always polled; only meaningful in `revents`).
    pub(super) const POLLERR: i16 = 0x008;
    /// Peer hung up (always polled; only meaningful in `revents`).
    pub(super) const POLLHUP: i16 = 0x010;

    /// `struct pollfd`, laid out exactly as poll(2) expects.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct PollFd {
        pub(super) fd: RawFd,
        pub(super) events: i16,
        pub(super) revents: i16,
    }

    // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the BSDs
    // (including macOS).
    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
    }

    /// Block until some fd is ready or `timeout_ms` elapses; returns the
    /// number of entries with nonzero `revents` (zero on timeout). `EINTR`
    /// is reported as zero ready fds so callers simply re-poll.
    pub(super) fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // Safety: `fds` is a valid exclusively-borrowed slice of `repr(C)`
        // pollfd records for the whole call; the kernel reads `fd`/`events`
        // and writes only the `revents` fields inside the slice bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

/// A complete request frame handed to the worker pool.
struct WorkItem {
    token: usize,
    generation: u64,
    seq: u64,
    line: String,
}

/// A finished response travelling back to the reactor.
struct Completion {
    token: usize,
    generation: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// Per-connection state owned by the reactor thread.
struct Conn {
    stream: TcpStream,
    /// Guards against completions for a previous occupant of this token.
    generation: u64,
    /// Bytes read but not yet forming a complete `\n`-terminated frame.
    read_buf: Vec<u8>,
    /// Response bytes accepted for writing, in order.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has actually reached the socket.
    write_pos: usize,
    /// Sequence number assigned to the next request frame read.
    next_seq: u64,
    /// Sequence number of the next response allowed into `write_buf` —
    /// this is what keeps pipelined responses in request order.
    next_write: u64,
    /// Out-of-order finished responses waiting for their turn.
    pending: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests dispatched (or shed) whose responses haven't entered
    /// `write_buf` yet.
    inflight: usize,
    /// Stop reading; close once `write_buf` drains.
    closing: bool,
    /// Peer closed its write half; serve what's pipelined, then close.
    read_eof: bool,
    /// Drain `BYE` already queued (shutdown path), never queue another.
    said_bye: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            inflight: 0,
            closing: false,
            read_eof: false,
            said_bye: false,
        }
    }

    /// Move every response that is next in request order into the write
    /// buffer.
    fn flush_ordered(&mut self) {
        while let Some((bytes, close)) = self.pending.remove(&self.next_write) {
            self.write_buf.extend_from_slice(&bytes);
            self.next_write += 1;
            self.inflight = self.inflight.saturating_sub(1);
            if close {
                self.closing = true;
                self.pending.clear();
                break;
            }
        }
    }

    /// Whether this connection has nothing left to do and can be dropped.
    fn finished(&self) -> bool {
        let drained = self.write_pos >= self.write_buf.len();
        (self.closing && drained)
            || (self.read_eof && drained && self.inflight == 0 && self.pending.is_empty())
    }
}

/// How long, after a drain begins, a peer that won't read its responses may
/// keep its connection (and thus the server) alive.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Run the poll front end on the calling thread, spawning its worker pool
/// into `scope`. Returns when the server has drained after a stop signal,
/// or with the fatal listener error.
pub(crate) fn serve<'scope>(
    scope: &'scope thread::Scope<'scope, '_>,
    listener: &TcpListener,
    shared: &Arc<Shared>,
    jobs: Sender<Job>,
) -> io::Result<()> {
    let (work_tx, work_rx) = mpsc::channel::<WorkItem>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;

    for _ in 0..shared.cfg.workers.max(1) {
        let work_rx = Arc::clone(&work_rx);
        let completions = Arc::clone(&completions);
        let shared = Arc::clone(shared);
        let jobs = jobs.clone();
        let wake = wake_tx.try_clone()?;
        scope.spawn(move || pool_worker(&work_rx, &completions, &shared, &jobs, wake));
    }
    // Workers hold the only remaining job senders: when `work_tx` drops at
    // the end of the reactor loop they exit, their job senders drop, and
    // the scheduler's channel hangs up — the same deadlock-free teardown
    // order as the threads model.
    drop(jobs);

    let mut reactor = Reactor {
        shared,
        conns: Vec::new(),
        free: Vec::new(),
        generation: 0,
        work_tx,
        completions,
        wake_rx,
        queued: 0,
    };
    reactor.run(listener)
}

/// One pool worker: take a frame, run the shared dispatcher (blocking on
/// the scheduler is fine here), hand the rendered bytes back, wake the
/// reactor.
fn pool_worker(
    work_rx: &Mutex<Receiver<WorkItem>>,
    completions: &Mutex<Vec<Completion>>,
    shared: &Shared,
    jobs: &Sender<Job>,
    mut wake: UnixStream,
) {
    loop {
        // Holding the lock while blocked in `recv` is the standard shared-
        // receiver pattern: exactly one worker waits in `recv`, the rest
        // wait on the mutex, and an arriving item releases both in turn.
        let item = match locks::lock(work_rx).recv() {
            Ok(item) => item,
            Err(_) => return,
        };
        let reply = handle_request(shared, jobs, &item.line);
        push_completion(
            completions,
            &mut wake,
            Completion {
                token: item.token,
                generation: item.generation,
                seq: item.seq,
                bytes: render(&reply),
                close: reply.close,
            },
        );
    }
}

fn render(reply: &Reply) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in &reply.frames {
        bytes.extend_from_slice(frame.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

fn push_completion(completions: &Mutex<Vec<Completion>>, wake: &mut UnixStream, c: Completion) {
    locks::lock(completions).push(c);
    // A failed or would-block write is fine: the pipe already holds an
    // unread wake byte, so the reactor is waking regardless.
    let _ = wake.write(&[1]);
}

struct Reactor<'a> {
    shared: &'a Shared,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    generation: u64,
    work_tx: Sender<WorkItem>,
    completions: Arc<Mutex<Vec<Completion>>>,
    wake_rx: UnixStream,
    queued: usize,
}

impl Reactor<'_> {
    fn run(&mut self, listener: &TcpListener) -> io::Result<()> {
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let mut tokens: Vec<usize> = Vec::new();
        let mut drain_started: Option<Instant> = None;
        loop {
            let stopping = self.shared.stopping();
            if stopping {
                let started = *drain_started.get_or_insert_with(Instant::now);
                self.begin_drain();
                if self.open_conns() == 0 {
                    return Ok(());
                }
                if started.elapsed() > DRAIN_GRACE {
                    // A peer that won't read its BYE doesn't get to pin the
                    // process.
                    self.conns.clear();
                    self.publish_active();
                    return Ok(());
                }
            }

            fds.clear();
            tokens.clear();
            fds.push(sys::PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            let listener_slot = if stopping {
                None
            } else {
                fds.push(sys::PollFd {
                    fd: listener.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
                Some(1)
            };
            let base = fds.len();
            for (token, slot) in self.conns.iter().enumerate() {
                let Some(conn) = slot else { continue };
                let mut events = 0i16;
                if !conn.closing && !conn.read_eof {
                    events |= sys::POLLIN;
                }
                if conn.write_pos < conn.write_buf.len() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                tokens.push(token);
            }

            // 100ms cap so the stop flag is polled even when fully idle.
            sys::wait(&mut fds, 100)?;

            if fds[0].revents != 0 {
                self.drain_completions();
            }
            if let Some(slot) = listener_slot {
                if fds[slot].revents != 0 {
                    self.accept_ready(listener)?;
                }
            }
            for (i, token) in tokens.iter().enumerate() {
                let revents = fds[base + i].revents;
                if revents == 0 {
                    continue;
                }
                if revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
                    self.read_ready(*token);
                }
                // Writes are attempted in the sweep below for every
                // connection with buffered output, covering POLLOUT too.
            }
            self.sweep();
        }
    }

    fn open_conns(&self) -> usize {
        self.conns.iter().filter(|slot| slot.is_some()).count()
    }

    fn publish_active(&self) {
        self.shared
            .active
            .store(self.open_conns(), Ordering::SeqCst);
    }

    /// On shutdown: every connection with no work in flight gets `BYE` and
    /// closes once it drains; connections still owed responses get their
    /// `BYE` on a later pass, after `flush_ordered` empties them.
    fn begin_drain(&mut self) {
        for slot in &mut self.conns {
            let Some(conn) = slot else { continue };
            if conn.inflight == 0 && conn.pending.is_empty() && !conn.said_bye && !conn.closing {
                conn.write_buf.extend_from_slice(b"BYE\n");
                conn.said_bye = true;
                conn.closing = true;
            }
        }
    }

    fn accept_ready(&mut self, listener: &TcpListener) -> io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.generation += 1;
                    let conn = Conn::new(stream, self.generation);
                    match self.free.pop() {
                        Some(token) => self.conns[token] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    self.publish_active();
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(())
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Fatal listener errors stop the server, like the threads
                // front end.
                Err(e) => return Err(e),
            }
        }
    }

    fn drain_completions(&mut self) {
        let mut buf = [0u8; 256];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
        let done = std::mem::take(&mut *locks::lock(&self.completions));
        for c in done {
            self.queued = self.queued.saturating_sub(1);
            self.shared.metrics.queue_depth.set(self.queued as f64);
            let Some(Some(conn)) = self.conns.get_mut(c.token) else {
                continue;
            };
            if conn.generation != c.generation {
                continue;
            }
            conn.pending.insert(c.seq, (c.bytes, c.close));
            conn.flush_ordered();
        }
    }

    fn read_ready(&mut self, token: usize) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        if conn.closing || conn.read_eof {
            return;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_eof = true;
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Connection error: nothing further can be delivered.
                    self.conns[token] = None;
                    self.free.push(token);
                    self.publish_active();
                    return;
                }
            }
        }
        self.extract_frames(token);
    }

    /// Pull every complete line out of the read buffer and dispatch it;
    /// enforce the frame size cap on what remains.
    fn extract_frames(&mut self, token: usize) {
        loop {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                break;
            };
            let mut line_bytes: Vec<u8> = conn.read_buf.drain(..=pos).collect();
            line_bytes.pop();
            if line_bytes.last() == Some(&b'\r') {
                line_bytes.pop();
            }
            if line_bytes.len() > self.shared.cfg.max_request_bytes {
                let max = self.shared.cfg.max_request_bytes;
                self.complete_local(
                    token,
                    err_frame("too_large", &format!("frame exceeds {max} bytes")),
                    true,
                );
                return;
            }
            match String::from_utf8(line_bytes) {
                Ok(line) => self.dispatch(token, line),
                Err(_) => {
                    // Framing survived but the payload is garbage; answer
                    // in order and keep the session.
                    self.complete_local(
                        token,
                        err_frame("proto", "frame is not valid UTF-8"),
                        false,
                    );
                }
            }
        }
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        if conn.read_buf.len() > self.shared.cfg.max_request_bytes {
            // An over-long partial frame can never complete; framing is
            // lost, so report and hang up (same contract as the threads
            // model).
            let max = self.shared.cfg.max_request_bytes;
            self.complete_local(
                token,
                err_frame("too_large", &format!("frame exceeds {max} bytes")),
                true,
            );
        }
    }

    /// Hand one frame to the worker pool — or shed it with `ERR overloaded`
    /// when more requests are queued than the pool plus the configured
    /// backlog would ever serve promptly.
    fn dispatch(&mut self, token: usize, line: String) {
        let shed_at = self.shared.cfg.workers.max(1) + self.shared.cfg.max_pending;
        if self.queued >= shed_at {
            self.shared.counters.update(|c| c.refused += 1);
            self.shared.metrics.refused.inc();
            self.complete_local(
                token,
                err_frame("overloaded", "server is at capacity"),
                false,
            );
            return;
        }
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight += 1;
        let generation = conn.generation;
        self.queued += 1;
        self.shared.metrics.queue_depth.set(self.queued as f64);
        self.shared
            .metrics
            .queue_depth_hwm
            .set_max(self.queued as f64);
        let queued = self.queued as u64;
        self.shared
            .counters
            .update(|c| c.queue_hwm = c.queue_hwm.max(queued));
        let _ = self.work_tx.send(WorkItem {
            token,
            generation,
            seq,
            line,
        });
    }

    /// Answer a frame from the reactor itself, still in pipeline order.
    fn complete_local(&mut self, token: usize, frame: String, close: bool) {
        let Some(Some(conn)) = self.conns.get_mut(token) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight += 1;
        let mut bytes = frame.into_bytes();
        bytes.push(b'\n');
        conn.pending.insert(seq, (bytes, close));
        conn.flush_ordered();
    }

    /// Write out what can be written and reap finished connections.
    fn sweep(&mut self) {
        let mut changed = false;
        for token in 0..self.conns.len() {
            let Some(conn) = &mut self.conns[token] else {
                continue;
            };
            if !try_write(conn) || conn.finished() {
                self.conns[token] = None;
                self.free.push(token);
                changed = true;
            }
        }
        if changed {
            self.publish_active();
        }
    }
}

/// Push buffered bytes to the socket; `false` means the connection is dead.
fn try_write(conn: &mut Conn) -> bool {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.write_pos += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.write_pos >= conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_wait_sees_readable_pipe() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [sys::PollFd {
            fd: b.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        }];
        // Nothing written yet: times out with zero ready fds.
        assert_eq!(sys::wait(&mut fds, 10).unwrap(), 0);
        a.write_all(b"x").unwrap();
        fds[0].revents = 0;
        assert_eq!(sys::wait(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].revents & sys::POLLIN != 0);
    }

    #[test]
    fn flush_ordered_releases_responses_in_request_order() {
        let (stream, _peer) = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let peer = TcpStream::connect(addr).unwrap();
            let (stream, _) = listener.accept().unwrap();
            (stream, peer)
        };
        let mut conn = Conn::new(stream, 1);
        conn.next_seq = 3;
        conn.inflight = 3;
        // Responses 1 and 2 finish before 0: nothing may be written yet.
        conn.pending.insert(1, (b"second\n".to_vec(), false));
        conn.pending.insert(2, (b"third\n".to_vec(), false));
        conn.flush_ordered();
        assert!(conn.write_buf.is_empty());
        conn.pending.insert(0, (b"first\n".to_vec(), false));
        conn.flush_ordered();
        assert_eq!(conn.write_buf, b"first\nsecond\nthird\n".to_vec());
        assert_eq!(conn.inflight, 0);
    }

    #[test]
    fn a_closing_response_discards_later_pipeline_entries() {
        let (stream, _peer) = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let peer = TcpStream::connect(addr).unwrap();
            let (stream, _) = listener.accept().unwrap();
            (stream, peer)
        };
        let mut conn = Conn::new(stream, 1);
        conn.next_seq = 2;
        conn.inflight = 2;
        conn.pending.insert(0, (b"BYE\n".to_vec(), true));
        conn.pending.insert(1, (b"late\n".to_vec(), false));
        conn.flush_ordered();
        assert!(conn.closing);
        assert_eq!(conn.write_buf, b"BYE\n".to_vec());
        assert!(conn.pending.is_empty());
    }
}
