//! The admission scheduler: the single thread that owns the machine.
//!
//! Workers hand it jobs over a channel; it gathers whatever arrives within
//! a short window (or until the batch cap) and admits the set as *one*
//! merged dependency-level schedule via
//! [`System::run_batch_accounted`] — this is where the paper's "set of
//! transactions" concurrency actually happens: queries from different TCP
//! connections share crossbar ports and devices inside one simulated
//! makespan.
//!
//! Each query's reply still carries its *standalone* accounting (stats and
//! timeline priced as if it ran alone), which `run_batch_accounted`
//! guarantees is bit-identical to a fresh solo run — so batching changes
//! throughput, never answers.
//!
//! Telemetry: the gather phase runs under a `server.batch_window` span and
//! each merged admission under a `server.batch` span (the machine's own
//! spans nest beneath it). Per request, a `server.batch_run` span parented
//! to *that request's* trace carries the shared batch span id — so two
//! merged requests keep distinct trace ids while both point at the one
//! batch that served them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use systolic_machine::{Expr, MachineError, Plan, RunStats, System, Timeline};
use systolic_relation::{DomainKind, MultiRelation};
use systolic_storage::StorageEngine;
use systolic_telemetry::{root_span, span_in, TraceCtx};

use crate::engine::{kind_name, store_names};
use crate::metrics::ServerMetrics;
use crate::server::{Counters, DurableStats};

/// A query waiting in a merged batch: its expression and source text, the
/// submitting request's trace, its timeout fence, the reply channel, and the
/// host-side waits measured on its way through the scheduler.
struct PendingQuery {
    expr: Expr,
    text: String,
    trace: Option<TraceCtx>,
    fence: Arc<AtomicBool>,
    reply: SyncSender<Result<QueryReply, MachineError>>,
    /// When the submitting worker handed the job to the scheduler.
    submitted: Instant,
    /// Host ns from submission to admission (queue + gather window).
    queue_wait_ns: u64,
    /// Host ns spent write-ahead-logging this query (0 when read-only or
    /// not durable).
    wal_fsync_ns: u64,
}

/// The scheduler's durable half: the storage engine (WAL + paged store)
/// plus the gauges `STATS` reads. Owned by the scheduler thread, so every
/// log append happens in admission order — the order recovery replays.
pub(crate) struct Durable {
    pub(crate) engine: StorageEngine,
    pub(crate) stats: Arc<DurableStats>,
}

impl Durable {
    fn refresh(&self) {
        self.stats
            .wal_bytes
            .store(self.engine.wal_bytes(), Ordering::SeqCst);
        self.stats
            .wal_records
            .store(self.engine.wal_records() as u64, Ordering::SeqCst);
    }

    /// Write-ahead a load. A failed append degrades durability, not
    /// service: the load still lands and the client is still answered.
    fn log_load(&mut self, name: &str, kinds: &[DomainKind], csv: &str) {
        let kinds: Vec<String> = kinds.iter().map(|&k| kind_name(k).to_string()).collect();
        if let Err(e) = self.engine.log_load(name, &kinds, csv) {
            eprintln!("wal: failed to log load {name:?}: {e}");
        }
        self.refresh();
    }

    /// Write-ahead a query, but only when it has `store(...)` side effects —
    /// read-only queries change no durable state and replay would only
    /// slow recovery down.
    fn log_query(&mut self, expr: &Expr, text: &str) {
        if store_names(expr).is_empty() {
            return;
        }
        if let Err(e) = self.engine.log_query(text) {
            eprintln!("wal: failed to log query {text:?}: {e}");
        }
        self.refresh();
    }

    /// Snapshot the history and reset the log; returns (records, snapshot
    /// bytes).
    fn checkpoint(&mut self) -> Result<(u64, u64), String> {
        let report = self.engine.checkpoint().map_err(|e| e.to_string())?;
        self.stats.checkpoints.fetch_add(1, Ordering::SeqCst);
        self.refresh();
        Ok((report.records as u64, report.bytes))
    }
}

/// Claim a job's timeout fence. Exactly one side wins the swap: if the
/// scheduler wins, the job runs (and its side effects land) and the reply
/// is delivered, so a worker that times out after losing the swap must keep
/// waiting for the real answer. If the worker wins (it timed out first),
/// the scheduler sees `true` here and must skip the job entirely — no run,
/// no `store(...)` write-back, no catalog change the client was never told
/// about.
fn claim(fence: &AtomicBool) -> bool {
    !fence.swap(true, Ordering::SeqCst)
}

/// A finished query, as the scheduler reports it to a worker.
pub(crate) struct QueryReply {
    /// The result relation (still encoded; the worker renders it).
    pub result: MultiRelation,
    /// Standalone simulated-hardware statistics.
    pub stats: RunStats,
    /// Host wall-clock nanoseconds for the run that produced this answer
    /// (the whole batch, when batched — it ran as one schedule).
    pub host_wall_ns: u64,
    /// Per-plan-step output cardinalities (see
    /// [`systolic_machine::RunOutcome::step_rows`]) — what a shard reports
    /// via `CARDS` so a router can re-price the merged run.
    pub step_rows: Vec<u64>,
    /// The query's standalone simulated schedule (solo-accounted even when
    /// it ran in a merged batch) — what the profiler mines for per-step
    /// actual pulses and device occupancy.
    pub timeline: Timeline,
    /// Host ns the job waited between submission and admission.
    pub queue_wait_ns: u64,
    /// Host ns spent write-ahead-logging this query (0 when read-only).
    pub wal_fsync_ns: u64,
    /// Buffer-pool hits observed process-wide across this run (batch-scoped
    /// when the query ran in a merged batch — best-effort attribution).
    pub pool_hits: u64,
    /// Buffer-pool misses over the same interval as `pool_hits`.
    pub pool_misses: u64,
}

/// A unit of work submitted to the scheduler.
pub(crate) enum Job {
    /// Run a prepared query.
    Query {
        /// The prepared (parsed + rewritten) expression.
        expr: Expr,
        /// The original query text, as logged to the WAL when the query has
        /// durable side effects.
        text: String,
        /// The submitting request's trace context, so scheduler spans for
        /// this query land in the request's trace.
        trace: Option<TraceCtx>,
        /// Timeout fence, shared with the submitting worker (see [`claim`]).
        fence: Arc<AtomicBool>,
        /// Where to deliver the answer; capacity-1 channel so the send
        /// never blocks even if the worker gave up waiting.
        reply: SyncSender<Result<QueryReply, MachineError>>,
        /// When the worker submitted the job (host clock; feeds the
        /// profile's queue-wait, never pulse accounting).
        submitted: Instant,
    },
    /// Price a prepared query from per-step cardinalities gathered off the
    /// machine (the shard router's merge path) — real disk reads for the
    /// `Load` steps, analytic stats for the `Op` steps, no operator runs.
    Price {
        /// The prepared expression (identical to what the shards ran).
        expr: Expr,
        /// Summed per-step output cardinalities across the shards.
        cards: Vec<u64>,
        /// The submitting request's trace context.
        trace: Option<TraceCtx>,
        /// Timeout fence, shared with the submitting worker (see [`claim`]).
        fence: Arc<AtomicBool>,
        /// Where to deliver the priced outcome.
        reply: SyncSender<Result<QueryReply, MachineError>>,
        /// When the worker submitted the job (host clock).
        submitted: Instant,
    },
    /// Load an encoded relation onto the machine's disk.
    Load {
        /// Base-relation name.
        name: String,
        /// The encoded relation.
        rel: MultiRelation,
        /// Column kinds, for the write-ahead log record.
        kinds: Vec<DomainKind>,
        /// The original CSV text, for the write-ahead log record (replay
        /// re-imports it so §2.3 dictionary codes come out identical).
        csv: String,
        /// Timeout fence, shared with the submitting worker (see [`claim`]).
        fence: Arc<AtomicBool>,
        /// Acknowledgement carrying the row count.
        reply: SyncSender<usize>,
    },
    /// Snapshot the durable history and reset the WAL.
    Checkpoint {
        /// Delivers (records, snapshot bytes) or the rendered error.
        reply: SyncSender<Result<(u64, u64), String>>,
    },
}

/// Run the scheduler until every job sender has hung up.
pub(crate) fn run(
    mut system: System,
    jobs: Receiver<Job>,
    window: Duration,
    max_batch: usize,
    counters: Arc<Counters>,
    metrics: Arc<ServerMetrics>,
    mut durable: Option<Durable>,
) {
    while let Ok(first) = jobs.recv() {
        let mut window_span = root_span("server.batch_window");
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        while batch.len() < max_batch.max(1) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match jobs.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        window_span.arg("jobs", batch.len());
        drop(window_span);

        // Loads first, in arrival order: a query admitted in the same
        // window as the load it depends on sees the table. A load whose
        // worker already fenced it off (client told `ERR timeout`) is
        // skipped whole — its relation must never reach the machine.
        let mut queries = Vec::new();
        for job in batch {
            match job {
                Job::Load {
                    name,
                    rel,
                    kinds,
                    csv,
                    fence,
                    reply,
                } => {
                    if !claim(&fence) {
                        continue;
                    }
                    // Write-ahead: the log record lands (and is fsynced)
                    // before the relation reaches the machine.
                    if let Some(d) = durable.as_mut() {
                        d.log_load(&name, &kinds, &csv);
                    }
                    let rows = rel.len();
                    system.load_base(name, rel);
                    counters.update(|c| c.loads += 1);
                    metrics.loads.inc();
                    let _ = reply.send(rows);
                }
                Job::Checkpoint { reply } => {
                    let answer = match durable.as_mut() {
                        Some(d) => d.checkpoint(),
                        None => Err("server is running without --data-dir".to_string()),
                    };
                    let _ = reply.send(answer);
                }
                Job::Price {
                    expr,
                    cards,
                    trace,
                    fence,
                    reply,
                    submitted,
                } => {
                    if !claim(&fence) {
                        continue;
                    }
                    counters.update(|c| c.queries += 1);
                    metrics.queries.add(1);
                    let queue_wait_ns = submitted.elapsed().as_nanos() as u64;
                    let _span = span_in(trace, "server.price");
                    let plan = Plan::compile(&expr);
                    let _ = reply.send(system.price_plan(&plan, &cards).map(|o| QueryReply {
                        result: o.result,
                        stats: o.stats,
                        host_wall_ns: o.host_wall_ns,
                        step_rows: o.step_rows,
                        timeline: o.timeline,
                        queue_wait_ns,
                        wal_fsync_ns: 0,
                        pool_hits: 0,
                        pool_misses: 0,
                    }));
                }
                Job::Query {
                    expr,
                    text,
                    trace,
                    fence,
                    reply,
                    submitted,
                } => queries.push(PendingQuery {
                    expr,
                    text,
                    trace,
                    fence,
                    reply,
                    submitted,
                    queue_wait_ns: 0,
                    wal_fsync_ns: 0,
                }),
            }
        }
        // Cross-query hazard analysis: a query that reads or writes a
        // relation an earlier admitted query writes must not share the
        // merged schedule — it is deferred and run solo, after the batch,
        // in arrival order, so it observes the earlier write-back whole.
        let mut deferred = Vec::new();
        if queries.len() > 1 {
            let exprs: Vec<Expr> = queries.iter().map(|q| q.expr.clone()).collect();
            let conflicted = systolic_analyzer::deferred_indices(&exprs);
            if !conflicted.is_empty() {
                let mut admitted = Vec::new();
                for (i, q) in queries.into_iter().enumerate() {
                    if conflicted.contains(&i) {
                        deferred.push(q);
                    } else {
                        admitted.push(q);
                    }
                }
                queries = admitted;
            }
        }
        // Claim the admitted queries' fences *before* running: a query
        // whose worker timed out first never runs (no store(...) side
        // effects can land behind the client's back).
        queries.retain(|q| claim(&q.fence));
        // Admission: the queue wait ends here, whatever happens next.
        for q in &mut queries {
            q.queue_wait_ns = q.submitted.elapsed().as_nanos() as u64;
        }
        // Write-ahead the admitted queries' side effects in admission
        // order — the order the merged run's write-backs are equivalent to
        // (hazard analysis deferred anything that could tell the
        // difference).
        if let Some(d) = durable.as_mut() {
            for q in &mut queries {
                let logged = Instant::now();
                d.log_query(&q.expr, &q.text);
                q.wal_fsync_ns = logged.elapsed().as_nanos() as u64;
            }
        }
        let n = queries.len();
        counters.update(|c| c.queries += n as u64);
        metrics.queries.add(n as u64);
        if n > 0 {
            metrics.batch_size.observe(n as u64);
        }
        match queries.len() {
            0 => {}
            1 => {
                let q = queries.pop().expect("len checked");
                let _span = span_in(q.trace, "server.run_solo");
                let _ = q
                    .reply
                    .send(run_solo(&mut system, &q.expr, &metrics).map(|r| q.host_waits(r)));
            }
            n => {
                counters.update(|c| {
                    c.batches += 1;
                    c.max_batch = c.max_batch.max(n as u64);
                });
                metrics.batches.inc();
                run_merged(&mut system, queries, &counters, &metrics);
            }
        }
        for mut q in deferred {
            if !claim(&q.fence) {
                continue;
            }
            q.queue_wait_ns = q.submitted.elapsed().as_nanos() as u64;
            if let Some(d) = durable.as_mut() {
                let logged = Instant::now();
                d.log_query(&q.expr, &q.text);
                q.wal_fsync_ns = logged.elapsed().as_nanos() as u64;
            }
            counters.update(|c| c.queries += 1);
            metrics.queries.add(1);
            let _span = span_in(q.trace, "server.run_solo");
            let _ = q
                .reply
                .send(run_solo(&mut system, &q.expr, &metrics).map(|r| q.host_waits(r)));
        }
    }
}

impl PendingQuery {
    /// Stamp the host-side waits measured for this job onto its reply.
    fn host_waits(&self, mut reply: QueryReply) -> QueryReply {
        reply.queue_wait_ns = self.queue_wait_ns;
        reply.wal_fsync_ns = self.wal_fsync_ns;
        reply
    }
}

fn run_solo(
    system: &mut System,
    expr: &Expr,
    metrics: &ServerMetrics,
) -> Result<QueryReply, MachineError> {
    let storage = systolic_storage::StorageMetrics::shared();
    let (hits0, misses0) = (storage.pool_hits.get(), storage.pool_misses.get());
    let out = system.run(expr)?;
    record_op_pulses(metrics, &out.timeline);
    Ok(QueryReply {
        result: out.result,
        stats: out.stats,
        host_wall_ns: out.host_wall_ns,
        step_rows: out.step_rows,
        timeline: out.timeline,
        queue_wait_ns: 0,
        wal_fsync_ns: 0,
        pool_hits: storage.pool_hits.get().saturating_sub(hits0),
        pool_misses: storage.pool_misses.get().saturating_sub(misses0),
    })
}

/// Feed `sdb_op_pulses_total{op=...}` from timeline device events. Array
/// work is exactly the events that carry pulses; the op name is the label
/// up to the ` -> output` suffix, normalised past any `[...]` detail.
fn record_op_pulses(metrics: &ServerMetrics, timeline: &Timeline) {
    for event in timeline.events() {
        if event.pulses == 0 {
            continue;
        }
        let head = event.label.split(" -> ").next().unwrap_or(&event.label);
        let op = head.split('[').next().unwrap_or(head);
        metrics.op_pulses(op).add(event.pulses);
    }
}

/// Admit several queries as one merged schedule; on any failure fall back
/// to per-query solo runs so only the faulty requests see errors.
///
/// Batch-window common-subexpression elimination: queries in the window
/// whose prepared trees are identical and free of `store(...)` side effects
/// share one slot in the merged schedule, and the duplicates' replies are
/// clones of the shared outcome. Sound because `run_batch_accounted` prices
/// every query solo — the clone is bit-identical to what a separate slot
/// would have produced — and the plan compiler upstream normalises
/// equivalent texts toward the same tree, widening what "identical" catches.
fn run_merged(
    system: &mut System,
    mut queries: Vec<PendingQuery>,
    counters: &Counters,
    metrics: &ServerMetrics,
) {
    let mut unique: Vec<Expr> = Vec::new();
    let mut slots: Vec<usize> = Vec::with_capacity(queries.len());
    for q in &queries {
        // Identical exprs have identical store sets, so a sharable query
        // can only ever match a sharable slot.
        let hit = if store_names(&q.expr).is_empty() {
            unique.iter().position(|u| *u == q.expr)
        } else {
            None
        };
        match hit {
            Some(i) => slots.push(i),
            None => {
                slots.push(unique.len());
                unique.push(q.expr.clone());
            }
        }
    }
    let cse_hits = (queries.len() - unique.len()) as u64;
    // The batch gets its own trace: it belongs to no single request. The
    // span stays ambient while the machine runs so machine.batch nests here.
    let mut batch_span = root_span("server.batch");
    batch_span.arg("size", queries.len());
    batch_span.arg("unique", unique.len());
    let batch_ctx = batch_span.ctx();
    let storage = systolic_storage::StorageMetrics::shared();
    let (hits0, misses0) = (storage.pool_hits.get(), storage.pool_misses.get());
    let outcome = system.run_batch_accounted(&unique);
    let pool_hits = storage.pool_hits.get().saturating_sub(hits0);
    let pool_misses = storage.pool_misses.get().saturating_sub(misses0);
    drop(batch_span);
    match outcome {
        Ok(batch) => {
            if cse_hits > 0 {
                counters.update(|c| c.cse_hits += cse_hits);
                metrics.cse_hits.add(cse_hits);
            }
            record_op_pulses(metrics, &batch.combined.timeline);
            let host_wall_ns = batch.combined.host_wall_ns;
            for (slot, q) in slots.into_iter().zip(queries) {
                let outcome = batch.queries[slot].clone();
                let mut run_span = span_in(q.trace, "server.batch_run");
                if let Some(ctx) = batch_ctx {
                    run_span.arg("batch_span", ctx.span_id);
                }
                drop(run_span);
                let _ = q.reply.send(Ok(QueryReply {
                    result: outcome.result,
                    stats: outcome.stats,
                    host_wall_ns,
                    step_rows: outcome.step_rows,
                    timeline: outcome.timeline,
                    queue_wait_ns: q.queue_wait_ns,
                    wal_fsync_ns: q.wal_fsync_ns,
                    pool_hits,
                    pool_misses,
                }));
            }
        }
        Err(_) => {
            // Fences were already claimed at admission; the fallback must
            // not re-claim (it would see `true` and wrongly skip).
            for q in queries.drain(..) {
                let _span = span_in(q.trace, "server.run_solo");
                let _ = q
                    .reply
                    .send(run_solo(system, &q.expr, metrics).map(|r| q.host_waits(r)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use systolic_machine::{parse, MachineConfig};
    use systolic_relation::gen::synth_schema;
    use systolic_relation::Elem;

    fn rel(rows: &[&[Elem]]) -> MultiRelation {
        MultiRelation::new(
            synth_schema(rows[0].len()),
            rows.iter().map(|r| r.to_vec()).collect(),
        )
        .unwrap()
    }

    /// Feed the jobs through a fresh scheduler until it drains, returning
    /// the counters it maintained.
    fn run_jobs(jobs: Vec<Job>) -> Arc<Counters> {
        let system = System::new(MachineConfig::default()).unwrap();
        let (tx, rx) = mpsc::channel();
        for job in jobs {
            tx.send(job).unwrap();
        }
        drop(tx);
        let counters = Arc::new(Counters::default());
        let metrics = Arc::new(ServerMetrics::new());
        run(
            system,
            rx,
            Duration::from_millis(1),
            16,
            Arc::clone(&counters),
            metrics,
            None,
        );
        counters
    }

    fn load_job(
        name: &str,
        rel: MultiRelation,
        f: Arc<AtomicBool>,
        reply: SyncSender<usize>,
    ) -> Job {
        Job::Load {
            name: name.into(),
            rel,
            kinds: Vec::new(),
            csv: String::new(),
            fence: f,
            reply,
        }
    }

    fn query_job(
        text: &str,
        f: Arc<AtomicBool>,
        reply: SyncSender<Result<QueryReply, MachineError>>,
    ) -> Job {
        Job::Query {
            expr: parse(text).unwrap(),
            text: text.into(),
            trace: None,
            fence: f,
            reply,
            submitted: Instant::now(),
        }
    }

    fn fence(claimed_by_worker: bool) -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(claimed_by_worker))
    }

    #[test]
    fn a_fenced_load_never_reaches_the_machine() {
        let (dead_tx, dead_rx) = mpsc::sync_channel(1);
        let (live_tx, live_rx) = mpsc::sync_channel(1);
        let counters = run_jobs(vec![
            load_job("dead", rel(&[&[1], &[2], &[3]]), fence(true), dead_tx),
            load_job("alive", rel(&[&[4], &[5]]), fence(false), live_tx),
        ]);
        assert!(
            dead_rx.try_recv().is_err(),
            "a fenced load must never be acknowledged"
        );
        assert_eq!(live_rx.try_recv().unwrap(), 2);
        assert_eq!(counters.snapshot().loads, 1, "only the live load lands");
    }

    #[test]
    fn a_fenced_query_is_skipped_whole() {
        let (load_tx, _load_rx) = mpsc::sync_channel(1);
        let (dead_tx, dead_rx) = mpsc::sync_channel(1);
        let (live_tx, live_rx) = mpsc::sync_channel(1);
        let counters = run_jobs(vec![
            load_job("t", rel(&[&[1], &[2]]), fence(false), load_tx),
            query_job("scan(t)", fence(true), dead_tx),
            query_job("scan(t)", fence(false), live_tx),
        ]);
        assert!(
            dead_rx.try_recv().is_err(),
            "a fenced query must never be answered"
        );
        let reply = live_rx.try_recv().unwrap().unwrap();
        assert_eq!(reply.result.len(), 2);
        assert_eq!(counters.snapshot().queries, 1, "only the live query runs");
    }

    #[test]
    fn a_fenced_deferred_query_is_skipped_with_its_side_effects() {
        // q2 reads what q1 writes, so the hazard pass defers it; its fence
        // is already claimed, so the deferred pass must drop it — in
        // particular `store(scan(u), v)` must leave no `v` on the machine.
        let (load_tx, _load_rx) = mpsc::sync_channel(1);
        let (q1_tx, q1_rx) = mpsc::sync_channel(1);
        let (q2_tx, q2_rx) = mpsc::sync_channel(1);
        let counters = run_jobs(vec![
            load_job("t", rel(&[&[1], &[2]]), fence(false), load_tx),
            query_job("store(scan(t), u)", fence(false), q1_tx),
            query_job("store(scan(u), v)", fence(true), q2_tx),
        ]);
        assert!(q1_rx.try_recv().unwrap().is_ok());
        assert!(
            q2_rx.try_recv().is_err(),
            "a fenced deferred query must never run"
        );
        assert_eq!(counters.snapshot().queries, 1);
    }
}
