//! The admission scheduler: the single thread that owns the machine.
//!
//! Workers hand it jobs over a channel; it gathers whatever arrives within
//! a short window (or until the batch cap) and admits the set as *one*
//! merged dependency-level schedule via
//! [`System::run_batch_accounted`] — this is where the paper's "set of
//! transactions" concurrency actually happens: queries from different TCP
//! connections share crossbar ports and devices inside one simulated
//! makespan.
//!
//! Each query's reply still carries its *standalone* accounting (stats and
//! timeline priced as if it ran alone), which `run_batch_accounted`
//! guarantees is bit-identical to a fresh solo run — so batching changes
//! throughput, never answers.
//!
//! Telemetry: the gather phase runs under a `server.batch_window` span and
//! each merged admission under a `server.batch` span (the machine's own
//! spans nest beneath it). Per request, a `server.batch_run` span parented
//! to *that request's* trace carries the shared batch span id — so two
//! merged requests keep distinct trace ids while both point at the one
//! batch that served them.

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use systolic_machine::{Expr, MachineError, RunStats, System, Timeline};
use systolic_relation::MultiRelation;
use systolic_telemetry::{root_span, span_in, TraceCtx};

use crate::metrics::ServerMetrics;
use crate::server::Counters;

/// A query waiting in a merged batch: its expression, the submitting
/// request's trace, and the reply channel.
type PendingQuery = (
    Expr,
    Option<TraceCtx>,
    SyncSender<Result<QueryReply, MachineError>>,
);

/// A finished query, as the scheduler reports it to a worker.
pub(crate) struct QueryReply {
    /// The result relation (still encoded; the worker renders it).
    pub result: MultiRelation,
    /// Standalone simulated-hardware statistics.
    pub stats: RunStats,
    /// Host wall-clock nanoseconds for the run that produced this answer
    /// (the whole batch, when batched — it ran as one schedule).
    pub host_wall_ns: u64,
}

/// A unit of work submitted to the scheduler.
pub(crate) enum Job {
    /// Run a prepared query.
    Query {
        /// The prepared (parsed + rewritten) expression.
        expr: Expr,
        /// The submitting request's trace context, so scheduler spans for
        /// this query land in the request's trace.
        trace: Option<TraceCtx>,
        /// Where to deliver the answer; capacity-1 channel so the send
        /// never blocks even if the worker gave up waiting.
        reply: SyncSender<Result<QueryReply, MachineError>>,
    },
    /// Load an encoded relation onto the machine's disk.
    Load {
        /// Base-relation name.
        name: String,
        /// The encoded relation.
        rel: MultiRelation,
        /// Acknowledgement carrying the row count.
        reply: SyncSender<usize>,
    },
}

/// Run the scheduler until every job sender has hung up.
pub(crate) fn run(
    mut system: System,
    jobs: Receiver<Job>,
    window: Duration,
    max_batch: usize,
    counters: Arc<Counters>,
    metrics: Arc<ServerMetrics>,
) {
    while let Ok(first) = jobs.recv() {
        let mut window_span = root_span("server.batch_window");
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        while batch.len() < max_batch.max(1) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match jobs.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        window_span.arg("jobs", batch.len());
        drop(window_span);

        // Loads first, in arrival order: a query admitted in the same
        // window as the load it depends on sees the table.
        let mut queries = Vec::new();
        for job in batch {
            match job {
                Job::Load { name, rel, reply } => {
                    let rows = rel.len();
                    system.load_base(name, rel);
                    counters.update(|c| c.loads += 1);
                    metrics.loads.inc();
                    let _ = reply.send(rows);
                }
                Job::Query { expr, trace, reply } => queries.push((expr, trace, reply)),
            }
        }
        let n = queries.len();
        counters.update(|c| c.queries += n as u64);
        metrics.queries.add(n as u64);
        if n > 0 {
            metrics.batch_size.observe(n as u64);
        }
        // Cross-query hazard analysis: a query that reads or writes a
        // relation an earlier admitted query writes must not share the
        // merged schedule — it is deferred and run solo, after the batch,
        // in arrival order, so it observes the earlier write-back whole.
        let mut deferred = Vec::new();
        if queries.len() > 1 {
            let exprs: Vec<Expr> = queries.iter().map(|(e, _, _)| e.clone()).collect();
            let conflicted = systolic_analyzer::deferred_indices(&exprs);
            if !conflicted.is_empty() {
                let mut admitted = Vec::new();
                for (i, q) in queries.into_iter().enumerate() {
                    if conflicted.contains(&i) {
                        deferred.push(q);
                    } else {
                        admitted.push(q);
                    }
                }
                queries = admitted;
            }
        }
        match queries.len() {
            0 => {}
            1 => {
                let (expr, trace, reply) = queries.pop().expect("len checked");
                let _span = span_in(trace, "server.run_solo");
                let _ = reply.send(run_solo(&mut system, &expr, &metrics));
            }
            n => {
                counters.update(|c| {
                    c.batches += 1;
                    c.max_batch = c.max_batch.max(n as u64);
                });
                metrics.batches.inc();
                run_merged(&mut system, queries, &metrics);
            }
        }
        for (expr, trace, reply) in deferred {
            let _span = span_in(trace, "server.run_solo");
            let _ = reply.send(run_solo(&mut system, &expr, &metrics));
        }
    }
}

fn run_solo(
    system: &mut System,
    expr: &Expr,
    metrics: &ServerMetrics,
) -> Result<QueryReply, MachineError> {
    let out = system.run(expr)?;
    record_op_pulses(metrics, &out.timeline);
    Ok(QueryReply {
        result: out.result,
        stats: out.stats,
        host_wall_ns: out.host_wall_ns,
    })
}

/// Feed `sdb_op_pulses_total{op=...}` from timeline device events. Array
/// work is exactly the events that carry pulses; the op name is the label
/// up to the ` -> output` suffix, normalised past any `[...]` detail.
fn record_op_pulses(metrics: &ServerMetrics, timeline: &Timeline) {
    for event in timeline.events() {
        if event.pulses == 0 {
            continue;
        }
        let head = event.label.split(" -> ").next().unwrap_or(&event.label);
        let op = head.split('[').next().unwrap_or(head);
        metrics.op_pulses(op).add(event.pulses);
    }
}

/// Admit several queries as one merged schedule; on any failure fall back
/// to per-query solo runs so only the faulty requests see errors.
fn run_merged(system: &mut System, mut queries: Vec<PendingQuery>, metrics: &ServerMetrics) {
    let exprs: Vec<Expr> = queries.iter().map(|(e, _, _)| e.clone()).collect();
    // The batch gets its own trace: it belongs to no single request. The
    // span stays ambient while the machine runs so machine.batch nests here.
    let mut batch_span = root_span("server.batch");
    batch_span.arg("size", queries.len());
    let batch_ctx = batch_span.ctx();
    let outcome = system.run_batch_accounted(&exprs);
    drop(batch_span);
    match outcome {
        Ok(batch) => {
            record_op_pulses(metrics, &batch.combined.timeline);
            let host_wall_ns = batch.combined.host_wall_ns;
            for (outcome, (_, trace, reply)) in batch.queries.into_iter().zip(queries) {
                let mut run_span = span_in(trace, "server.batch_run");
                if let Some(ctx) = batch_ctx {
                    run_span.arg("batch_span", ctx.span_id);
                }
                drop(run_span);
                let _ = reply.send(Ok(QueryReply {
                    result: outcome.result,
                    stats: outcome.stats,
                    host_wall_ns,
                }));
            }
        }
        Err(_) => {
            for (expr, trace, reply) in queries.drain(..) {
                let _span = span_in(trace, "server.run_solo");
                let _ = reply.send(run_solo(system, &expr, metrics));
            }
        }
    }
}
