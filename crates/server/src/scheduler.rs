//! The admission scheduler: the single thread that owns the machine.
//!
//! Workers hand it jobs over a channel; it gathers whatever arrives within
//! a short window (or until the batch cap) and admits the set as *one*
//! merged dependency-level schedule via
//! [`System::run_batch_accounted`] — this is where the paper's "set of
//! transactions" concurrency actually happens: queries from different TCP
//! connections share crossbar ports and devices inside one simulated
//! makespan.
//!
//! Each query's reply still carries its *standalone* accounting (stats and
//! timeline priced as if it ran alone), which `run_batch_accounted`
//! guarantees is bit-identical to a fresh solo run — so batching changes
//! throughput, never answers.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use systolic_machine::{Expr, MachineError, RunStats, System};
use systolic_relation::MultiRelation;

use crate::server::Counters;

/// A finished query, as the scheduler reports it to a worker.
pub(crate) struct QueryReply {
    /// The result relation (still encoded; the worker renders it).
    pub result: MultiRelation,
    /// Standalone simulated-hardware statistics.
    pub stats: RunStats,
    /// Host wall-clock nanoseconds for the run that produced this answer
    /// (the whole batch, when batched — it ran as one schedule).
    pub host_wall_ns: u64,
}

/// A unit of work submitted to the scheduler.
pub(crate) enum Job {
    /// Run a prepared query.
    Query {
        /// The prepared (parsed + rewritten) expression.
        expr: Expr,
        /// Where to deliver the answer; capacity-1 channel so the send
        /// never blocks even if the worker gave up waiting.
        reply: SyncSender<Result<QueryReply, MachineError>>,
    },
    /// Load an encoded relation onto the machine's disk.
    Load {
        /// Base-relation name.
        name: String,
        /// The encoded relation.
        rel: MultiRelation,
        /// Acknowledgement carrying the row count.
        reply: SyncSender<usize>,
    },
}

/// Run the scheduler until every job sender has hung up.
pub(crate) fn run(
    mut system: System,
    jobs: Receiver<Job>,
    window: Duration,
    max_batch: usize,
    counters: Arc<Counters>,
) {
    while let Ok(first) = jobs.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        while batch.len() < max_batch.max(1) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match jobs.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Loads first, in arrival order: a query admitted in the same
        // window as the load it depends on sees the table.
        let mut queries = Vec::new();
        for job in batch {
            match job {
                Job::Load { name, rel, reply } => {
                    let rows = rel.len();
                    system.load_base(name, rel);
                    counters.loads.fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send(rows);
                }
                Job::Query { expr, reply } => queries.push((expr, reply)),
            }
        }
        counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        match queries.len() {
            0 => {}
            1 => {
                let (expr, reply) = queries.pop().expect("len checked");
                let _ = reply.send(run_solo(&mut system, &expr));
            }
            n => {
                counters.batches.fetch_add(1, Ordering::Relaxed);
                counters.max_batch.fetch_max(n as u64, Ordering::Relaxed);
                run_merged(&mut system, queries);
            }
        }
    }
}

fn run_solo(system: &mut System, expr: &Expr) -> Result<QueryReply, MachineError> {
    let out = system.run(expr)?;
    Ok(QueryReply {
        result: out.result,
        stats: out.stats,
        host_wall_ns: out.host_wall_ns,
    })
}

/// Admit several queries as one merged schedule; on any failure fall back
/// to per-query solo runs so only the faulty requests see errors.
fn run_merged(
    system: &mut System,
    mut queries: Vec<(Expr, SyncSender<Result<QueryReply, MachineError>>)>,
) {
    let exprs: Vec<Expr> = queries.iter().map(|(e, _)| e.clone()).collect();
    match system.run_batch_accounted(&exprs) {
        Ok(batch) => {
            let host_wall_ns = batch.combined.host_wall_ns;
            for (outcome, (_, reply)) in batch.queries.into_iter().zip(queries) {
                let _ = reply.send(Ok(QueryReply {
                    result: outcome.result,
                    stats: outcome.stats,
                    host_wall_ns,
                }));
            }
        }
        Err(_) => {
            for (expr, reply) in queries.drain(..) {
                let _ = reply.send(run_solo(system, &expr));
            }
        }
    }
}
