//! The textual request/response protocol.
//!
//! Requests (one frame each):
//!
//! ```text
//! LOAD <name> <type,type,...> <escaped-csv>
//! QUERY <query text>
//! PROFILE <query text>
//! PROFILES
//! STATS
//! METRICS
//! CHECKPOINT
//! CLOSE
//! SHUTDOWN
//! ```
//!
//! Responses:
//!
//! ```text
//! LOADED <name> rows=<n>
//! RESULT rows=<n> makespan_ns=<n> pulses=<n> array_runs=<n> disk_bytes=<n> \
//!        concurrency=<n> csv=<escaped-csv>
//! PROFILE <escaped single-line JSON profile>
//! HOST ns=<n>
//! SPANS <escaped JSON-lines span batch>
//! PROFILES count=<n> json=<escaped JSON-lines, newest first>
//! STATS tables=<n> queries=<n> loads=<n> batches=<n> max_batch=<n> \
//!       refused=<n> timeouts=<n> active=<n> uptime_ms=<n> queue_hwm=<n> \
//!       slow=<n> lat_p50_ns=<n> lat_p95_ns=<n> lat_p99_ns=<n> lat_count=<n> \
//!       backend=<sim|kernel>
//! METRICS <escaped Prometheus text exposition>
//! CHECKPOINTED records=<n> bytes=<n>
//! BYE
//! ERR <kind> [at=<byte>] <escaped detail>
//! ```
//!
//! A `QUERY` answer is exactly two frames: `RESULT` carries everything
//! deterministic (rows, simulated-hardware stats, CSV) and `HOST` carries
//! the nondeterministic host wall-clock time — split so byte-comparing
//! `RESULT` frames across runs is a meaningful determinism check. A
//! `PROFILE` answer keeps that `RESULT` frame byte-identical and inserts
//! exactly one `PROFILE` frame between it and `HOST`.
//!
//! `QUERYC` (the shard-router verb) accepts an optional distributed-tracing
//! stamp, `QUERYC trace=<id> parent=<id> <query>`; a stamped request's
//! answer grows a trailing `SPANS` frame carrying the shard's span batch so
//! the router can merge every shard's spans into one trace.
//!
//! `ERR` kinds: `proto`, `parse` (with `at=<byte>`), `analysis` (with the
//! stable `SA00N` code and `at=<start>..<end>`), `relation`, `machine`,
//! `timeout`, `overloaded`, `shutting_down`, `too_large`, `conflict`.

use systolic_analyzer::Diagnostic;
use systolic_machine::{ParseError, RunStats};
use systolic_relation::DomainKind;
use systolic_telemetry::TraceCtx;

use crate::engine::parse_kinds;
use crate::frame::{escape, unescape};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Register a CSV table.
    Load {
        /// Table name.
        name: String,
        /// Column kinds.
        kinds: Vec<DomainKind>,
        /// Unescaped CSV text.
        csv: String,
    },
    /// Run a query.
    Query(String),
    /// Run a query and also return its end-to-end profile (`PROFILE`): the
    /// answer is the byte-identical `RESULT` frame, one `PROFILE` frame
    /// carrying the escaped JSON profile, then `HOST`.
    Profile(String),
    /// Dump the flight recorder (`PROFILES`): the retained recent query
    /// profiles, newest first, in one `PROFILES` frame.
    Profiles,
    /// Run a query and also report per-plan-step output cardinalities
    /// (`QUERYC`): the answer is `RESULT` + `CARDS` + `HOST`. This is what a
    /// shard router sends its shards — the public `QUERY` answer stays
    /// exactly two frames.
    QueryCards {
        /// The query text.
        query: String,
        /// Distributed-tracing stamp: the router's trace id and the span to
        /// parent this shard's spans under. When present, the answer grows
        /// a trailing `SPANS` frame.
        trace: Option<TraceCtx>,
    },
    /// Ask for server statistics.
    Stats,
    /// Ask for the full Prometheus-style metrics exposition.
    Metrics,
    /// Snapshot the durable history and reset the write-ahead log.
    Checkpoint,
    /// End this session.
    Close,
    /// Ask the whole server to drain and exit.
    Shutdown,
}

/// Parse one request frame. The error string is a human-readable protocol
/// complaint (sent back as `ERR proto`).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "LOAD" => {
            let (name, rest) = rest
                .split_once(' ')
                .ok_or_else(|| "LOAD needs <name> <types> <csv>".to_string())?;
            // CSV may be empty (header-only tables) so a missing third
            // field means an empty payload, not a protocol error.
            let (types, payload) = match rest.split_once(' ') {
                Some((t, p)) => (t, p),
                None => (rest, ""),
            };
            if name.is_empty() || types.is_empty() {
                return Err("LOAD needs <name> <types> <csv>".to_string());
            }
            let kinds = parse_kinds(types)?;
            let csv = unescape(payload)?;
            Ok(Request::Load {
                name: name.to_string(),
                kinds,
                csv,
            })
        }
        "QUERY" => {
            if rest.is_empty() {
                return Err("QUERY needs query text".to_string());
            }
            Ok(Request::Query(rest.to_string()))
        }
        "PROFILE" => {
            if rest.is_empty() {
                return Err("PROFILE needs query text".to_string());
            }
            Ok(Request::Profile(rest.to_string()))
        }
        "PROFILES" if rest.is_empty() => Ok(Request::Profiles),
        "QUERYC" => {
            let (trace, query) = parse_trace_stamp(rest);
            if query.is_empty() {
                return Err("QUERYC needs query text".to_string());
            }
            Ok(Request::QueryCards {
                query: query.to_string(),
                trace,
            })
        }
        "STATS" if rest.is_empty() => Ok(Request::Stats),
        "METRICS" if rest.is_empty() => Ok(Request::Metrics),
        "CHECKPOINT" if rest.is_empty() => Ok(Request::Checkpoint),
        "CLOSE" if rest.is_empty() => Ok(Request::Close),
        "SHUTDOWN" if rest.is_empty() => Ok(Request::Shutdown),
        _ => Err(format!(
            "unknown request {line:?} (LOAD, QUERY, PROFILE, PROFILES, STATS, METRICS, \
             CHECKPOINT, CLOSE, SHUTDOWN)"
        )),
    }
}

/// Split an optional `trace=<id> parent=<id> ` stamp off the front of a
/// `QUERYC` body. Both fields must be present and numeric to count as a
/// stamp; anything else is treated as plain query text.
fn parse_trace_stamp(rest: &str) -> (Option<TraceCtx>, &str) {
    let Some(after_trace) = rest.strip_prefix("trace=") else {
        return (None, rest);
    };
    let Some((trace_id, tail)) = after_trace.split_once(' ') else {
        return (None, rest);
    };
    let Ok(trace_id) = trace_id.parse::<u64>() else {
        return (None, rest);
    };
    let Some(after_parent) = tail.strip_prefix("parent=") else {
        return (None, rest);
    };
    let Some((span_id, query)) = after_parent.split_once(' ') else {
        return (None, rest);
    };
    let Ok(span_id) = span_id.parse::<u64>() else {
        return (None, rest);
    };
    (Some(TraceCtx { trace_id, span_id }), query)
}

/// Render a `QUERYC` request line, stamping the optional tracing context
/// (the builder half of `parse_trace_stamp`).
pub fn queryc_request(query: &str, trace: Option<TraceCtx>) -> String {
    match trace {
        Some(ctx) => format!(
            "QUERYC trace={} parent={} {query}",
            ctx.trace_id, ctx.span_id
        ),
        None => format!("QUERYC {query}"),
    }
}

/// Render the deterministic half of a query answer.
pub fn result_frame(rows: usize, stats: &RunStats, csv: &str) -> String {
    format!(
        "RESULT rows={rows} makespan_ns={} pulses={} array_runs={} disk_bytes={} \
         concurrency={} csv={}",
        stats.makespan_ns,
        stats.total_pulses,
        stats.array_runs,
        stats.bytes_from_disk,
        stats.max_device_concurrency,
        escape(csv),
    )
}

/// Render the nondeterministic half of a query answer.
pub fn host_frame(host_wall_ns: u64) -> String {
    format!("HOST ns={host_wall_ns}")
}

/// Render a `CARDS` frame: per-plan-step output cardinalities, in step
/// order (the `QUERYC` extra frame).
pub fn cards_frame(step_rows: &[u64]) -> String {
    let rows: Vec<String> = step_rows.iter().map(|r| r.to_string()).collect();
    format!("CARDS steps={} rows={}", step_rows.len(), rows.join(","))
}

/// Parse a `CARDS` frame back into per-step cardinalities.
pub fn parse_cards_frame(frame: &str) -> Result<Vec<u64>, String> {
    let body = frame
        .strip_prefix("CARDS steps=")
        .ok_or_else(|| format!("expected CARDS frame, got {frame:?}"))?;
    let (steps, rows) = body
        .split_once(" rows=")
        .ok_or_else(|| "CARDS frame is missing rows=".to_string())?;
    let steps: usize = steps
        .parse()
        .map_err(|_| format!("bad CARDS steps {steps:?}"))?;
    let cards: Vec<u64> = if rows.is_empty() {
        Vec::new()
    } else {
        rows.split(',')
            .map(|v| v.parse().map_err(|_| format!("bad CARDS row count {v:?}")))
            .collect::<Result<_, String>>()?
    };
    if cards.len() != steps {
        return Err(format!(
            "CARDS frame claims {steps} steps but lists {}",
            cards.len()
        ));
    }
    Ok(cards)
}

/// Render a successful `LOAD` answer.
pub fn loaded_frame(name: &str, rows: usize) -> String {
    format!("LOADED {name} rows={rows}")
}

/// Render a successful `CHECKPOINT` answer: logical records snapshotted and
/// the snapshot size in bytes.
pub fn checkpointed_frame(records: u64, bytes: u64) -> String {
    format!("CHECKPOINTED records={records} bytes={bytes}")
}

/// Parse a `CHECKPOINTED` frame back into (records, bytes).
pub fn parse_checkpointed_frame(frame: &str) -> Result<(u64, u64), String> {
    let body = frame
        .strip_prefix("CHECKPOINTED records=")
        .ok_or_else(|| format!("expected CHECKPOINTED frame, got {frame:?}"))?;
    let (records, bytes) = body
        .split_once(" bytes=")
        .ok_or_else(|| "CHECKPOINTED frame is missing bytes=".to_string())?;
    let records = records
        .parse()
        .map_err(|_| format!("bad CHECKPOINTED records {records:?}"))?;
    let bytes = bytes
        .parse()
        .map_err(|_| format!("bad CHECKPOINTED bytes {bytes:?}"))?;
    Ok((records, bytes))
}

/// Render a `METRICS` answer carrying the escaped text exposition.
pub fn metrics_frame(exposition: &str) -> String {
    format!("METRICS {}", escape(exposition))
}

/// Parse a `METRICS` frame back into the exposition text.
pub fn parse_metrics_frame(frame: &str) -> Result<String, String> {
    let body = frame
        .strip_prefix("METRICS ")
        .ok_or_else(|| format!("expected METRICS frame, got {frame:?}"))?;
    unescape(body)
}

/// Render a `PROFILE` answer frame carrying the escaped single-line JSON
/// query profile.
pub fn profile_frame(json: &str) -> String {
    format!("PROFILE {}", escape(json))
}

/// Parse a `PROFILE` frame back into the JSON profile text.
pub fn parse_profile_frame(frame: &str) -> Result<String, String> {
    let body = frame
        .strip_prefix("PROFILE ")
        .ok_or_else(|| format!("expected PROFILE frame, got {frame:?}"))?;
    unescape(body)
}

/// Render a `SPANS` trailer frame carrying an escaped JSON-lines span batch
/// (see `systolic_telemetry::batch`).
pub fn spans_frame(batch: &str) -> String {
    format!("SPANS {}", escape(batch))
}

/// Parse a `SPANS` frame back into the JSON-lines span batch text.
pub fn parse_spans_frame(frame: &str) -> Result<String, String> {
    let body = frame
        .strip_prefix("SPANS ")
        .ok_or_else(|| format!("expected SPANS frame, got {frame:?}"))?;
    unescape(body)
}

/// Render a `PROFILES` answer: the flight recorder's retained profiles,
/// newest first, as escaped JSON lines.
pub fn profiles_frame(profiles: &[String]) -> String {
    format!(
        "PROFILES count={} json={}",
        profiles.len(),
        escape(&profiles.join("\n"))
    )
}

/// Parse a `PROFILES` frame back into individual JSON profile lines.
pub fn parse_profiles_frame(frame: &str) -> Result<Vec<String>, String> {
    let body = frame
        .strip_prefix("PROFILES count=")
        .ok_or_else(|| format!("expected PROFILES frame, got {frame:?}"))?;
    let (count, json) = body
        .split_once(" json=")
        .ok_or_else(|| "PROFILES frame is missing json=".to_string())?;
    let count: usize = count
        .parse()
        .map_err(|_| format!("bad PROFILES count {count:?}"))?;
    let text = unescape(json)?;
    let profiles: Vec<String> = if text.is_empty() {
        Vec::new()
    } else {
        text.lines().map(str::to_string).collect()
    };
    if profiles.len() != count {
        return Err(format!(
            "PROFILES frame claims {count} profiles but lists {}",
            profiles.len()
        ));
    }
    Ok(profiles)
}

/// Render an error frame.
pub fn err_frame(kind: &str, detail: &str) -> String {
    format!("ERR {kind} {}", escape(detail))
}

/// Render a parse-error frame, carrying the byte offset as structured data
/// and the caret rendering as the detail.
pub fn parse_err_frame(err: &ParseError, query: &str) -> String {
    format!("ERR parse at={} {}", err.at, escape(&err.pretty(query)))
}

/// Render an analyzer-rejection frame: `ERR analysis SA00N [at=<s>..<e>]
/// <escaped detail>`. The structured fields come from the first finding (in
/// source order); the detail carries every finding's caret rendering so
/// clients can show all of them.
///
/// # Panics
///
/// `diags` must be non-empty — an analyzer rejection always carries at
/// least one finding.
pub fn analysis_err_frame(diags: &[Diagnostic], query: &str) -> String {
    let first = diags.first().expect("rejection carries >= 1 diagnostic");
    let rendered: Vec<String> = diags.iter().map(|d| d.pretty(query)).collect();
    match first.span {
        Some((start, end)) => format!(
            "ERR analysis {} at={start}..{end} {}",
            first.code.code(),
            escape(&rendered.join("\n"))
        ),
        None => format!(
            "ERR analysis {} {}",
            first.code.code(),
            escape(&rendered.join("\n"))
        ),
    }
}

/// Client-side view of a `RESULT` + `HOST` frame pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultFields {
    /// Result row count.
    pub rows: usize,
    /// Simulated makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Total array pulses.
    pub total_pulses: u64,
    /// Physical array invocations.
    pub array_runs: u64,
    /// Bytes delivered by the disk.
    pub bytes_from_disk: u64,
    /// Maximum simultaneous devices.
    pub max_device_concurrency: usize,
    /// Result CSV (unescaped).
    pub csv: String,
}

/// Parse a `RESULT` frame back into fields (the client half of
/// [`result_frame`]).
pub fn parse_result_frame(frame: &str) -> Result<ResultFields, String> {
    let body = frame
        .strip_prefix("RESULT ")
        .ok_or_else(|| format!("expected RESULT frame, got {frame:?}"))?;
    // csv= comes last and is the only field whose value the escaping still
    // allows to contain spaces, so split on its marker rather than on words.
    let marker = " csv=";
    let at = body
        .find(marker)
        .ok_or_else(|| "RESULT frame is missing csv=".to_string())?;
    let (head, tail) = body.split_at(at);
    let csv = unescape(&tail[marker.len()..])?;
    let mut fields = ResultFields {
        rows: 0,
        makespan_ns: 0,
        total_pulses: 0,
        array_runs: 0,
        bytes_from_disk: 0,
        max_device_concurrency: 0,
        csv,
    };
    for pair in head.split_whitespace() {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad RESULT field {pair:?}"))?;
        let parse = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("bad RESULT number {pair:?}"))
        };
        match key {
            "rows" => fields.rows = parse(value)? as usize,
            "makespan_ns" => fields.makespan_ns = parse(value)?,
            "pulses" => fields.total_pulses = parse(value)?,
            "array_runs" => fields.array_runs = parse(value)?,
            "disk_bytes" => fields.bytes_from_disk = parse(value)?,
            "concurrency" => fields.max_device_concurrency = parse(value)? as usize,
            other => return Err(format!("unknown RESULT field {other:?}")),
        }
    }
    Ok(fields)
}

/// Parse a `HOST` frame into nanoseconds.
pub fn parse_host_frame(frame: &str) -> Result<u64, String> {
    frame
        .strip_prefix("HOST ns=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("expected HOST frame, got {frame:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(
            parse_request("LOAD emp int,str 1,a\\n2,b\\n").unwrap(),
            Request::Load {
                name: "emp".into(),
                kinds: vec![DomainKind::Int, DomainKind::Str],
                csv: "1,a\n2,b\n".into(),
            }
        );
        assert_eq!(
            parse_request("QUERY scan(emp)").unwrap(),
            Request::Query("scan(emp)".into())
        );
        assert_eq!(
            parse_request("QUERYC scan(emp)").unwrap(),
            Request::QueryCards {
                query: "scan(emp)".into(),
                trace: None,
            }
        );
        assert!(parse_request("QUERYC").is_err());
        assert_eq!(
            parse_request("PROFILE scan(emp)").unwrap(),
            Request::Profile("scan(emp)".into())
        );
        assert!(parse_request("PROFILE").is_err());
        assert_eq!(parse_request("PROFILES").unwrap(), Request::Profiles);
        assert!(parse_request("PROFILES now").is_err());
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert!(parse_request("METRICS now").is_err());
        assert_eq!(parse_request("CHECKPOINT").unwrap(), Request::Checkpoint);
        assert!(parse_request("CHECKPOINT now").is_err());
        assert_eq!(parse_request("CLOSE").unwrap(), Request::Close);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert!(parse_request("NOPE").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("LOAD emp").is_err());
        assert!(parse_request("LOAD emp blob x").is_err());
    }

    #[test]
    fn result_frames_round_trip() {
        let stats = RunStats {
            makespan_ns: 123,
            total_pulses: 45,
            array_runs: 6,
            bytes_from_disk: 789,
            max_device_concurrency: 2,
        };
        let frame = result_frame(3, &stats, "a,b\nc,d\n");
        assert!(!frame.contains('\n'));
        let fields = parse_result_frame(&frame).unwrap();
        assert_eq!(fields.rows, 3);
        assert_eq!(fields.makespan_ns, 123);
        assert_eq!(fields.total_pulses, 45);
        assert_eq!(fields.array_runs, 6);
        assert_eq!(fields.bytes_from_disk, 789);
        assert_eq!(fields.max_device_concurrency, 2);
        assert_eq!(fields.csv, "a,b\nc,d\n");
        assert_eq!(parse_host_frame("HOST ns=42").unwrap(), 42);
    }

    #[test]
    fn cards_frames_round_trip() {
        let frame = cards_frame(&[3, 5, 2]);
        assert_eq!(frame, "CARDS steps=3 rows=3,5,2");
        assert_eq!(parse_cards_frame(&frame).unwrap(), vec![3, 5, 2]);
        assert_eq!(parse_cards_frame("CARDS steps=0 rows=").unwrap(), vec![]);
        assert!(parse_cards_frame("CARDS steps=2 rows=1").is_err());
        assert!(parse_cards_frame("RESULT rows=1").is_err());
    }

    #[test]
    fn checkpointed_frames_round_trip() {
        let frame = checkpointed_frame(12, 4096);
        assert_eq!(frame, "CHECKPOINTED records=12 bytes=4096");
        assert_eq!(parse_checkpointed_frame(&frame).unwrap(), (12, 4096));
        assert!(parse_checkpointed_frame("CHECKPOINTED records=x bytes=1").is_err());
        assert!(parse_checkpointed_frame("LOADED t rows=1").is_err());
    }

    #[test]
    fn queryc_trace_stamps_round_trip() {
        let ctx = TraceCtx {
            trace_id: 12345,
            span_id: 678,
        };
        let line = queryc_request("scan(emp)", Some(ctx));
        assert_eq!(line, "QUERYC trace=12345 parent=678 scan(emp)");
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::QueryCards {
                query: "scan(emp)".into(),
                trace: Some(ctx),
            }
        );
        assert_eq!(
            parse_request(&queryc_request("scan(emp)", None)).unwrap(),
            Request::QueryCards {
                query: "scan(emp)".into(),
                trace: None,
            }
        );
        // A query that merely *starts* with trace= but carries no numeric
        // stamp stays plain query text.
        assert_eq!(
            parse_request("QUERYC trace=x parent=1 q").unwrap(),
            Request::QueryCards {
                query: "trace=x parent=1 q".into(),
                trace: None,
            }
        );
        // A stamp with no query text after it is an error.
        assert!(parse_request("QUERYC trace=1 parent=2 ").is_err());
    }

    #[test]
    fn profile_and_spans_frames_round_trip() {
        let json = "{\"query\":\"scan(emp)\",\"steps\":[]}";
        let frame = profile_frame(json);
        assert!(!frame.contains('\n'));
        assert_eq!(parse_profile_frame(&frame).unwrap(), json);
        assert!(parse_profile_frame("RESULT rows=1").is_err());

        let batch = "{\"name\":\"a\"}\n{\"name\":\"b\"}";
        let frame = spans_frame(batch);
        assert!(!frame.contains('\n'));
        assert_eq!(parse_spans_frame(&frame).unwrap(), batch);
        assert!(parse_spans_frame("HOST ns=1").is_err());
    }

    #[test]
    fn profiles_frames_round_trip() {
        let profiles = vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()];
        let frame = profiles_frame(&profiles);
        assert!(!frame.contains('\n'));
        assert_eq!(parse_profiles_frame(&frame).unwrap(), profiles);
        assert_eq!(
            parse_profiles_frame(&profiles_frame(&[])).unwrap(),
            Vec::<String>::new()
        );
        assert!(parse_profiles_frame("PROFILES count=3 json=").is_err());
        assert!(parse_profiles_frame("STATS tables=0").is_err());
    }

    #[test]
    fn metrics_frames_round_trip_multiline_expositions() {
        let text = "# HELP x helps\n# TYPE x counter\nx 1\n";
        let frame = metrics_frame(text);
        assert!(!frame.contains('\n'), "frames are single lines");
        assert_eq!(parse_metrics_frame(&frame).unwrap(), text);
    }

    #[test]
    fn parse_error_frames_carry_offset_and_caret() {
        let err = systolic_machine::parse("explode(scan(a))").unwrap_err();
        let frame = parse_err_frame(&err, "explode(scan(a))");
        assert!(frame.starts_with("ERR parse at="));
        assert!(frame.contains("\\n"), "caret rendering is multi-line");
    }

    #[test]
    fn analysis_error_frames_carry_code_span_and_carets() {
        use systolic_analyzer::Code;
        let query = "scan(ghost)";
        let diags = vec![Diagnostic::new(
            Code::UnknownRelation,
            "no base relation \"ghost\" in the catalog",
            Some((0, 11)),
        )];
        let frame = analysis_err_frame(&diags, query);
        assert!(frame.starts_with("ERR analysis SA007 at=0..11 "), "{frame}");
        assert!(frame.contains("\\n"), "caret rendering is multi-line");
        // Span-less findings (e.g. batch conflicts) omit at=.
        let diags = vec![Diagnostic::new(Code::ShadowedLoad, "conflict", None)];
        let frame = analysis_err_frame(&diags, query);
        assert!(frame.starts_with("ERR analysis SA008 "), "{frame}");
        assert!(!frame.contains("at="), "{frame}");
    }
}
