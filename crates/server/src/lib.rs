//! # systolic-server
//!
//! A long-running, multi-client query service in front of the §9 integrated
//! machine. The paper's crossbar organisation exists precisely so that
//! "several operations may be run concurrently" across "a single
//! transaction or a set of transactions" — this crate is the set-of-
//! transactions part: many TCP sessions multiplexed onto one shared
//! [`systolic_machine::System`] and one shared catalog.
//!
//! Architecture, in one paragraph: a bounded pool of worker threads serves
//! newline-delimited request frames (`LOAD`/`QUERY`/`STATS`/`CLOSE`) over
//! `std::net` sockets. Parsing and CSV rendering happen on the worker, with
//! the catalog behind an `RwLock`; actual machine runs are submitted to a
//! single *admission scheduler* thread that owns the `System`, gathers
//! requests arriving within a short window, and runs them as one merged
//! dependency-level schedule (`run_batch_accounted`) so independent client
//! queries genuinely share crossbar ports and devices. Each response still
//! carries standalone per-request accounting, bit-identical to a one-shot
//! run — simulated hardware time in the `RESULT` frame, nondeterministic
//! host wall time in a separate `HOST` frame.
//!
//! ```
//! use systolic_server::{spawn, Client, ServerConfig};
//!
//! let handle = spawn(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(handle.addr).unwrap();
//! client.load_csv("nums", "int,int", "1,10\n2,20\n3,30\n").unwrap();
//! let result = client.query("filter(scan(nums), c1 >= 20)").unwrap();
//! assert_eq!(result.rows, 2);
//! assert!(result.csv.contains("3,30"));
//! client.close().unwrap();
//! handle.shutdown();
//! handle.join().unwrap();
//! ```

// `deny` rather than the workspace-wide `forbid`: the [`shutdown`] module
// (two `extern "C"` `signal(2)` registrations) and the reactor's poll(2)
// binding carry the crate's documented exceptions — each an
// `#[allow(unsafe_code)]` that names its safety argument. Everything else
// in the crate is checked as strictly as a `forbid` would.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod frame;
mod locks;
mod metrics;
mod profile;
pub mod protocol;
#[cfg(unix)]
mod reactor;
mod router;
mod scheduler;
pub mod server;
mod shutdown;

pub use client::{Client, ClientError, QueryResult};
pub use engine::{Engine, EngineError, Store};
pub use server::{run, spawn, IoModel, ServerConfig, ServerHandle, ServerReport};
// Part of [`ServerConfig`]'s public surface: callers pick the buffer-pool
// replacement policy without depending on the storage crate directly.
pub use systolic_storage::ReplacerKind;
