//! Poison-free lock accessors.
//!
//! `std` mutexes poison when a holder panics, and `.lock().unwrap()` then
//! turns *every later* access into a panic — one crashed worker becomes a
//! server-wide cascade. None of the state guarded in this crate can be left
//! half-updated in a way later readers cannot tolerate (counters are plain
//! integers, queues are pop-safe, the catalog's `register` is effectively
//! transactional), so the right recovery is to take the data and keep
//! serving. These helpers centralise that decision.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering the data if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquire a read guard, recovering from poisoning.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquire a write guard, recovering from poisoning.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Wait on a condition variable, recovering the guard from poisoning.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_access_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7));
        let holder = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = holder.lock().unwrap();
            panic!("injected panic while holding the lock");
        })
        .join();
        assert!(m.is_poisoned(), "the panic must have poisoned the mutex");
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn rwlock_access_survives_a_poisoning_panic() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        let holder = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = holder.write().unwrap();
            panic!("injected panic while holding the write lock");
        })
        .join();
        assert!(l.is_poisoned());
        write(&l).push(3);
        assert_eq!(read(&l).len(), 3);
    }

    #[test]
    fn condvar_wait_recovers_a_poisoned_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let holder = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = holder.0.lock().unwrap();
            panic!("injected panic");
        })
        .join();
        let notifier = Arc::clone(&pair);
        std::thread::spawn(move || {
            *lock(&notifier.0) = true;
            notifier.1.notify_all();
        });
        let mut guard = lock(&pair.0);
        while !*guard {
            guard = wait(&pair.1, guard);
        }
        assert!(*guard);
    }
}
