//! Shared catalog + query preparation for the server.
//!
//! [`Store`] owns the [`Catalog`] and per-table [`Schema`]s: everything a
//! worker thread needs to import CSV into encoded relations and render
//! results back out. It deliberately does *not* own the
//! [`systolic_machine::System`] — machine runs belong to the admission
//! scheduler, which serialises them; the store sits behind an `RwLock` so
//! many connections can render results concurrently.
//!
//! [`Engine`] pairs a `Store` with a private `System` for one-shot,
//! in-process use (tests, the classic CLI path, and the byte-identity
//! oracle the server is checked against).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use systolic_analyzer::{analyze, Analysis, CatalogView, ColumnInfo, Diagnostic};
use systolic_machine::{
    parse, parse_spanned, push_selections, Expr, MachineConfig, MachineError, ParseError,
    RunOutcome, System,
};
use systolic_relation::{
    export_csv, import_csv_columnar, Catalog, Column, DomainId, DomainKind, MultiRelation,
    RelationError, Schema,
};

/// Errors from preparing or running a query against an engine.
#[derive(Debug)]
pub enum EngineError {
    /// The query text failed to parse; keeps the source so the error can be
    /// rendered with a caret.
    Parse {
        /// The parse failure.
        err: ParseError,
        /// The query text it occurred in.
        query: String,
    },
    /// CSV import or result rendering failed.
    Relation(RelationError),
    /// The machine rejected or failed the plan.
    Machine(MachineError),
    /// The static analyzer rejected the plan before it reached the machine;
    /// keeps the source so diagnostics can be rendered with carets.
    Analysis {
        /// Every finding, in source order.
        diags: Vec<Diagnostic>,
        /// The query text the findings point into.
        query: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { err, query } => write!(f, "{}", err.pretty(query)),
            EngineError::Relation(e) => write!(f, "{e}"),
            EngineError::Machine(e) => write!(f, "{e}"),
            EngineError::Analysis { diags, query } => {
                let rendered: Vec<String> = diags.iter().map(|d| d.pretty(query)).collect();
                write!(f, "{}", rendered.join("\n"))
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RelationError> for EngineError {
    fn from(e: RelationError) -> Self {
        EngineError::Relation(e)
    }
}
impl From<MachineError> for EngineError {
    fn from(e: MachineError) -> Self {
        EngineError::Machine(e)
    }
}

/// Map a wire-format type name to a domain kind.
pub fn kind_of(name: &str) -> Option<DomainKind> {
    match name {
        "int" => Some(DomainKind::Int),
        "str" => Some(DomainKind::Str),
        "bool" => Some(DomainKind::Bool),
        "date" => Some(DomainKind::Date),
        _ => None,
    }
}

/// The wire-format name of a domain kind.
pub fn kind_name(kind: DomainKind) -> &'static str {
    match kind {
        DomainKind::Int => "int",
        DomainKind::Str => "str",
        DomainKind::Bool => "bool",
        DomainKind::Date => "date",
    }
}

/// Parse a comma-separated type list (`int,str,date`).
pub fn parse_kinds(list: &str) -> Result<Vec<DomainKind>, String> {
    list.split(',')
        .map(|t| {
            kind_of(t.trim())
                .ok_or_else(|| format!("unknown column type {:?} (int, str, bool, date)", t.trim()))
        })
        .collect()
}

/// The shared catalog: domains, per-table schemas, and CSV import/render.
///
/// Tables get columns named `c0..c{n-1}`, and all columns of a given type
/// share one underlying domain so same-typed columns across tables are
/// comparable (§2.4's union-compatibility by construction) — the same
/// convention the `sdb` one-shot path uses.
#[derive(Debug, Default)]
pub struct Store {
    catalog: Catalog,
    domains: HashMap<&'static str, DomainId>,
    schemas: BTreeMap<String, Schema>,
    rows: BTreeMap<String, u64>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    fn domain_of(&mut self, kind: DomainKind) -> DomainId {
        let key = kind_name(kind);
        match self.domains.get(key) {
            Some(&id) => id,
            None => {
                let id = self.catalog.add_domain(key, kind);
                self.domains.insert(key, id);
                id
            }
        }
    }

    /// Import CSV text as table `name` with the given column kinds,
    /// remembering its schema. Re-registering a name overwrites its schema.
    ///
    /// The zero-detour ingest path: the bit-packed columnar planes are
    /// built *while parsing*, so a later columnar scan never re-walks the
    /// rows to pack them.
    pub fn register(
        &mut self,
        name: &str,
        kinds: &[DomainKind],
        csv: &str,
    ) -> Result<MultiRelation, EngineError> {
        let columns: Vec<Column> = kinds
            .iter()
            .enumerate()
            .map(|(k, &kind)| Column::new(format!("c{k}"), self.domain_of(kind)))
            .collect();
        let schema = Schema::new(columns);
        let rel = import_csv_columnar(&mut self.catalog, &schema, csv)?;
        self.rows.insert(name.to_string(), rel.len() as u64);
        self.schemas.insert(name.to_string(), schema);
        Ok(rel)
    }

    /// The registered schema for a table, if any.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.schemas.get(name)
    }

    /// Snapshot the catalog as the analyzer's view: per-table column
    /// domains (identity and kind) plus registration-time row counts.
    pub fn catalog_view(&self) -> CatalogView {
        let mut view = CatalogView::new();
        for (name, schema) in &self.schemas {
            let columns: Vec<ColumnInfo> = schema
                .columns()
                .iter()
                .map(|col| ColumnInfo {
                    domain: col.domain,
                    kind: self.catalog.domain(col.domain).kind(),
                })
                .collect();
            let rows = self.rows.get(name).copied().unwrap_or(0);
            view.add_table(name.clone(), columns, rows);
        }
        view
    }

    /// Whether a table with this name has been registered.
    pub fn has_table(&self, name: &str) -> bool {
        self.schemas.contains_key(name)
    }

    /// Remove a table registration (schema and row count).
    ///
    /// Used to undo a speculative [`Store::register`] when the load it
    /// belongs to is fenced off (e.g. the client timed out before the
    /// relation reached the machine), so the catalog never advertises a
    /// table whose load the client was told failed.
    pub fn unregister(&mut self, name: &str) {
        self.schemas.remove(name);
        self.rows.remove(name);
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.schemas.len()
    }

    /// Render a result relation as CSV.
    pub fn render_csv(&self, rel: &MultiRelation) -> Result<String, EngineError> {
        Ok(export_csv(&self.catalog, rel)?)
    }
}

/// Parse query text and apply the §9 logic-per-track rewrite (filters over
/// plain scans run at the disk).
pub fn prepare(query: &str) -> Result<Expr, EngineError> {
    let expr = parse(query).map_err(|err| EngineError::Parse {
        err,
        query: query.to_string(),
    })?;
    Ok(push_selections(expr))
}

/// Parse, statically analyze, and rewrite a query: the server's admission
/// path. The analyzer sees the parsed tree (so diagnostic spans line up
/// with the source); only an accepted plan gets the §9 logic-per-track
/// rewrite. Returns the rewritten expression plus the typed [`Analysis`].
pub fn prepare_checked(
    query: &str,
    view: &CatalogView,
    machine: &MachineConfig,
) -> Result<(Expr, Analysis), EngineError> {
    let (expr, spans) = parse_spanned(query).map_err(|err| EngineError::Parse {
        err,
        query: query.to_string(),
    })?;
    let analysis =
        analyze(&expr, view, machine, &spans).map_err(|diags| EngineError::Analysis {
            diags,
            query: query.to_string(),
        })?;
    Ok((push_selections(expr), analysis))
}

/// The base-relation names an expression scans, sorted and deduplicated.
pub fn scan_names(expr: &Expr) -> Vec<String> {
    fn walk(expr: &Expr, out: &mut Vec<String>) {
        match expr {
            Expr::Scan { name, .. } => out.push(name.clone()),
            Expr::Intersect(a, b)
            | Expr::Difference(a, b)
            | Expr::Union(a, b)
            | Expr::Join(a, b, _) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::Dedup(a) | Expr::Project(a, _) | Expr::Select(a, _) => walk(a, out),
            Expr::Store(a, _) => walk(a, out),
            Expr::Divide {
                dividend, divisor, ..
            } => {
                walk(dividend, out);
                walk(divisor, out);
            }
        }
    }
    let mut names = Vec::new();
    walk(expr, &mut names);
    names.sort();
    names.dedup();
    names
}

/// The `store(...)` target names in an expression, in tree order.
pub fn store_names(expr: &Expr) -> Vec<String> {
    fn walk(expr: &Expr, out: &mut Vec<String>) {
        match expr {
            Expr::Scan { .. } => {}
            Expr::Intersect(a, b)
            | Expr::Difference(a, b)
            | Expr::Union(a, b)
            | Expr::Join(a, b, _) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::Dedup(a) | Expr::Project(a, _) | Expr::Select(a, _) => walk(a, out),
            Expr::Store(a, name) => {
                out.push(name.clone());
                walk(a, out);
            }
            Expr::Divide {
                dividend, divisor, ..
            } => {
                walk(dividend, out);
                walk(divisor, out);
            }
        }
    }
    let mut names = Vec::new();
    walk(expr, &mut names);
    names
}

/// A store plus a private machine: the one-shot, in-process query path.
#[derive(Debug)]
pub struct Engine {
    store: Store,
    system: System,
}

impl Engine {
    /// Build an engine over a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Result<Self, EngineError> {
        Ok(Engine {
            store: Store::new(),
            system: System::new(config)?,
        })
    }

    /// Register a table and load it onto the machine's disk. Returns the
    /// row count.
    pub fn load_table(
        &mut self,
        name: &str,
        kinds: &[DomainKind],
        csv: &str,
    ) -> Result<usize, EngineError> {
        let rel = self.store.register(name, kinds, csv)?;
        let rows = rel.len();
        self.system.load_base(name.to_string(), rel);
        Ok(rows)
    }

    /// Parse, rewrite, and run a query.
    pub fn run_query(&mut self, query: &str) -> Result<RunOutcome, EngineError> {
        let expr = prepare(query)?;
        Ok(self.system.run(&expr)?)
    }

    /// Render a result relation as CSV.
    pub fn render_csv(&self, rel: &MultiRelation) -> Result<String, EngineError> {
        self.store.render_csv(rel)
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_runs_a_join_end_to_end() {
        let mut engine = Engine::new(MachineConfig::default()).unwrap();
        engine
            .load_table(
                "emp",
                &[DomainKind::Str, DomainKind::Int],
                "ada,10\ngrace,20\nedsger,30\n",
            )
            .unwrap();
        engine
            .load_table(
                "dept",
                &[DomainKind::Int, DomainKind::Str],
                "10,storage\n20,query\n",
            )
            .unwrap();
        let out = engine
            .run_query("join(scan(emp), scan(dept), 1 = 0)")
            .unwrap();
        let csv = engine.render_csv(&out.result).unwrap();
        assert!(csv.contains("ada,10,storage"));
        assert!(csv.contains("grace,20,query"));
        assert!(!csv.contains("edsger"));
    }

    #[test]
    fn parse_errors_render_with_a_caret() {
        let mut engine = Engine::new(MachineConfig::default()).unwrap();
        let err = engine.run_query("explode(scan(a))").unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains('^'), "{rendered}");
        assert!(rendered.contains("explode(scan(a))"), "{rendered}");
    }

    #[test]
    fn scan_names_are_collected_sorted_and_deduped() {
        let expr = prepare("join(intersect(scan(b), scan(a)), scan(b), 0 = 0)").unwrap();
        assert_eq!(scan_names(&expr), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn store_names_are_collected() {
        let expr = prepare("store(union(scan(a), scan(b)), out)").unwrap();
        assert_eq!(store_names(&expr), vec!["out".to_string()]);
        let expr = prepare("scan(a)").unwrap();
        assert!(store_names(&expr).is_empty());
    }

    #[test]
    fn kind_tables_round_trip() {
        for kind in [
            DomainKind::Int,
            DomainKind::Str,
            DomainKind::Bool,
            DomainKind::Date,
        ] {
            assert_eq!(kind_of(kind_name(kind)), Some(kind));
        }
        assert!(kind_of("blob").is_none());
        assert_eq!(
            parse_kinds("int, str,date").unwrap(),
            vec![DomainKind::Int, DomainKind::Str, DomainKind::Date]
        );
        assert!(parse_kinds("int,nope").is_err());
    }
}
