//! Minimal SIGINT/SIGTERM latch, dependency-free.
//!
//! The handler only flips an `AtomicBool`; the accept loop and connection
//! workers poll it between short socket timeouts, so a signal turns into a
//! graceful drain rather than an abort.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed.
pub(crate) fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

// The crate's one `unsafe_code` exception (the crate root carries
// `#![deny(unsafe_code)]`): registering `signal(2)` handlers requires an
// `extern "C"` call. Safety: the handler only performs an async-signal-safe
// atomic store, the function pointer has the exact C signature `signal`
// expects, and registration is idempotent.
#[allow(unsafe_code)]
#[cfg(unix)]
mod imp {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: a relaxed store would do, but
        // SeqCst is equally safe and matches the reader.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub(crate) fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(crate) fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (no-op off Unix). Idempotent.
pub(crate) fn install() {
    imp::install();
}
