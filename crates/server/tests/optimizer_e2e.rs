//! End-to-end plan-compiler tests against live TCP servers.
//!
//! The tentpole guarantee: a server with the optimizer on answers every
//! query with rows *byte-identical* to a server with it off — across one
//! and two shards — while spending no more (and on this workload strictly
//! fewer) simulated pulses. The pulse accounting a client sees prices the
//! *chosen* plan, so `PROFILE`'s `drift_pulses >= 0` invariant keeps
//! holding against the optimized budget.

use systolic_machine::MachineConfig;
use systolic_server::{spawn, Client, ServerConfig};

/// (name, wire kinds, csv) — enough shape variety that every default
/// rewrite rule fires somewhere in the workload.
const TABLES: &[(&str, &str, &str)] = &[
    ("emp", "str,int", "ada,10\ngrace,20\nedsger,30\n"),
    ("dept", "int,str", "10,storage\n20,query\n"),
    ("a", "int", "1\n2\n2\n3\n4\n"),
    ("b", "int", "2\n3\n5\n"),
    ("ta", "int,int", "0,0\n1,1\n2,2\n3,0\n4,1\n5,2\n6,0\n7,1\n"),
    ("tb", "int,int", "5,2\n6,0\n7,1\n8,2\n9,0\n"),
];

/// Queries chosen so the optimizer has real work: redundant dedups,
/// nested projections, pushable filters over set ops and equi-joins —
/// plus plain queries where no rule fires (the identity path).
const QUERIES: &[&str] = &[
    "dedup(union(scan(a), scan(b)))",
    "project(project(scan(emp), [1, 0]), [0])",
    "project(dedup(scan(a)), [0])",
    "filter(filter(scan(ta), c0 >= 2), c1 <= 1)",
    "filter(intersect(scan(ta), scan(tb)), c0 <= 6)",
    "filter(union(scan(a), scan(b)), c0 >= 2)",
    "filter(join(scan(ta), scan(tb), 1 = 1), c0 >= 1)",
    "join(scan(emp), scan(dept), 1 = 0)",
    "difference(scan(a), scan(b))",
    "dedup(scan(a))",
];

fn config(optimize: bool, shards: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        optimize,
        shards,
        machine: MachineConfig::default(),
        slow_query: None,
        ..ServerConfig::default()
    }
}

/// Run the whole workload on a fresh server; returns per-query
/// (rows, csv, total_pulses) plus the final `STATS` line.
fn run_workload(optimize: bool, shards: usize) -> (Vec<(usize, String, u64)>, String) {
    let handle = spawn(config(optimize, shards)).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    for (name, kinds, csv) in TABLES {
        client.load_csv(name, kinds, csv).unwrap();
    }
    let answers = QUERIES
        .iter()
        .map(|q| {
            let r = client.query(q).unwrap();
            (r.rows, r.csv, r.total_pulses)
        })
        .collect();
    let stats = client.stats_line().unwrap();
    let _ = client.close();
    handle.shutdown();
    let _ = handle.join();
    (answers, stats)
}

fn rows_match(on: &[(usize, String, u64)], off: &[(usize, String, u64)]) {
    for (i, (o, f)) in on.iter().zip(off).enumerate() {
        assert_eq!(o.0, f.0, "row count diverged for {:?}", QUERIES[i]);
        assert_eq!(o.1, f.1, "rows diverged for {:?}", QUERIES[i]);
    }
}

#[test]
fn optimized_rows_are_byte_identical_and_strictly_cheaper() {
    let (on, stats_on) = run_workload(true, 1);
    let (off, stats_off) = run_workload(false, 1);
    rows_match(&on, &off);
    let pulses = |r: &[(usize, String, u64)]| r.iter().map(|x| x.2).sum::<u64>();
    assert!(
        pulses(&on) < pulses(&off),
        "optimizer saved nothing: {} vs {}",
        pulses(&on),
        pulses(&off)
    );
    // Per query the chosen plan never costs more.
    for (i, (o, f)) in on.iter().zip(&off).enumerate() {
        assert!(
            o.2 <= f.2,
            "query {:?} regressed: {} > {}",
            QUERIES[i],
            o.2,
            f.2
        );
    }
    // STATS reports the compiler's activity (and its absence when off).
    assert!(stats_on.contains(" optimize=1 "), "{stats_on}");
    assert!(stats_off.contains(" optimize=0 "), "{stats_off}");
    let rewrites = stats_on
        .split_whitespace()
        .find_map(|f| f.strip_prefix("rewrites="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no rewrites field in {stats_on}"));
    assert!(
        rewrites >= 4,
        "expected >=4 rewrites on this workload, got {rewrites}"
    );
    assert!(stats_off.contains("rewrites=0"), "{stats_off}");
}

#[test]
fn optimizer_is_transparent_across_shards() {
    let (off1, _) = run_workload(false, 1);
    let (on2, stats) = run_workload(true, 2);
    let (off2, _) = run_workload(false, 2);
    rows_match(&on2, &off2);
    // And sharding itself stays transparent under the optimizer.
    rows_match(&on2, &off1);
    assert!(stats.contains(" optimize=1 "), "{stats}");
}

#[test]
fn plan_cache_hits_repeat_queries_and_invalidates_on_catalog_change() {
    let handle = spawn(config(true, 1)).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    for (name, kinds, csv) in TABLES {
        client.load_csv(name, kinds, csv).unwrap();
    }
    let q = "dedup(union(scan(a), scan(b)))";
    let first = client.query(q).unwrap();
    let second = client.query(q).unwrap();
    assert_eq!(first.csv, second.csv);
    assert_eq!(first.total_pulses, second.total_pulses);
    let stats = client.stats_line().unwrap();
    let field = |name: &str, line: &str| {
        line.split_whitespace()
            .find_map(|f| {
                f.strip_prefix(name)
                    .and_then(|v| v.strip_prefix('='))
                    .map(String::from)
            })
            .unwrap_or_else(|| panic!("no {name} in {line}"))
    };
    let hits: u64 = field("plan_cache_hits", &stats).parse().unwrap();
    assert!(hits >= 1, "repeat query missed the plan cache: {stats}");
    // A catalog change (new table) changes the fingerprint: the same text
    // recompiles rather than serving a stale plan.
    client.load_csv("late", "int", "7\n").unwrap();
    let third = client.query(q).unwrap();
    assert_eq!(first.csv, third.csv);
    // The metrics exposition carries the per-rule rewrite series.
    let exposition = client.metrics().unwrap();
    assert!(
        exposition.contains("sdb_planner_rewrites_total{rule=\"dedup-elim\"}"),
        "{exposition}"
    );
    assert!(
        exposition.contains("sdb_plan_cache_hits_total"),
        "{exposition}"
    );
    let _ = client.close();
    handle.shutdown();
    let _ = handle.join();
}

#[test]
fn profile_drift_stays_nonnegative_against_the_chosen_plan() {
    let handle = spawn(config(true, 1)).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    for (name, kinds, csv) in TABLES {
        client.load_csv(name, kinds, csv).unwrap();
    }
    for q in QUERIES {
        let (_, profile) = client.profile(q).unwrap();
        let drift = profile
            .split("\"drift_pulses\":")
            .nth(1)
            .and_then(|rest| {
                rest.trim_start()
                    .split([',', '}'])
                    .next()?
                    .trim()
                    .parse::<i64>()
                    .ok()
            })
            .unwrap_or_else(|| panic!("no drift_pulses in profile for {q:?}: {profile}"));
        assert!(
            drift >= 0,
            "optimized plan under-budgeted {q:?}: drift {drift} in {profile}"
        );
    }
    let _ = client.close();
    handle.shutdown();
    let _ = handle.join();
}

/// Identical read-only queries arriving in one admission window share a
/// slot in the merged schedule; every client still gets the full answer.
#[test]
fn batch_window_cse_shares_slots_without_changing_answers() {
    use std::thread;
    let handle = spawn(ServerConfig {
        batch_window: std::time::Duration::from_millis(50),
        workers: 12,
        ..config(true, 1)
    })
    .unwrap();
    let addr = handle.addr;
    let mut setup = Client::connect(addr).unwrap();
    for (name, kinds, csv) in TABLES {
        setup.load_csv(name, kinds, csv).unwrap();
    }
    let q = "dedup(union(scan(a), scan(b)))";
    let expect = setup.query(q).unwrap();
    // Fire the same query from 8 connections at once so the scheduler's
    // gather window merges them.
    thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let r = c.query(q).unwrap();
                    let _ = c.close();
                    (r.rows, r.csv, r.total_pulses)
                })
            })
            .collect();
        for h in handles {
            let (rows, csv, pulses) = h.join().unwrap();
            assert_eq!(rows, expect.rows);
            assert_eq!(csv, expect.csv);
            assert_eq!(
                pulses, expect.total_pulses,
                "solo accounting must be preserved"
            );
        }
    });
    let stats = setup.stats_line().unwrap();
    let cse: u64 = stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix("cse_hits="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no cse_hits in {stats}"));
    // Whether batches formed depends on timing; when they did, duplicates
    // must have been shared. Either way the answers above already proved
    // correctness — this asserts the counter is wired, not a race.
    let batches = stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix("batches="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    if batches > 0 {
        assert!(cse > 0, "batches formed but no slots were shared: {stats}");
    }
    let _ = setup.close();
    handle.shutdown();
    let _ = handle.join();
}
