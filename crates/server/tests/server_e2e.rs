//! End-to-end tests against a live TCP server.
//!
//! The load-bearing one is `sixteen_concurrent_clients_match_serial_and_one_shot`:
//! it checks the tentpole guarantee that a shared, long-lived, batching
//! server returns `RESULT` frames *byte-identical* — rows and simulated
//! hardware stats both — to (a) the same server queried serially and (b) a
//! fresh in-process [`Engine`] per the one-shot `sdb` path.

use std::thread;
use std::time::Duration;

use systolic_machine::{Backend, MachineConfig};
use systolic_relation::DomainKind;
use systolic_server::protocol::result_frame;
use systolic_server::{spawn, Client, ClientError, Engine, IoModel, ServerConfig};

/// (name, wire kinds, engine kinds, csv)
const TABLES: &[(&str, &str, &[DomainKind], &str)] = &[
    (
        "emp",
        "str,int",
        &[DomainKind::Str, DomainKind::Int],
        "ada,10\ngrace,20\nedsger,30\n",
    ),
    (
        "dept",
        "int,str",
        &[DomainKind::Int, DomainKind::Str],
        "10,storage\n20,query\n",
    ),
    ("a", "int", &[DomainKind::Int], "1\n2\n2\n3\n4\n"),
    ("b", "int", &[DomainKind::Int], "2\n3\n5\n"),
    (
        "takes",
        "str,str",
        &[DomainKind::Str, DomainKind::Str],
        "ida,db\nida,os\njoe,db\n",
    ),
    ("core", "str", &[DomainKind::Str], "db\nos\n"),
];

const QUERIES: &[&str] = &[
    "join(scan(emp), scan(dept), 1 = 0)",
    "filter(scan(emp), c1 >= 20)",
    "intersect(scan(a), scan(b))",
    "union(scan(a), scan(b))",
    "difference(scan(a), scan(b))",
    "dedup(scan(a))",
    "project(scan(emp), [0])",
    "divide(scan(takes), scan(core), 0, 1, 0)",
];

fn local_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }
}

fn load_all(client: &mut Client) {
    for (name, kinds, _, csv) in TABLES {
        client.load_csv(name, kinds, csv).unwrap();
    }
}

/// What the one-shot `sdb` path would answer: a fresh engine, the same
/// tables in the same order (string interning order matters), each query
/// rendered as its deterministic `RESULT` frame.
fn one_shot_frames() -> Vec<String> {
    let mut engine = Engine::new(MachineConfig::default()).unwrap();
    for (name, _, kinds, csv) in TABLES {
        engine.load_table(name, kinds, csv).unwrap();
    }
    QUERIES
        .iter()
        .map(|q| {
            let out = engine.run_query(q).unwrap();
            let csv = engine.render_csv(&out.result).unwrap();
            result_frame(out.result.len(), &out.stats, &csv)
        })
        .collect()
}

#[test]
fn sixteen_concurrent_clients_match_serial_and_one_shot() {
    const CLIENTS: usize = 16;
    let handle = spawn(ServerConfig {
        workers: CLIENTS + 4,
        ..local_config()
    })
    .unwrap();
    let addr = handle.addr;

    let mut setup = Client::connect(addr).unwrap();
    load_all(&mut setup);

    // Serial pass over the live server...
    let serial: Vec<String> = QUERIES
        .iter()
        .map(|q| setup.raw_query_frames(q).unwrap().0)
        .collect();
    setup.close().unwrap();

    // ...must already match the in-process one-shot oracle.
    assert_eq!(serial, one_shot_frames());

    // Now 16 clients fire the whole workload concurrently, each starting at
    // a different offset so every batch the admission scheduler forms mixes
    // different queries.
    thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let serial = &serial;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for k in 0..QUERIES.len() {
                        let q = (i + k) % QUERIES.len();
                        let (frame, _host) = client.raw_query_frames(QUERIES[q]).unwrap();
                        assert_eq!(
                            frame, serial[q],
                            "client {i} query {q:?} diverged from serial"
                        );
                    }
                    client.close().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    // The acceptance check: after the concurrent run the server answers
    // METRICS with a request-latency histogram covering every query and the
    // batch counters, while the RESULT frames above stayed byte-identical.
    let mut probe = Client::connect(addr).unwrap();
    let text = probe.metrics().unwrap();
    probe.close().unwrap();
    let exp = systolic_telemetry::prom::validate(&text).expect("exposition must validate");
    let expected = (CLIENTS * QUERIES.len() + QUERIES.len()) as u64;
    assert_eq!(
        exp.value("sdb_server_queries_total", ""),
        Some(expected as f64)
    );
    assert_eq!(
        exp.value("sdb_request_latency_ns_count", ""),
        Some(expected as f64)
    );
    assert!(
        exp.value("sdb_batch_size_count", "").unwrap_or(0.0) >= 1.0,
        "batch-size histogram must have observations"
    );

    handle.shutdown();
    let report = handle.join().unwrap();
    assert_eq!(report.queries, expected);
    assert_eq!(report.loads, TABLES.len() as u64);
    assert_eq!(report.timeouts, 0);
}

/// The ISSUE-5 (and ISSUE-10) acceptance check at the wire level: servers
/// running the closed-form kernel and bit-packed columnar backends answer
/// every query with `RESULT` frames *byte-identical* to a pulse-simulator
/// server's — rows, makespan, pulses, array runs, disk bytes, concurrency,
/// and CSV all included — while their `STATS` frames and `METRICS`
/// expositions advertise which backend produced them.
#[test]
fn closed_form_backend_result_frames_are_byte_identical_to_sim() {
    let spawn_with = |backend: Backend| {
        spawn(ServerConfig {
            machine: MachineConfig {
                backend,
                ..MachineConfig::default()
            },
            ..local_config()
        })
        .unwrap()
    };
    let run_all = |handle: &systolic_server::ServerHandle| -> (Vec<String>, String, String) {
        let mut client = Client::connect(handle.addr).unwrap();
        load_all(&mut client);
        let frames = QUERIES
            .iter()
            .map(|q| client.raw_query_frames(q).unwrap().0)
            .collect();
        let stats = client.stats_line().unwrap();
        let metrics = client.metrics().unwrap();
        client.close().unwrap();
        (frames, stats, metrics)
    };

    let sim = spawn_with(Backend::Sim);
    let (sim_frames, sim_stats, _) = run_all(&sim);
    sim.shutdown();
    sim.join().unwrap();
    assert!(sim_stats.contains(" backend=sim"), "{sim_stats}");

    for backend in [Backend::Kernel, Backend::Columnar] {
        let label = backend.label();
        let server = spawn_with(backend);
        let (frames, stats, metrics) = run_all(&server);
        server.shutdown();
        server.join().unwrap();

        assert_eq!(
            frames, sim_frames,
            "{label} RESULT frames must be byte-identical to sim"
        );
        assert!(stats.contains(&format!(" backend={label}")), "{stats}");
        let exp = systolic_telemetry::prom::validate(&metrics).unwrap();
        assert_eq!(
            exp.value(
                "sdb_server_backend_info",
                &format!("{{backend=\"{label}\"}}")
            ),
            Some(1.0),
            "{label} server must advertise its backend"
        );
        // Every LOAD packs word planes while parsing (zero-detour ingest),
        // so the pack gauge must be visible and non-zero by now.
        assert!(
            exp.value("sdb_columnar_builds", "").unwrap_or(0.0) >= TABLES.len() as f64,
            "ingest must have packed columnar planes"
        );
    }
}

#[test]
fn requests_time_out_instead_of_hanging() {
    // A 1ms request timeout against a 200ms admission window: the worker
    // gives up long before the scheduler even forms the batch, wins the
    // timeout fence, and the load must be skipped whole — the catalog can
    // never advertise a table whose load the client was told failed.
    let handle = spawn(ServerConfig {
        request_timeout: Duration::from_millis(1),
        batch_window: Duration::from_millis(200),
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    match client.load_csv("t", "int", "1\n2\n") {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "timeout"),
        Ok(_) => panic!("load should not beat a 1ms timeout with a 200ms window"),
        Err(other) => panic!("unexpected load error {other}"),
    }
    // The speculative registration was undone with the fence...
    let stats = client.stats_line().unwrap();
    assert!(stats.contains(" tables=0 "), "{stats}");
    // ...so the query is rejected by static analysis (unknown relation)
    // instead of being answered from a table the client never loaded.
    match client.query("scan(t)") {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "analysis"),
        Ok(_) => panic!("query must not see the fenced table"),
        Err(other) => panic!("unexpected error {other}"),
    }
    client.close().unwrap();
    handle.shutdown();
    let report = handle.join().unwrap();
    assert!(report.timeouts >= 1);
    assert_eq!(
        report.loads, 0,
        "a fenced load must never reach the machine"
    );
}

/// The poll reactor must answer the whole workload with `RESULT` frames
/// byte-identical to the threads front end — both serially and with every
/// frame pipelined onto the socket at once before any response is read.
#[test]
fn poll_front_end_matches_threads_and_serves_pipelined_frames() {
    let threads = spawn(local_config()).unwrap();
    let mut c = Client::connect(threads.addr).unwrap();
    load_all(&mut c);
    let baseline: Vec<String> = QUERIES
        .iter()
        .map(|q| c.raw_query_frames(q).unwrap().0)
        .collect();
    c.close().unwrap();
    threads.shutdown();
    threads.join().unwrap();

    let poll = spawn(ServerConfig {
        io: IoModel::Poll,
        ..local_config()
    })
    .unwrap();
    let mut c = Client::connect(poll.addr).unwrap();
    load_all(&mut c);
    // Serial pass...
    let serial: Vec<String> = QUERIES
        .iter()
        .map(|q| c.raw_query_frames(q).unwrap().0)
        .collect();
    assert_eq!(serial, baseline, "poll backend must match threads backend");
    // ...and a fully pipelined pass on one connection: all requests hit the
    // socket before any response is read, and answers come back in order.
    let pairs = c.pipeline_queries(QUERIES).unwrap();
    let pipelined: Vec<String> = pairs.into_iter().map(|(result, _host)| result).collect();
    assert_eq!(
        pipelined, baseline,
        "pipelined answers must arrive in order"
    );
    c.close().unwrap();
    poll.shutdown();
    let report = poll.join().unwrap();
    assert_eq!(report.queries, 2 * QUERIES.len() as u64);
    assert_eq!(report.loads, TABLES.len() as u64);
}

#[test]
fn overloaded_server_refuses_politely() {
    let handle = spawn(ServerConfig {
        workers: 1,
        max_pending: 0,
        ..local_config()
    })
    .unwrap();
    // First connection occupies the only worker...
    let mut first = Client::connect(handle.addr).unwrap();
    let stats = first.stats_line().unwrap();
    assert!(stats.contains("active=1"), "{stats}");
    // ...so the second is refused at the door.
    let mut second = Client::connect(handle.addr).unwrap();
    match second.stats_line() {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "overloaded"),
        other => panic!("expected overloaded refusal, got {other:?}"),
    }
    first.close().unwrap();
    handle.shutdown();
    let report = handle.join().unwrap();
    assert!(report.refused >= 1);
}

#[test]
fn shutdown_drains_in_flight_queries() {
    // A 150ms admission window makes the query in flight for at least that
    // long — shutdown lands mid-flight and must not eat the answer.
    let handle = spawn(ServerConfig {
        batch_window: Duration::from_millis(150),
        ..local_config()
    })
    .unwrap();
    let addr = handle.addr;
    let mut setup = Client::connect(addr).unwrap();
    setup.load_csv("t", "int", "1\n2\n3\n").unwrap();

    let in_flight = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query("filter(scan(t), c0 >= 2)")
    });
    thread::sleep(Duration::from_millis(30));
    handle.shutdown();

    let result = in_flight.join().unwrap().unwrap();
    assert_eq!(result.rows, 2);

    // The idle setup connection is told BYE (or sees the listener go away)
    // rather than hanging; either way the server exits cleanly.
    if let Err(ClientError::Remote { kind, .. }) = setup.query("scan(t)") {
        assert_eq!(kind, "shutting_down");
    }
    handle.join().unwrap();
}

#[test]
fn shutdown_command_over_the_wire_stops_the_server() {
    let handle = spawn(local_config()).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    client.load_csv("t", "int", "7\n").unwrap();
    let result = client.query("scan(t)").unwrap();
    assert_eq!(result.rows, 1);
    client.shutdown_server().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.queries, 1);
    assert_eq!(report.loads, 1);
}

#[test]
fn metrics_verb_serves_a_valid_monotonic_exposition() {
    let handle = spawn(local_config()).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    client.load_csv("ma", "int", "1\n2\n3\n").unwrap();
    client.load_csv("mb", "int", "2\n3\n").unwrap();
    client.query("intersect(scan(ma), scan(mb))").unwrap();
    let before = systolic_telemetry::prom::validate(&client.metrics().unwrap()).unwrap();
    client.query("union(scan(ma), scan(mb))").unwrap();
    let after = systolic_telemetry::prom::validate(&client.metrics().unwrap()).unwrap();

    // Names and kinds a scraper relies on.
    assert_eq!(
        before
            .types
            .get("sdb_server_queries_total")
            .map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        before
            .types
            .get("sdb_request_latency_ns")
            .map(String::as_str),
        Some("histogram")
    );
    assert_eq!(
        before.types.get("sdb_queue_depth").map(String::as_str),
        Some("gauge")
    );
    // Per-op simulated pulses, labelled by §8 operator.
    assert!(
        before
            .value("sdb_op_pulses_total", "{op=\"intersect\"}")
            .unwrap_or(0.0)
            > 0.0,
        "intersect pulses must be attributed"
    );
    // Counters only ever go up between scrapes.
    systolic_telemetry::prom::counters_monotonic(&before, &after)
        .expect("counters must be monotonic");
    assert!(
        after.value("sdb_server_queries_total", "") > before.value("sdb_server_queries_total", "")
    );

    client.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn stats_frame_carries_uptime_and_latency_summary() {
    let handle = spawn(local_config()).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    client.load_csv("s", "int", "5\n6\n").unwrap();
    client.query("scan(s)").unwrap();
    let stats = client.stats_line().unwrap();
    for field in [
        "uptime_ms=",
        "queue_hwm=",
        "slow=",
        "lat_p50_ns=",
        "lat_p95_ns=",
        "lat_p99_ns=",
        "lat_count=",
        "backend=",
    ] {
        assert!(stats.contains(field), "missing {field} in {stats}");
    }
    let lat_count: u64 = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("lat_count="))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(lat_count, 1, "{stats}");
    let p50: u64 = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("lat_p50_ns="))
        .unwrap()
        .parse()
        .unwrap();
    assert!(p50 > 0, "one observation means a nonzero p50: {stats}");
    client.close().unwrap();
    handle.shutdown();
    let report = handle.join().unwrap();
    assert_eq!(report.slow_queries, 0);
}

/// Serializes the tests that install the process-global span collector
/// (directly or via a server's `trace_out`).
fn collector_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Two requests merged into one admission batch must keep *distinct* trace
/// ids (each client's story stays separate) while both their
/// `server.batch_run` spans point at the *same* `server.batch` span.
///
/// Holds [`collector_lock`]: the span collector is process-global, and
/// concurrent tests' spans land in it too, so everything below filters by
/// this test's own query text.
#[test]
fn merged_requests_keep_distinct_traces_but_share_the_batch_span() {
    let _guard = collector_lock();
    let collector = systolic_telemetry::install();
    let handle = spawn(ServerConfig {
        batch_window: Duration::from_millis(300),
        ..local_config()
    })
    .unwrap();
    let addr = handle.addr;
    let mut setup = Client::connect(addr).unwrap();
    setup.load_csv("trc", "int", "1\n2\n3\n").unwrap();
    setup.close().unwrap();

    let queries = ["filter(scan(trc), c0 >= 1)", "filter(scan(trc), c0 >= 2)"];
    thread::scope(|scope| {
        for q in queries {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query(q).unwrap();
                client.close().unwrap();
            });
        }
    });
    handle.shutdown();
    let report = handle.join().unwrap();
    assert!(report.batches >= 1, "the 300ms window must merge both");

    let spans = collector.drain();
    systolic_telemetry::uninstall();
    let requests: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "server.request")
        .filter(|s| queries.contains(&s.arg("query").unwrap_or("")))
        .collect();
    assert_eq!(requests.len(), 2, "one request span per client");
    assert_ne!(
        requests[0].trace_id, requests[1].trace_id,
        "merged requests must keep distinct trace ids"
    );

    let batch_runs: Vec<_> = requests
        .iter()
        .map(|r| {
            spans
                .iter()
                .find(|s| s.name == "server.batch_run" && s.trace_id == r.trace_id)
                .expect("each request trace carries its batch_run span")
        })
        .collect();
    let batch_ids: Vec<&str> = batch_runs
        .iter()
        .map(|s| s.arg("batch_span").expect("batch_run names its batch"))
        .collect();
    assert_eq!(
        batch_ids[0], batch_ids[1],
        "both requests must point at the one shared batch span"
    );
    // And that id is a real server.batch span with size=2.
    let batch = spans
        .iter()
        .find(|s| s.name == "server.batch" && s.span_id.to_string() == batch_ids[0])
        .expect("the shared batch span exists");
    assert_eq!(batch.arg("size"), Some("2"));
}

/// Every statically-checkable SA00N class the default machine can exhibit
/// is rejected over the wire with its stable code and a caret rendering —
/// the fabric never sees the query.
#[test]
fn analyzer_rejects_each_code_class_over_the_wire() {
    let handle = spawn(local_config()).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    load_all(&mut client);

    // (query, code, fragment the human-readable detail must mention)
    let rejections = [
        ("union(scan(emp), scan(dept))", "SA001", "domain"),
        ("project(scan(emp), [9])", "SA002", "column"),
        ("divide(scan(takes), scan(a), 0, 1, 0)", "SA003", "divisor"),
        ("filter(scan(emp), c0 < 5)", "SA004", "str"),
        ("scan(nope)", "SA007", "nope"),
        ("store(scan(emp), emp)", "SA008", "emp"),
    ];
    for (query, code, fragment) in rejections {
        match client.query(query) {
            Err(ClientError::Remote { kind, detail }) => {
                assert_eq!(kind, "analysis", "{query}");
                assert!(detail.contains(code), "{query}: want {code} in {detail}");
                assert!(
                    detail.contains(fragment),
                    "{query}: want {fragment:?} in {detail}"
                );
                assert!(detail.contains('^'), "{query}: caret must travel: {detail}");
            }
            other => panic!("{query}: expected analysis rejection, got {other:?}"),
        }
    }
    // A sound query on the same connection still runs — rejection is
    // per-request, not a session poison.
    assert_eq!(client.query("dedup(scan(a))").unwrap().rows, 4);
    client.close().unwrap();
    handle.shutdown();
    let report = handle.join().unwrap();
    // Rejected queries never reach the scheduler, so the machine-level
    // query counter records only the one sound run.
    assert_eq!(report.queries, 1);
}

/// SA005 (uncoverable tiling) and SA006 (capacity) depend on the machine
/// shape, so each gets a deliberately crippled server: a zero array bound
/// and a 16-byte memory module respectively. The analyzer refuses up
/// front instead of letting the fabric panic or thrash.
#[test]
fn crippled_machines_are_refused_by_the_analyzer_up_front() {
    use systolic_core::ArrayLimits;
    use systolic_machine::DeviceKind;

    // `ArrayLimits::new` asserts bounds >= 1; build the invalid geometry
    // literally, exactly as a hand-written config file could.
    let zero = ArrayLimits {
        max_a: 0,
        max_b: 32,
        max_cols: 8,
    };
    let handle = spawn(ServerConfig {
        machine: MachineConfig {
            devices: vec![
                (DeviceKind::SetOp, zero),
                (DeviceKind::Join, ArrayLimits::new(32, 32, 8)),
                (DeviceKind::Divide, ArrayLimits::new(32, 32, 8)),
            ],
            ..MachineConfig::default()
        },
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    client.load_csv("z", "int", "1\n2\n").unwrap();
    match client.query("intersect(scan(z), scan(z))") {
        Err(ClientError::Remote { kind, detail }) => {
            assert_eq!(kind, "analysis");
            assert!(detail.contains("SA005"), "{detail}");
        }
        other => panic!("expected SA005, got {other:?}"),
    }
    client.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();

    let handle = spawn(ServerConfig {
        machine: MachineConfig {
            memory_capacity: 16,
            ..MachineConfig::default()
        },
        ..local_config()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    client
        .load_csv("big", "int,int", "1,2\n3,4\n5,6\n")
        .unwrap();
    match client.query("scan(big)") {
        Err(ClientError::Remote { kind, detail }) => {
            assert_eq!(kind, "analysis");
            assert!(detail.contains("SA006"), "{detail}");
        }
        other => panic!("expected SA006, got {other:?}"),
    }
    client.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn duplicate_loads_conflict_and_errors_are_structured() {
    let handle = spawn(local_config()).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    client.load_csv("t", "int", "1\n").unwrap();
    match client.load_csv("t", "int", "2\n") {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "conflict"),
        other => panic!("expected conflict, got {other:?}"),
    }
    match client.query("explode(scan(t))") {
        Err(ClientError::Remote { kind, detail }) => {
            assert_eq!(kind, "parse");
            assert!(detail.contains('^'), "caret rendering travels: {detail}");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
    match client.query("scan(missing)") {
        Err(ClientError::Remote { kind, detail }) => {
            assert_eq!(kind, "analysis");
            assert!(detail.contains("SA007"), "stable code travels: {detail}");
            assert!(detail.contains("missing"));
            assert!(detail.contains('^'), "caret rendering travels: {detail}");
        }
        other => panic!("expected unknown-relation rejection, got {other:?}"),
    }
    match client.load_csv("t2", "int", "notanint\n") {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "relation"),
        other => panic!("expected relation error, got {other:?}"),
    }
    client.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();
}

/// The sharding acceptance check: a server partitioning relations across
/// N machine shards answers the whole e2e workload — shardable fan-outs
/// and transparent local fallbacks alike — with `RESULT` frames
/// *byte-identical* to the single-`System` server's, and `QUERYC`'s
/// per-step cardinalities (summed across shards on the router) match too.
#[test]
fn sharded_servers_answer_byte_identically_to_a_single_system() {
    // store() runs only on the local system (the analyzer guarantees the
    // target is a fresh name, so shard partitions cannot go stale); the
    // follow-up re-query proves routing still works after the write-back.
    const FOLLOW_UPS: &[&str] = &[
        "store(filter(scan(a), c0 >= 3), b2)",
        "union(scan(a), scan(b))",
    ];

    // Single-System oracle: every query, then the store scenario.
    let baseline = spawn(local_config()).unwrap();
    let mut c = Client::connect(baseline.addr).unwrap();
    load_all(&mut c);
    let expect: Vec<String> = QUERIES
        .iter()
        .chain(FOLLOW_UPS)
        .map(|q| c.raw_query_frames(q).unwrap().0)
        .collect();
    let expect_cards: Vec<(String, Vec<u64>)> = QUERIES
        .iter()
        .map(|q| {
            let (frame, cards, _host) = c.query_cards(q).unwrap();
            (frame, cards)
        })
        .collect();
    c.close().unwrap();
    baseline.shutdown();
    baseline.join().unwrap();

    for shards in [2usize, 4] {
        let handle = spawn(ServerConfig {
            shards,
            ..local_config()
        })
        .unwrap();
        let mut c = Client::connect(handle.addr).unwrap();
        load_all(&mut c);
        for (i, q) in QUERIES.iter().chain(FOLLOW_UPS).enumerate() {
            let (frame, _host) = c.raw_query_frames(q).unwrap();
            assert_eq!(frame, expect[i], "{shards}-shard RESULT diverged on {q:?}");
        }
        for (q, (want_frame, want_cards)) in QUERIES.iter().zip(&expect_cards) {
            let (frame, cards, _host) = c.query_cards(q).unwrap();
            assert_eq!(
                &frame, want_frame,
                "{shards}-shard QUERYC diverged on {q:?}"
            );
            assert_eq!(&cards, want_cards, "{shards}-shard CARDS diverged on {q:?}");
        }

        // Both paths must actually have run: shardable set ops fanned out,
        // while divide/Str-join/store queries fell back to the local copy.
        let text = c.metrics().unwrap();
        let exp = systolic_telemetry::prom::validate(&text).expect("exposition must validate");
        assert!(
            exp.value("sdb_server_sharded_total", "").unwrap_or(0.0) >= 1.0,
            "{shards}-shard server never routed a query:\n{text}"
        );
        assert!(
            exp.value("sdb_server_shard_fallback_total", "")
                .unwrap_or(0.0)
                >= 1.0,
            "{shards}-shard server never fell back:\n{text}"
        );
        c.close().unwrap();
        handle.shutdown();
        handle.join().unwrap();
    }
}

/// Connection scaling: the poll reactor holds 64/256/1024 simultaneous
/// connections, *all* with requests in flight at once (every frame is
/// written before any answer is read), and every `RESULT` frame is
/// byte-identical to the serial baseline. The worker pool stays small —
/// concurrency comes from the reactor, not from threads.
#[test]
fn poll_reactor_keeps_determinism_across_hundreds_of_connections() {
    let config = || ServerConfig {
        io: IoModel::Poll,
        workers: 8,
        max_pending: 4096,
        max_batch: 64,
        ..local_config()
    };
    let handle = spawn(config()).unwrap();
    let addr = handle.addr;
    let mut setup = Client::connect(addr).unwrap();
    load_all(&mut setup);
    let baseline: Vec<String> = QUERIES
        .iter()
        .map(|q| setup.raw_query_frames(q).unwrap().0)
        .collect();

    for conns in [64usize, 256, 1024] {
        let mut clients: Vec<Client> = (0..conns).map(|_| Client::connect(addr).unwrap()).collect();
        // Write phase: one query per connection, rotating through the
        // workload, no answer read until every request is on the wire.
        for (i, client) in clients.iter_mut().enumerate() {
            client.send_query(QUERIES[i % QUERIES.len()]).unwrap();
        }
        // Read phase: answers must match the serial baseline bytewise.
        for (i, client) in clients.iter_mut().enumerate() {
            let (frame, _host) = client.recv_query_frames().unwrap();
            assert_eq!(
                frame,
                baseline[i % QUERIES.len()],
                "connection {i}/{conns} diverged"
            );
        }
        for client in &mut clients {
            client.close().unwrap();
        }
    }

    setup.close().unwrap();
    handle.shutdown();
    let report = handle.join().unwrap();
    assert_eq!(
        report.queries,
        (QUERIES.len() + 64 + 256 + 1024) as u64,
        "every pipelined query must be served exactly once"
    );
    assert_eq!(report.timeouts, 0);
}

/// Overload under poll: with one worker, no pending allowance, and a long
/// admission window, a burst of pipelined frames is shed with
/// `ERR overloaded` — in pipeline order, without wedging the connection —
/// while at least the first frame is answered for real.
#[test]
fn poll_front_end_sheds_pipelined_overload_in_order() {
    let handle = spawn(ServerConfig {
        io: IoModel::Poll,
        workers: 1,
        max_pending: 0,
        batch_window: Duration::from_millis(200),
        ..local_config()
    })
    .unwrap();
    let mut c = Client::connect(handle.addr).unwrap();
    c.load_csv("t", "int", "1\n2\n3\n").unwrap();

    const BURST: usize = 6;
    for _ in 0..BURST {
        c.send_query("filter(scan(t), c0 >= 2)").unwrap();
    }
    let mut served = 0usize;
    let mut shed = 0usize;
    for i in 0..BURST {
        match c.recv_query_frames() {
            Ok((frame, _host)) => {
                assert!(frame.starts_with("RESULT rows=2 "), "answer {i}: {frame}");
                served += 1;
            }
            Err(ClientError::Remote { kind, .. }) => {
                assert_eq!(kind, "overloaded", "answer {i}");
                shed += 1;
            }
            other => panic!("answer {i}: expected RESULT or overloaded, got {other:?}"),
        }
    }
    assert!(served >= 1, "the occupying query itself must be answered");
    assert!(shed >= 1, "a 6-deep burst over a 1-worker pool must shed");

    // The connection survives shedding: a fresh query is answered.
    let result = c.query("filter(scan(t), c0 >= 2)").unwrap();
    assert_eq!(result.rows, 2);
    c.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();
}

/// Drain under poll: shutdown lands while pipelined queries are in flight
/// behind a long admission window; every already-accepted frame is still
/// answered before the reactor closes the connection.
#[test]
fn poll_shutdown_drains_pipelined_in_flight_queries() {
    let handle = spawn(ServerConfig {
        io: IoModel::Poll,
        batch_window: Duration::from_millis(150),
        ..local_config()
    })
    .unwrap();
    let addr = handle.addr;
    let mut setup = Client::connect(addr).unwrap();
    setup.load_csv("t", "int", "1\n2\n3\n").unwrap();

    let in_flight = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        for _ in 0..3 {
            client.send_query("filter(scan(t), c0 >= 2)").unwrap();
        }
        (0..3)
            .map(|_| client.recv_query_frames().map(|(r, _)| r))
            .collect::<Result<Vec<_>, _>>()
    });
    thread::sleep(Duration::from_millis(30));
    handle.shutdown();

    let frames = in_flight.join().unwrap().unwrap();
    assert_eq!(frames.len(), 3);
    for frame in &frames {
        assert!(frame.starts_with("RESULT rows=2 "), "{frame}");
    }
    drop(setup);
    handle.join().unwrap();
}

/// The observability acceptance check, half one: `PROFILE` answers with a
/// `RESULT` frame *byte-identical* to `QUERY`'s for the same query — at one
/// and two shards, on both front ends, and on both backends — and the
/// profile itself is internally consistent: the analyzer's predicted pulse
/// budget bounds the actual pulses, and the actual pulses equal the
/// `RESULT` frame's own `RunStats` pulses.
#[test]
fn profile_results_are_byte_identical_and_bounded_by_the_budget() {
    use systolic_telemetry::json::{self, Json};

    let configs = [
        ("threads", local_config()),
        (
            "poll",
            ServerConfig {
                io: IoModel::Poll,
                ..local_config()
            },
        ),
        (
            "2-shard",
            ServerConfig {
                shards: 2,
                ..local_config()
            },
        ),
        (
            "kernel",
            ServerConfig {
                machine: MachineConfig {
                    backend: Backend::Kernel,
                    ..MachineConfig::default()
                },
                ..local_config()
            },
        ),
    ];
    for (label, config) in configs {
        let handle = spawn(config).unwrap();
        let mut c = Client::connect(handle.addr).unwrap();
        load_all(&mut c);
        for q in QUERIES {
            let (plain, _host) = c.raw_query_frames(q).unwrap();
            let (profiled, profile) = c.profile(q).unwrap();
            assert_eq!(
                profiled.raw, plain,
                "{label}: profiling changed the RESULT frame for {q:?}"
            );
            let doc = json::parse(&profile).expect("profile is valid JSON");
            assert_eq!(doc.get("query").and_then(Json::as_str), Some(*q), "{label}");
            let budget = doc
                .get("predicted")
                .and_then(|p| p.get("pulse_budget"))
                .and_then(Json::as_u64)
                .unwrap();
            let pulses = doc
                .get("actual")
                .and_then(|a| a.get("pulses"))
                .and_then(Json::as_u64)
                .unwrap();
            assert!(
                budget >= pulses,
                "{label}: {q:?} predicted budget {budget} < actual {pulses}"
            );
            assert_eq!(
                pulses, profiled.total_pulses,
                "{label}: {q:?} profile pulses diverge from RunStats"
            );
            assert_eq!(
                doc.get("actual")
                    .and_then(|a| a.get("rows"))
                    .and_then(Json::as_u64),
                Some(profiled.rows as u64),
                "{label}: {q:?}"
            );
            // Drift is the budget's slack, as a first-class field.
            assert_eq!(
                doc.get("drift_pulses").and_then(Json::as_f64),
                Some(budget as f64 - pulses as f64),
                "{label}: {q:?}"
            );
            // Every plan step pairs a prediction with its actuals.
            let steps = doc.get("steps").and_then(Json::as_array).unwrap();
            assert!(!steps.is_empty(), "{label}: {q:?}");
            let step_pulses: u64 = steps
                .iter()
                .filter_map(|s| s.get("actual_pulses").and_then(Json::as_u64))
                .sum();
            assert_eq!(step_pulses, pulses, "{label}: {q:?} step pulses must sum");
        }
        c.close().unwrap();
        handle.shutdown();
        handle.join().unwrap();
    }
}

/// The observability acceptance check, half two: a two-shard server with
/// `trace_out` writes ONE merged Chrome trace in which every shard's
/// `server.request` span (returned over the wire in `SPANS` trailers)
/// parents under the router's `server.shard_fanout` span, which itself
/// parents under the outer request's root span — one trace id end to end.
///
/// Holds [`collector_lock`]: `trace_out` installs the process-global
/// collector for the server's lifetime.
#[test]
fn sharded_trace_out_parents_shard_spans_under_the_fanout() {
    use systolic_telemetry::json::{self, Json};

    let _guard = collector_lock();
    let dir = std::env::temp_dir().join(format!("sdb-e2e-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("merged.json");

    let handle = spawn(ServerConfig {
        shards: 2,
        trace_out: Some(path.clone()),
        ..local_config()
    })
    .unwrap();
    let mut c = Client::connect(handle.addr).unwrap();
    load_all(&mut c);
    // A shardable query, so the router actually fans out.
    let shardable = "intersect(scan(a), scan(b))";
    c.query(shardable).unwrap();
    let text = c.metrics().unwrap();
    let exp = systolic_telemetry::prom::validate(&text).unwrap();
    assert!(
        exp.value("sdb_server_sharded_total", "").unwrap_or(0.0) >= 1.0,
        "query must have routed:\n{text}"
    );
    c.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();

    let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid trace JSON");
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    let arg = |e: &Json, k: &str| e.get("args").and_then(|a| a.get(k)).and_then(Json::as_u64);
    let named = |n: &str| {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(n))
            .collect::<Vec<_>>()
    };

    let fanouts = named("server.shard_fanout");
    assert_eq!(
        fanouts.len(),
        1,
        "one fan-out span for the one routed query"
    );
    let fanout = fanouts[0];
    let trace_id = arg(fanout, "trace_id").unwrap();
    let fanout_span = arg(fanout, "span_id").unwrap();

    // The fan-out parents under the outer request's root span...
    let requests = named("server.request");
    let root = requests
        .iter()
        .find(|e| arg(e, "trace_id") == Some(trace_id) && arg(e, "parent_id").is_none())
        .expect("the outer request is the trace's root span");
    assert_eq!(arg(fanout, "parent_id"), arg(root, "span_id"));

    // ...and both shards' request spans parent under the fan-out, on the
    // same trace id, each exactly once (the SPANS trailer duplicates the
    // in-process collector's copy; the merge must dedup).
    let shard_requests: Vec<_> = requests
        .iter()
        .filter(|e| arg(e, "parent_id") == Some(fanout_span))
        .collect();
    assert_eq!(
        shard_requests.len(),
        2,
        "both shard request spans, deduped, under the fan-out"
    );
    for e in &shard_requests {
        assert_eq!(arg(e, "trace_id"), Some(trace_id), "one trace end to end");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The flight recorder retains the last N profiles — queries, `PROFILE`
/// runs, and failures alike — and `PROFILES` dumps them newest first.
#[test]
fn flight_recorder_retains_newest_profiles_and_records_errors() {
    use systolic_telemetry::json::{self, Json};

    let handle = spawn(ServerConfig {
        profile_history: 2,
        ..local_config()
    })
    .unwrap();
    let mut c = Client::connect(handle.addr).unwrap();
    c.load_csv("fr", "int", "1\n2\n3\n").unwrap();

    c.query("filter(scan(fr), c0 >= 1)").unwrap();
    c.query("filter(scan(fr), c0 >= 2)").unwrap();
    c.query("filter(scan(fr), c0 >= 3)").unwrap();
    let dumped = c.profiles().unwrap();
    assert_eq!(dumped.len(), 2, "history of 2 retains the 2 newest");
    let queries: Vec<_> = dumped
        .iter()
        .map(|line| {
            let doc = json::parse(line).expect("each dumped profile is valid JSON");
            doc.get("query").and_then(Json::as_str).unwrap().to_string()
        })
        .collect();
    assert_eq!(
        queries,
        vec!["filter(scan(fr), c0 >= 3)", "filter(scan(fr), c0 >= 2)"],
        "newest first"
    );

    // A failing query lands in the recorder too, with its error frame.
    assert!(c.query("scan(ghost)").is_err());
    let dumped = c.profiles().unwrap();
    let newest = json::parse(&dumped[0]).unwrap();
    assert_eq!(
        newest.get("query").and_then(Json::as_str),
        Some("scan(ghost)")
    );
    assert!(
        newest
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("analysis")),
        "{}",
        dumped[0]
    );
    c.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();
}

/// Durability across graceful restarts: a server opened on a `--data-dir`
/// recovers every load and every logged `store(...)` query from its WAL,
/// so the whole workload answers *byte-identically* after a restart — at
/// one shard and at two (each shard recovering its own partition). A
/// `CHECKPOINT` mid-sequence snapshots the history and the next recovery
/// (snapshot + empty tail) must answer identically again.
#[test]
fn durable_servers_answer_byte_identically_after_restart() {
    let root = std::env::temp_dir().join(format!("sdb_srv_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    for shards in [1usize, 2] {
        let data_dir = root.join(format!("s{shards}"));
        let config = || ServerConfig {
            shards,
            data_dir: Some(data_dir.clone()),
            ..local_config()
        };

        // Generation 0: load, run a store(...) so a query lands in the WAL,
        // then capture the post-store answers as the oracle.
        let handle = spawn(config()).unwrap();
        let mut c = Client::connect(handle.addr).unwrap();
        load_all(&mut c);
        c.query("store(filter(scan(a), c0 >= 3), a_big)").unwrap();
        let expect: Vec<String> = QUERIES
            .iter()
            .map(|q| c.raw_query_frames(q).unwrap().0)
            .collect();
        let stats = c.stats_line().unwrap();
        assert!(stats.contains("durable=1"), "{stats}");
        assert!(
            stats.contains(" wal_records=7"),
            "6 loads + 1 store: {stats}"
        );
        c.close().unwrap();
        handle.shutdown();
        handle.join().unwrap();

        // Generation 1: recovered purely from the WAL.
        let handle = spawn(config()).unwrap();
        let mut c = Client::connect(handle.addr).unwrap();
        let stats = c.stats_line().unwrap();
        assert!(stats.contains(" recovered=7"), "{stats}");
        for (q, want) in QUERIES.iter().zip(&expect) {
            let (frame, _host) = c.raw_query_frames(q).unwrap();
            assert_eq!(
                &frame, want,
                "{shards}-shard WAL recovery diverged on {q:?}"
            );
        }
        // Snapshot the history; the log resets but nothing is forgotten.
        let (records, bytes) = c.checkpoint().unwrap();
        assert_eq!(records, 7, "all history records snapshotted");
        assert!(bytes > 0);
        let stats = c.stats_line().unwrap();
        assert!(stats.contains(" wal_records=0"), "log reset: {stats}");
        assert!(stats.contains(" checkpoints=1"), "{stats}");
        c.close().unwrap();
        handle.shutdown();
        handle.join().unwrap();

        // Generation 2: recovered from the checkpoint snapshot alone.
        let handle = spawn(config()).unwrap();
        let mut c = Client::connect(handle.addr).unwrap();
        let stats = c.stats_line().unwrap();
        assert!(stats.contains(" recovered=7"), "{stats}");
        for (q, want) in QUERIES.iter().zip(&expect) {
            let (frame, _host) = c.raw_query_frames(q).unwrap();
            assert_eq!(
                &frame, want,
                "{shards}-shard snapshot recovery diverged on {q:?}"
            );
        }
        c.close().unwrap();
        handle.shutdown();
        handle.join().unwrap();
    }

    // A server without a data dir refuses CHECKPOINT with a stable kind.
    let handle = spawn(local_config()).unwrap();
    let mut c = Client::connect(handle.addr).unwrap();
    match c.checkpoint() {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, "not_durable"),
        other => panic!("expected not_durable, got {other:?}"),
    }
    let stats = c.stats_line().unwrap();
    assert!(stats.contains("durable=0"), "{stats}");
    c.close().unwrap();
    handle.shutdown();
    handle.join().unwrap();

    let _ = std::fs::remove_dir_all(&root);
}
